"""Repo-wide test fixtures.

Every test process gets a throwaway ``REPRO_CACHE_DIR`` so the suite
never reads from — or litters — the user's ``~/.cache/repro``, and so
tests exercising the persistent artifact store observe only their own
entries.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_store(tmp_path_factory):
    os.environ["REPRO_CACHE_DIR"] = \
        str(tmp_path_factory.mktemp("repro-store"))
    from repro.core.store import reset_store
    reset_store()
    yield


@pytest.fixture
def fresh_store(tmp_path):
    """A brand-new, empty store private to one test (and the default
    store for its duration).  The in-memory LRUs are emptied too, so
    the test observes every disk consultation."""
    from repro.cfront.cache import clear_all_caches
    from repro.core.session import reset_session
    from repro.core.store import reset_store
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path / "store")
    clear_all_caches()
    reset_session()
    store = reset_store()
    yield store
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
    clear_all_caches()
    reset_session()
    reset_store()
