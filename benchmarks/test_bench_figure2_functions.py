"""Bench: Figure 2 — per-function SLR replacement rates.

Asserts the paper's exact per-function series: strcpy 28/39 (71.8%),
strcat 8/8 (100%), sprintf 150/153 (98.0%), vsprintf 1/2 (50%),
memcpy 72/115 (62.6%), and that gets is absent from the corpus.
"""

from repro.eval.common import PAPER_FIGURE2
from repro.eval.figure2 import compute_figure2


def test_figure2_series(benchmark):
    result = benchmark.pedantic(compute_figure2, rounds=1, iterations=1)
    for fn, (paper_done, paper_total) in PAPER_FIGURE2.items():
        done, total = result.by_function.get(fn, (0, 0))
        assert (done, total) == (paper_done, paper_total), fn
    assert result.by_function.get("gets", (0, 0))[1] == 0


def test_figure2_memcpy_is_hardest(benchmark):
    """The paper's observation: memcpy has the lowest replacement rate
    because it is not limited to char buffers."""
    result = benchmark.pedantic(compute_figure2, rounds=1, iterations=1)
    # Among the heavily used functions (vsprintf has only 2 sites), memcpy
    # is hardest to transform.
    rates = {fn: done / total
             for fn, (done, total) in result.by_function.items()
             if total >= 8}
    assert min(rates, key=rates.get) == "memcpy"
    assert rates["strcat"] == 1.0
