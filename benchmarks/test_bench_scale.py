"""Bench: batch scale — the streaming scheduler and sharded store at
1k and 10k synthesized files.

These legs prove the PR 9 claim: throughput holds (within 25%) from 1k
to 10k files, parent memory stays window-bounded instead of O(batch),
and the sharded store's warm-replay throughput is no worse than the
flat single-shard layout under parallel writers.

The 10k leg takes minutes, so the whole module is opt-in::

    REPRO_BENCH_SCALE=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_bench_scale.py -x -q

Results land under the ``batch_scale`` / ``scale_store_layout`` keys
of ``BENCH_pipeline.json``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SCALE") != "1",
    reason="batch-scale legs are minutes long; set REPRO_BENCH_SCALE=1")


def _summary_subprocess(cache_dir, out_path, *, count, jobs=4, seed=0,
                        shards=None):
    """One fresh-interpreter streaming-summary run over ``count``
    synthesized files; returns the summary record."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_PROFILE", None)
    env.pop("REPRO_STORE_SHARDS", None)
    if shards is not None:
        env["REPRO_STORE_SHARDS"] = str(shards)
    cmd = [sys.executable, "-m", "repro.eval.pipeline_bench",
           "--corpus", "synth", "--limit", str(count),
           "--synth-seed", str(seed), "--jobs", str(jobs),
           "--no-validate", "--summary", "--out", str(out_path)]
    subprocess.run(cmd, cwd=REPO_ROOT, env=env, check=True, timeout=3600)
    with open(out_path, encoding="utf-8") as fh:
        return json.load(fh)["summary"]


def _merge_bench(key, entry):
    out = REPO_ROOT / "BENCH_pipeline.json"
    payload = json.loads(out.read_text(encoding="utf-8")) \
        if out.exists() else {}
    payload[key] = entry
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")


def test_bench_scale_1k_to_10k(benchmark, tmp_path):
    """1k and 10k synthesized files through the streaming scheduler.

    Gates: every file lands ok, the stream's buffering high-water mark
    stays within the dispatch window (parent memory is O(window), not
    O(batch)), parent peak RSS grows by far less than the 10x batch
    growth, and 10k throughput is within 25% of 1k throughput.
    """
    leg_1k = benchmark.pedantic(
        lambda: _summary_subprocess(tmp_path / "store1k",
                                    tmp_path / "leg1k.json", count=1000),
        rounds=1, iterations=1)
    leg_10k = _summary_subprocess(tmp_path / "store10k",
                                  tmp_path / "leg10k.json", count=10000)

    for leg, count in ((leg_1k, 1000), (leg_10k, 10000)):
        assert leg["files"] == count
        assert leg["status"] == {"ok": count, "degraded": 0, "failed": 0}
        assert leg["stream"]["max_buffered"] <= leg["stream"]["window"]
        contention = leg["store_contention"]["preprocess"]
        assert contention["shards_used"] > 1, contention

    ratio = leg_10k["files_per_s"] / leg_1k["files_per_s"]
    rss_growth = leg_10k["peak_rss_kb"]["parent"] \
        / max(leg_1k["peak_rss_kb"]["parent"], 1)

    # "scale" is taken: the sampled throughput leg records its SAMATE
    # sample factor there.
    _merge_bench("batch_scale", {
        "benchmark": "synthesized corpus through the streaming "
                     "scheduler (jobs=4, validate=False)",
        "scale_1k": leg_1k,
        "scale_10k": leg_10k,
        "throughput_ratio_10k_vs_1k": round(ratio, 3),
        "parent_rss_growth_10k_vs_1k": round(rss_growth, 3),
    })

    # The acceptance gate: 10k throughput within 25% of 1k.
    assert ratio >= 0.75, (leg_1k["files_per_s"], leg_10k["files_per_s"])
    # 10x the batch must cost nowhere near 10x the parent's memory.
    assert rss_growth < 3.0, (leg_1k["peak_rss_kb"],
                              leg_10k["peak_rss_kb"])


def test_bench_scale_sharded_vs_flat_warm(benchmark, tmp_path):
    """Warm-replay throughput: sharded store vs flat (1-shard) layout.

    Each layout gets a cold run to populate its store, then a warm run
    in a fresh interpreter replaying from disk.  The sharded layout
    must hold warm throughput at least level with flat (floor 0.8 to
    absorb host noise; the measured ratio is recorded).
    """
    count, seed = 400, 3

    def cold_then_warm(store, tag, shards):
        _summary_subprocess(store, tmp_path / f"{tag}-cold.json",
                            count=count, seed=seed, shards=shards)
        return _summary_subprocess(store, tmp_path / f"{tag}-warm.json",
                                   count=count, seed=seed, shards=shards)

    warm_sharded = benchmark.pedantic(
        lambda: cold_then_warm(tmp_path / "sharded", "sharded", None),
        rounds=1, iterations=1)
    warm_flat = cold_then_warm(tmp_path / "flat", "flat", 1)

    sharded_contention = warm_sharded["store_contention"].get(
        "preprocess", {})
    assert sharded_contention.get("shards", 0) > 1 \
        or not sharded_contention  # fully warm runs may write nothing
    ratio = warm_sharded["files_per_s"] / warm_flat["files_per_s"]

    _merge_bench("scale_store_layout", {
        "files": count,
        "warm_sharded": warm_sharded,
        "warm_flat_single_shard": warm_flat,
        "warm_throughput_ratio_sharded_vs_flat": round(ratio, 3),
    })
    assert ratio >= 0.8, (warm_sharded["files_per_s"],
                          warm_flat["files_per_s"])
