"""Shared fixtures for the benchmark suite."""

import pytest


@pytest.fixture(scope="session")
def corpus_programs():
    from repro.corpus import build_all
    return build_all()


@pytest.fixture(scope="session")
def samate_sample_suite():
    """A 2% stratified SAMATE population (fast enough to benchmark)."""
    from repro.samate import generate_suite
    return generate_suite(scale=0.02)
