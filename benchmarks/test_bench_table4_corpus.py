"""Bench: Table IV — corpus statistics (build + preprocess the corpus)."""

from repro.eval.table4 import compute_table4


def test_table4_corpus_stats(benchmark):
    result = benchmark(compute_table4)
    names = {r.program for r in result.rows}
    assert names == {"zlib", "libpng", "GMP", "libtiff"}
    for row in result.rows:
        assert row.files >= 4
        assert row.pp_kloc >= row.kloc > 0
