"""Bench: Table II — the STR replacement patterns.

Transforms a program exercising every Table II pattern and checks each
expected rewrite appears; measures the whole-unit STR cost.
"""

from repro.cfront.preprocessor import Preprocessor
from repro.core.strtransform import REPLACEMENT_PATTERNS, SafeTypeReplacement

_PROGRAM = r"""
#include <stdio.h>
#include <string.h>
#include <stdlib.h>

int peek(const char *p) { return p[0]; }

int main(void)
{
    char *buf;                      /* pattern 2 */
    char other[16];
    int a = 1, b = 2;
    buf = malloc(1024);             /* pattern 3 */
    buf = NULL;                     /* pattern 4 */
    buf = other;                    /* pattern 5 (after grouping) */
    buf = "text";                   /* pattern 6 */
    buf++;                          /* pattern 8 */
    buf -= 3;                       /* pattern 9 */
    if (sizeof(other) < 3) {        /* pattern 10 */
        return 1;
    }
    a = other[1];                   /* pattern 11 */
    other[1] = 'b';                 /* pattern 12 */
    other[0] = other[1];            /* pattern 13 */
    *(other + 4) = 'a';             /* pattern 14 */
    *(other + 1) = a + b;           /* pattern 15 */
    a = (int)strlen(other);        /* pattern 16 */
    peek(other);                    /* pattern 17 */
    if (other[0] == 'a') {          /* pattern 18 */
        return 2;
    }
    printf("%d\n", a);
    return 0;
}
"""

_EXPECTED = [
    "stralloc *buf",
    "buf->s = malloc(1024)",
    'stralloc_copybuf(buf, "text", strlen("text"))',
    "stralloc_increment_by(buf, 1)",
    "stralloc_decrement_by(buf, 3)",
    "other->a < 3",
    "stralloc_get_dereferenced_char_at(other, 1)",
    "stralloc_dereference_replace_by(other, 1, 'b')",
    "stralloc_dereference_replace_by(other, 0, "
    "stralloc_get_dereferenced_char_at(other, 1))",
    "stralloc_dereference_replace_by(other, 4, 'a')",
    "stralloc_dereference_replace_by(other, 1, a + b)",
    "other->len",
    "peek(other->s)",
    "stralloc_get_dereferenced_char_at(other, 0) == 'a'",
]


def test_table2_patterns(benchmark):
    assert len(REPLACEMENT_PATTERNS) == 18
    text = Preprocessor().preprocess(_PROGRAM, "patterns.c").text

    def transform():
        return SafeTypeReplacement(text, "patterns.c").run()

    result = benchmark(transform)
    assert result.transformed_count == 2        # buf and other
    for expected in _EXPECTED:
        assert expected in result.new_text, expected
