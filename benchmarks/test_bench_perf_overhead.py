"""Bench: RQ3 — runtime overhead of the transformed corpus programs.

The paper reports "minimal performance overhead" after applying SLR and
STR on all targets of two programs; we assert the deterministic step-count
overhead stays small and the output is unchanged.
"""

from repro.eval.perf import compute_perf


def test_perf_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: compute_perf(("zlib", "libpng"), repeat=1),
        rounds=1, iterations=1)
    for row in result.rows:
        assert row.output_identical, row.program
        # "Minimal" overhead: well under 2x; measured ~3-13%.
        assert row.step_overhead_pct < 50.0, \
            (row.program, row.step_overhead_pct)


def test_perf_all_programs_output_identical(benchmark):
    result = benchmark.pedantic(
        lambda: compute_perf(("GMP", "libtiff"), repeat=1),
        rounds=1, iterations=1)
    for row in result.rows:
        assert row.output_identical, row.program
