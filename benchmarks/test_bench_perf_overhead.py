"""Bench: RQ3 — runtime overhead of the transformed corpus programs,
plus the transformation pipeline's own throughput.

The paper reports "minimal performance overhead" after applying SLR and
STR on all targets of two programs; we assert the deterministic step-count
overhead stays small and the output is unchanged.  The pipeline bench
launches :mod:`repro.eval.pipeline_bench` in fresh interpreters sharing
one ``REPRO_CACHE_DIR`` to measure cold, warm-in-process, and
warm-cross-process legs (plus a disk-cache-off control), asserts every
leg produces identical counts and oracle verdicts, and records wall
times, speedups, cache counters, and the per-stage breakdown in
``BENCH_pipeline.json``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.eval.perf import compute_perf

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_perf_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: compute_perf(("zlib", "libpng"), repeat=1),
        rounds=1, iterations=1)
    for row in result.rows:
        assert row.output_identical, row.program
        # "Minimal" overhead: well under 2x; measured ~3-13%.
        assert row.step_overhead_pct < 50.0, \
            (row.program, row.step_overhead_pct)


def test_perf_all_programs_output_identical(benchmark):
    result = benchmark.pedantic(
        lambda: compute_perf(("GMP", "libtiff"), repeat=1),
        rounds=1, iterations=1)
    for row in result.rows:
        assert row.output_identical, row.program


def _bench_subprocess(cache_dir, out_path, *, jobs=1, repeat=1,
                      scale=0.05, limit=24, disk=True, backends=None,
                      arbitration=None):
    """One fresh-interpreter pipeline_bench run; returns its runs."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_PROFILE", None)
    env.pop("REPRO_BACKENDS", None)
    env.pop("REPRO_ARBITRATION", None)
    if not disk:
        env["REPRO_DISK_CACHE"] = "0"
    cmd = [sys.executable, "-m", "repro.eval.pipeline_bench",
           "--scale", str(scale), "--limit", str(limit),
           "--jobs", str(jobs), "--repeat", str(repeat),
           "--out", str(out_path)]
    if backends:
        cmd += ["--backends", backends]
    if arbitration:
        cmd += ["--arbitration", arbitration]
    subprocess.run(cmd, cwd=REPO_ROOT, env=env, check=True, timeout=600)
    with open(out_path, encoding="utf-8") as fh:
        return json.load(fh)["runs"]


def _leg(run):
    """The BENCH row for one pipeline_bench run."""
    stats = run["stats"]
    return {
        "jobs": run["jobs"],
        "wall_s": run["wall_s"],
        "files_per_s": run["files_per_s"],
        "preprocess_cache": stats["preprocess_cache"],
        "parse_cache": stats["parse_cache"],
        "slr_cache": stats["slr_cache"],
        "str_cache": stats["str_cache"],
        "validate_cache": stats["validate_cache"],
        "stage_totals_s": stats["stage_totals_s"],
        "robustness": run["robustness"],
    }


def test_bench_pipeline_throughput(benchmark, tmp_path):
    """Sampled SAMATE batch: cold vs warm-in-process vs warm-cross-process.

    Four fresh-interpreter legs share one ``REPRO_CACHE_DIR``:

    1. ``jobs=1 --repeat 2`` — run 1 is **cold** (empty store), run 2 is
       **warm in-process** (memory LRUs hot);
    2. ``jobs=4`` — **warm cross-process**: a new interpreter with empty
       memory caches replaying preprocess/parse/transform/verdict
       artifacts from the disk store;
    3. ``jobs=1`` with ``REPRO_DISK_CACHE=0`` — the no-disk control.

    Counts and oracle verdicts must be identical across all legs; the
    results land in ``BENCH_pipeline.json`` at the repo root.
    """
    scale, limit = 0.05, 24
    cache_dir = tmp_path / "store"

    first = _bench_subprocess(cache_dir, tmp_path / "first.json",
                              jobs=1, repeat=2, scale=scale, limit=limit)
    cold, warm_in = first
    warm_x = benchmark.pedantic(
        lambda: _bench_subprocess(cache_dir, tmp_path / "cross.json",
                                  jobs=4, scale=scale, limit=limit)[0],
        rounds=1, iterations=1)
    nodisk = _bench_subprocess(tmp_path / "unused-store",
                               tmp_path / "nodisk.json",
                               jobs=1, scale=scale, limit=limit,
                               disk=False)[0]

    legs = {"cold": cold, "warm_in_process": warm_in,
            "warm_cross_process": warm_x, "no_disk_cache": nodisk}
    counts_identical = all(run["counts"] == cold["counts"]
                           for run in legs.values())
    verdicts_identical = all(run["verdicts"] == cold["verdicts"]
                             for run in legs.values())
    assert counts_identical, "legs disagree on transform counts"
    assert verdicts_identical, "legs disagree on oracle verdicts"
    assert cold["verdicts"], "oracle produced no verdicts"

    # The cross-process leg starts with empty memory LRUs — any work it
    # skipped must have come from the disk store.
    warm_pp = warm_x["stats"]["preprocess_cache"]
    assert warm_pp["disk_hits"] > 0, warm_pp
    assert warm_pp["misses"] == warm_pp["disk_hits"] \
        + warm_pp["disk_misses"], warm_pp

    speedup_x = cold["wall_s"] / warm_x["wall_s"]
    speedup_in = cold["wall_s"] / max(warm_in["wall_s"], 1e-9)
    update = {
        "benchmark": "sampled SAMATE batch transformation pipeline "
                     "(validate=True)",
        "scale": scale,
        "files": cold["files"],
        "cold": _leg(cold),
        "warm_in_process": _leg(warm_in),
        "warm_cross_process": _leg(warm_x),
        "no_disk_cache": _leg(nodisk),
        "speedup_warm_in_process": round(speedup_in, 2),
        "speedup_warm_cross_process": round(speedup_x, 2),
        "counts_identical": counts_identical,
        "verdicts_identical": verdicts_identical,
    }
    # Merge instead of rewrite: the incremental / arbitration /
    # composition / scale legs keep their entries regardless of which
    # bench module ran last.
    out = REPO_ROOT / "BENCH_pipeline.json"
    payload = json.loads(out.read_text(encoding="utf-8")) \
        if out.exists() else {}
    payload.update(update)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")

    # Acceptance target is >=3x cross-process; assert a conservative
    # floor so a loaded CI host does not flake, and record the measured
    # value in the JSON.
    assert speedup_x >= 1.5, (cold["wall_s"], warm_x["wall_s"])


def test_bench_pipeline_incremental(benchmark, tmp_path):
    """Incremental leg: edit-to-verdict latency of a warm engine on a
    one-function edit of a multi-function file vs the cold pipeline.

    The run itself asserts byte-identity (text, per-site outcomes,
    verdicts) between the incremental update and a cold
    ``transform_file`` of the same edited text; this gate additionally
    requires the warm update to be at least 5x faster and to have
    served unchanged functions from the ``func`` artifact family.
    Results land under the ``incremental`` key of
    ``BENCH_pipeline.json``.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "store")
    env.pop("REPRO_INCREMENTAL", None)
    out_path = tmp_path / "incremental.json"
    cmd = [sys.executable, "-m", "repro.eval.pipeline_bench",
           "--incremental", "96", "--seed", "0", "--out", str(out_path)]
    benchmark.pedantic(
        lambda: subprocess.run(cmd, cwd=REPO_ROOT, env=env, check=True,
                               timeout=600),
        rounds=1, iterations=1)
    with open(out_path, encoding="utf-8") as fh:
        record = json.load(fh)["incremental"]

    assert record["mode"] == "incremental", record
    assert record["text_identical"], "incremental text diverged from cold"
    assert record["outcomes_identical"], "per-site outcomes diverged"
    assert record["verdicts_identical"], "oracle verdicts diverged"
    assert record["verdicts"], "oracle produced no verdicts"
    assert record["func_cache"]["hits"] > 0, record["func_cache"]
    assert record["invalidated"] == [record["edited_function"]], record
    # The acceptance target: one-function edit-to-verdict at least 5x
    # faster than the cold path (measured ~7-10x).
    assert record["speedup"] >= 5.0, \
        (record["cold_wall_s"], record["incremental_wall_s"])

    out = REPO_ROOT / "BENCH_pipeline.json"
    payload = json.loads(out.read_text(encoding="utf-8")) \
        if out.exists() else {}
    payload["incremental"] = record
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")


def test_bench_pipeline_resume(benchmark, tmp_path):
    """Resume leg: replay overhead of ``repro batch --resume`` on a
    fully journaled synth batch.

    A journaled clean run computes every file, then a second
    ``apply_batch`` resumes from the same journal — every report must
    replay from the journal's result pointers byte-identically, and the
    replay must be much cheaper than the compute.  Results land under
    the ``resume`` key of ``BENCH_pipeline.json``.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "store")
    env["REPRO_RUN_DIR"] = str(tmp_path / "runs")
    env.pop("REPRO_FAULTS", None)
    out_path = tmp_path / "resume.json"
    cmd = [sys.executable, "-m", "repro.eval.pipeline_bench",
           "--resume-leg", "--corpus", "synth", "--limit", "24",
           "--jobs", "1", "--no-validate", "--out", str(out_path)]
    benchmark.pedantic(
        lambda: subprocess.run(cmd, cwd=REPO_ROOT, env=env, check=True,
                               timeout=600),
        rounds=1, iterations=1)
    with open(out_path, encoding="utf-8") as fh:
        record = json.load(fh)["resume"]

    assert record["reports_identical"], "resumed reports diverged"
    assert record["replayed"] == record["files"], record
    assert record["quarantined"] == 0, record
    assert record["status"]["failed"] == 0, record["status"]
    # Replay reads pickles instead of running the pipeline; anything
    # below 2x would mean resume recomputed.
    assert record["speedup"] is None or record["speedup"] >= 2.0, record

    out = REPO_ROOT / "BENCH_pipeline.json"
    payload = json.loads(out.read_text(encoding="utf-8")) \
        if out.exists() else {}
    payload["resume"] = record
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")


def test_bench_pipeline_arbitration(benchmark, tmp_path):
    """Arbitration leg: the same sampled batch with 2 vs 4 fix backends.

    Arbitration judges every candidate with the oracle, so cost grows
    with the backend count; the leg records both walls (and the
    scoreboards) under the ``arbitration`` key of
    ``BENCH_pipeline.json`` so the trade-off is visible next to the
    cache legs.  Both runs must select zero oracle-rejected candidates.
    """
    scale, limit = 0.05, 12
    two = benchmark.pedantic(
        lambda: _bench_subprocess(tmp_path / "store2",
                                  tmp_path / "two.json",
                                  scale=scale, limit=limit,
                                  backends="slr,str")[0],
        rounds=1, iterations=1)
    four = _bench_subprocess(tmp_path / "store4", tmp_path / "four.json",
                             scale=scale, limit=limit,
                             backends="slr,str,tr24731,s3lib")[0]

    for run, n_backends in ((two, 2), (four, 4)):
        arb = run["arbitration"]
        assert arb is not None, "arbitration leg recorded no arbitration"
        assert len(arb["scoreboard"]) == n_backends, arb["scoreboard"]
        # A selected candidate is never one the oracle disqualified.
        for row in arb["scoreboard"].values():
            assert row["selected"] <= row["attempted"] - row["rejected"]
        assert run["semantics_preserved"], "shipped a worse file"

    entry = {
        "files": two["files"],
        "two_backends": {"backends": "slr,str",
                         "wall_s": two["wall_s"],
                         "attempted": two["arbitration"]["attempted"],
                         "rejected": two["arbitration"]["rejected"],
                         "scoreboard": two["arbitration"]["scoreboard"]},
        "four_backends": {"backends": "slr,str,tr24731,s3lib",
                          "wall_s": four["wall_s"],
                          "attempted": four["arbitration"]["attempted"],
                          "rejected": four["arbitration"]["rejected"],
                          "scoreboard":
                              four["arbitration"]["scoreboard"]},
        "slowdown_4_vs_2": round(four["wall_s"]
                                 / max(two["wall_s"], 1e-9), 2),
    }
    out = REPO_ROOT / "BENCH_pipeline.json"
    payload = json.loads(out.read_text(encoding="utf-8")) \
        if out.exists() else {}
    payload["arbitration"] = entry
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")


def test_bench_pipeline_composition(benchmark, tmp_path):
    """Composition leg: the same sampled batch under file- vs site-mode
    arbitration with two backends.

    Site mode pays for per-site replay + judging plus the composite
    re-judge on top of the whole-file search; the leg records both
    walls and the site-mode rollups under the ``composition`` key of
    ``BENCH_pipeline.json``.  The site run must ship zero
    semantics-changed files — the standing correctness gate holds under
    composition too.
    """
    scale, limit = 0.05, 12
    file_run = benchmark.pedantic(
        lambda: _bench_subprocess(tmp_path / "storef",
                                  tmp_path / "file.json",
                                  scale=scale, limit=limit,
                                  backends="slr,str")[0],
        rounds=1, iterations=1)
    site_run = _bench_subprocess(tmp_path / "stores",
                                 tmp_path / "site.json",
                                 scale=scale, limit=limit,
                                 backends="slr,str",
                                 arbitration="site")[0]

    assert file_run["arbitration"].get("mode") is None
    site_arb = site_run["arbitration"]
    assert site_arb["mode"] == "site"
    assert site_run["semantics_preserved"], "composite changed semantics"
    # Every shipped composite's sites sum into the winner breakdown.
    assert sum(site_arb["site_winners"].values()) \
        >= site_arb["composites_shipped"]

    entry = {
        "files": file_run["files"],
        "backends": "slr,str",
        "file_mode": {"wall_s": file_run["wall_s"],
                      "scoreboard": file_run["arbitration"]["scoreboard"]},
        "site_mode": {"wall_s": site_run["wall_s"],
                      "composites_shipped":
                          site_arb["composites_shipped"],
                      "site_winners": site_arb["site_winners"],
                      "scoreboard": site_arb["scoreboard"]},
        "slowdown_site_vs_file": round(site_run["wall_s"]
                                       / max(file_run["wall_s"], 1e-9),
                                       2),
    }
    out = REPO_ROOT / "BENCH_pipeline.json"
    payload = json.loads(out.read_text(encoding="utf-8")) \
        if out.exists() else {}
    payload["composition"] = entry
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
