"""Bench: RQ3 — runtime overhead of the transformed corpus programs,
plus the transformation pipeline's own throughput.

The paper reports "minimal performance overhead" after applying SLR and
STR on all targets of two programs; we assert the deterministic step-count
overhead stays small and the output is unchanged.  The pipeline bench
measures the sampled Table III run cold (serial, empty caches) versus
warm (``jobs=4``, caches populated), asserts identical row counts, and
records programs/sec plus cache hit rates in ``BENCH_pipeline.json``.
"""

import json
import time
from pathlib import Path

from repro.eval.perf import compute_perf


def test_perf_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: compute_perf(("zlib", "libpng"), repeat=1),
        rounds=1, iterations=1)
    for row in result.rows:
        assert row.output_identical, row.program
        # "Minimal" overhead: well under 2x; measured ~3-13%.
        assert row.step_overhead_pct < 50.0, \
            (row.program, row.step_overhead_pct)


def test_perf_all_programs_output_identical(benchmark):
    result = benchmark.pedantic(
        lambda: compute_perf(("GMP", "libtiff"), repeat=1),
        rounds=1, iterations=1)
    for row in result.rows:
        assert row.output_identical, row.program


def test_bench_pipeline_throughput(benchmark):
    """Sampled Table III, cold serial vs warm ``jobs=4``.

    Emits ``BENCH_pipeline.json`` at the repo root with wall times,
    programs/sec, cache hit rates, and the measured speedup.  The scale
    keeps the working set inside the default 512-entry LRU so the warm
    leg is a true warm-cache measurement.
    """
    from repro.cfront.cache import clear_all_caches, snapshot_stats
    from repro.core.session import reset_session
    from repro.eval.table3 import compute_table3
    from repro.samate import generate_suite

    scale, execute_limit = 0.05, 5
    n_programs = sum(len(programs)
                     for programs in generate_suite(scale).values())

    def counts(result):
        return [(r.cwe, r.programs, r.slr_applied, r.str_applied,
                 r.executed, r.fixed, r.preserved) for r in result.rows]

    # Cold leg: empty caches, one worker — the seed's execution model.
    clear_all_caches()
    reset_session()
    start = time.perf_counter()
    cold = compute_table3(scale=scale, execute_limit=execute_limit,
                          jobs=1)
    cold_wall = time.perf_counter() - start
    after_cold = snapshot_stats()

    # Warm leg: caches populated by the cold leg, four workers.
    start = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: compute_table3(scale=scale,
                               execute_limit=execute_limit, jobs=4),
        rounds=1, iterations=1)
    warm_wall = time.perf_counter() - start
    after_warm = snapshot_stats()

    assert counts(cold) == counts(warm)
    speedup = cold_wall / warm_wall
    warm_parse = after_warm["parse"].delta(after_cold["parse"])
    warm_pp = after_warm["preprocess"].delta(after_cold["preprocess"])

    payload = {
        "benchmark": "sampled Table III (SAMATE suite) transformation "
                     "pipeline",
        "scale": scale,
        "execute_limit": execute_limit,
        "programs": n_programs,
        "cold": {
            "jobs": 1,
            "wall_s": round(cold_wall, 3),
            "programs_per_s": round(n_programs / cold_wall, 2),
            "parse_cache": after_cold["parse"].as_dict(),
            "preprocess_cache": after_cold["preprocess"].as_dict(),
        },
        "warm": {
            "jobs": 4,
            "wall_s": round(warm_wall, 3),
            "programs_per_s": round(n_programs / warm_wall, 2),
            "parse_cache": warm_parse.as_dict(),
            "preprocess_cache": warm_pp.as_dict(),
        },
        "speedup": round(speedup, 2),
        "counts_identical": True,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    out.write_text(json.dumps(payload, indent=2) + "\n",
                   encoding="utf-8")

    # Acceptance target is >=3x; assert a conservative floor so a loaded
    # CI host does not flake, and record the measured value in the JSON.
    assert speedup >= 1.5, (cold_wall, warm_wall)
