"""Bench: Table III — SAMATE benchmark transformation + execution (RQ1).

Benchmarks the full per-program pipeline (preprocess, analyze, transform,
run before/after) on a stratified sample per CWE, and asserts the paper's
headline: every bad function is fixed and every good function preserved.

The full 4,505-program population is available via
``python -m repro.eval table3 --full``.
"""

import pytest

from repro.eval.samate_runner import run_samate_program, stratified_sample
from repro.samate import PAPER_COUNTS, generate_cwe, generate_suite


@pytest.mark.parametrize("cwe", sorted(PAPER_COUNTS))
def test_table3_cwe_pipeline(benchmark, cwe):
    programs = stratified_sample(generate_cwe(cwe), 8)

    def pipeline():
        return [run_samate_program(p) for p in programs]

    outcomes = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    assert all(o.bad_faulted_before for o in outcomes), \
        [o.program for o in outcomes if not o.bad_faulted_before]
    assert all(o.fixed_after for o in outcomes), \
        [(o.program, o.fault_after) for o in outcomes if not o.fixed_after]
    assert all(o.good_preserved for o in outcomes)


def test_table3_population_counts(benchmark):
    """The generated population matches the paper's Table III exactly."""
    suite = benchmark.pedantic(generate_suite, rounds=1, iterations=1)
    for cwe, (total, _) in PAPER_COUNTS.items():
        assert len(suite[cwe]) == total
        slr = sum(p.slr_applicable for p in suite[cwe])
        assert slr == PAPER_COUNTS[cwe][1]
    assert sum(len(v) for v in suite.values()) == 4505
