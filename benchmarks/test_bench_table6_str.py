"""Bench: Table VI — batch STR over the four corpus programs (RQ2).

Asserts the paper's exact totals: 296 candidate buffers, 237 replaced,
59 rejected by the interprocedural write check, and — the paper's key
claim — 100% of precondition-passing buffers replaced.
"""

from repro.eval.table6 import compute_table6


def test_table6_str_batch(benchmark):
    result = benchmark.pedantic(
        lambda: compute_table6(execute=True), rounds=1, iterations=1)
    identified, replaced, failed = result.totals
    assert identified == 296
    assert replaced == 237
    assert failed == 59
    for row in result.rows:
        # 100% of buffers that pass the preconditions are replaced.
        assert row.replaced == row.identified - row.failed_precondition
        assert row.tests_pass, f"{row.program} test suite changed"


def test_table6_overall_replacement_rate(benchmark):
    result = benchmark.pedantic(
        lambda: compute_table6(execute=False), rounds=1, iterations=1)
    identified, replaced, _ = result.totals
    # Paper: 80.01% of all identified buffers replaced.
    assert abs(100.0 * replaced / identified - 80.0) < 0.5
