"""Bench: Table I — the unsafe-function catalogue and its replacements.

Table I is reference data rather than a measurement; this bench checks the
catalogue is wired end-to-end (every unsafe function is actually replaced
by its safe alternative on a minimal program) and measures the single-site
transformation cost.
"""

import pytest

from repro.core.slr import SAFE_ALTERNATIVES, SafeLibraryReplacement
from repro.cfront.preprocessor import Preprocessor

_SNIPPETS = {
    "strcpy": "char d[8]; strcpy(d, s);",
    "strcat": "char d[8]; d[0] = '\\0'; strcat(d, s);",
    "sprintf": 'char d[32]; sprintf(d, "%s", s);',
    "vsprintf": None,       # needs a varargs wrapper, below
    "memcpy": "char d[8]; memcpy(d, s, 4);",
    "gets": "char d[8]; gets(d);",
}

_PRELUDE = ("#include <stdio.h>\n#include <string.h>\n"
            "#include <stdlib.h>\n#include <stdarg.h>\n")


def _program(fn: str) -> str:
    body = _SNIPPETS[fn]
    if body is not None:
        return _PRELUDE + f"void f(const char *s) {{ {body} }}\n"
    return _PRELUDE + """
void logit(const char *fmt, ...) {
    char d[64];
    va_list ap;
    va_start(ap, fmt);
    vsprintf(d, fmt, ap);
    va_end(ap);
    puts(d);
}
"""


@pytest.mark.parametrize("fn", sorted(SAFE_ALTERNATIVES))
def test_catalogue_replacement(benchmark, fn):
    text = Preprocessor().preprocess(_program(fn), f"{fn}.c").text

    def transform():
        return SafeLibraryReplacement(text, f"{fn}.c").run()

    result = benchmark(transform)
    assert result.transformed_count == 1
    replacement = SAFE_ALTERNATIVES[fn]
    assert replacement in result.new_text
