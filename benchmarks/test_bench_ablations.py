"""Ablation benchmarks: the design choices DESIGN.md calls out.

Each ablation disables one analysis the paper's transformations depend on
and demonstrates the concrete failure that justifies it:

1. **Alias analysis off** — SLR computes buffer sizes from stale reaching
   definitions and silently changes program behaviour.
2. **memcpy Option 1 off** — the inline-ternary-only rewrite leaves the
   paper's own GMP example overflowing through the later NUL write.
3. **Points-to cycle collapsing off** — the solver still converges on
   cycle-heavy programs but does measurably more work.
"""

import time

from repro.analysis.pointsto import PointsToAnalysis
from repro.analysis.symtab import bind
from repro.cfront.parser import parse_translation_unit
from repro.cfront.preprocessor import Preprocessor
from repro.core.slr import SafeLibraryReplacement
from repro.vm import run_source

_PRELUDE = ("#include <stdio.h>\n#include <string.h>\n"
            "#include <stdlib.h>\n")


def _pp(source: str) -> str:
    return Preprocessor().preprocess(source, "ablation.c").text


# --------------------------------------------------------- 1: alias check

_ALIAS_HAZARD = _PRELUDE + """
int main(void) {
    char small[4];
    char *p = small;
    char **pp = &p;
    *pp = malloc(64);               /* p now points at 64 heap bytes   */
    strcpy(p, "this fits in the heap block");
    printf("%s\\n", p);
    return 0;
}
"""


def test_ablation_alias_check(benchmark):
    text = _pp(_ALIAS_HAZARD)
    original = run_source(text)
    assert original.ok                      # the copy fits: no bug here

    def both():
        with_check = SafeLibraryReplacement(text, "a.c").run()
        without = SafeLibraryReplacement(text, "a.c",
                                         check_aliases=False).run()
        return with_check, without

    with_check, without = benchmark.pedantic(both, rounds=1, iterations=1)

    # With the alias check: the aliased pointer fails the precondition and
    # the (correct) program is left alone.
    outcome = with_check.outcomes[0]
    assert not outcome.transformed
    assert outcome.reason == "aliased"
    assert run_source(with_check.new_text).stdout == original.stdout

    # Without it: Algorithm 1 trusts the stale `p = small` definition,
    # sizes the copy at sizeof(small)=4, and the transformed program
    # silently truncates — behaviour broken.
    assert without.outcomes[0].transformed
    assert "sizeof(small)" in without.new_text
    broken = run_source(without.new_text)
    assert broken.ok
    assert broken.stdout != original.stdout
    assert broken.stdout == b"thi\n"


# ----------------------------------------------------- 2: memcpy Option 1

_GMP_IDIOM = _PRELUDE + """
int main(void) {
    const char *str = "0123456789abcdef";
    unsigned long numlen = 13;
    unsigned long i;
    char *num = malloc(8);          /* too small: usable size is 8     */
    memcpy(num, str, numlen);
    for (i = 0; i < numlen; i++) {  /* numlen is read after the call   */
        num[i] = num[i] + 1;
    }
    printf("%c\\n", num[0]);
    return 0;
}
"""


def test_ablation_memcpy_option1(benchmark):
    text = _pp(_GMP_IDIOM)
    assert run_source(text).fault == "buffer-overflow"

    def both():
        with_opt1 = SafeLibraryReplacement(text, "g.c").run()
        without = SafeLibraryReplacement(text, "g.c",
                                         memcpy_option1=False).run()
        return with_opt1, without

    with_opt1, without = benchmark.pedantic(both, rounds=1, iterations=1)

    # Option 1 clamps the length *variable*, so the later NUL write is in
    # bounds too: fully fixed.
    assert "numlen = malloc_usable_size(num) > numlen" in \
        with_opt1.new_text
    assert run_source(with_opt1.new_text).ok

    # Inline-only (Option 2 forced): the memcpy itself is clamped but
    # `num[numlen] = '\\0'` still writes at the unclamped index — the
    # overflow survives the transformation.  This is exactly why the
    # paper's mechanism distinguishes the two options (§III-B3).
    assert "numlen = malloc_usable_size" not in without.new_text
    residual = run_source(without.new_text)
    assert residual.fault in ("buffer-overflow", "buffer-overread")


# ------------------------------------------ 3: points-to cycle collapsing

def _cycle_heavy_program(chains: int, length: int) -> str:
    lines = ["char base[16];"]
    for c in range(chains):
        names = [f"p{c}_{i}" for i in range(length)]
        lines.append("char " + ", ".join(f"*{n}" for n in names) + ";")
        lines.append(f"{names[0]} = base;")
        for i in range(1, length):
            lines.append(f"{names[i]} = {names[i - 1]};")
        # Close the cycle.
        lines.append(f"{names[0]} = {names[-1]};")
    body = "\n    ".join(lines)
    return f"int main(void) {{\n    {body}\n    return 0;\n}}\n"


def test_ablation_cycle_collapsing(benchmark):
    text = _pp(_cycle_heavy_program(chains=6, length=24))
    unit = parse_translation_unit(text, "cycles.c")
    table = bind(unit)

    def solve(collapse: bool) -> tuple[PointsToAnalysis, float]:
        start = time.perf_counter()
        analysis = PointsToAnalysis(unit, table,
                                    collapse_cycles=collapse)
        return analysis, time.perf_counter() - start

    def both():
        return solve(True), solve(False)

    (with_scc, _), (without_scc, _) = benchmark.pedantic(
        both, rounds=1, iterations=1)

    # Same points-to answers either way (collapsing is an optimization).
    for symbol in with_scc.pointer_symbols():
        a = {n.label for n in with_scc.points_to(symbol)}
        b_syms = [s for s in without_scc.pointer_symbols()
                  if s.name == symbol.name]
        b = {n.label for n in without_scc.points_to(b_syms[0])}
        assert a == b, symbol.name
    # Every chained pointer resolves to the single underlying object.
    sample = next(s for s in with_scc.pointer_symbols()
                  if s.name == "p0_10")
    assert {n.label for n in with_scc.points_to(sample)} == {"obj:base"}
