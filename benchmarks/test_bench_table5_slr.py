"""Bench: Table V — batch SLR over the four corpus programs (RQ2).

Asserts the paper's exact totals: 317 unsafe-function sites, 259
transformed (81.7%), no parse failures, all test suites unchanged.
"""

from repro.eval.table5 import compute_table5


def test_table5_slr_batch(benchmark):
    result = benchmark.pedantic(
        lambda: compute_table5(execute=True), rounds=1, iterations=1)
    assert result.total_sites == 317
    assert result.total_transformed == 259
    assert abs(100.0 * 259 / 317 - 81.7) < 0.1
    for row in result.rows:
        assert row.parses, f"{row.program} failed to re-parse"
        assert row.tests_pass, f"{row.program} test suite changed"


def test_table5_failure_taxonomy(benchmark):
    """§IV-B: the four failure causes appear with the paper's multiplicity
    (missing allocation dominates; aliased struct, array-of-buffers, and
    ternary allocation appear exactly once each)."""
    result = benchmark.pedantic(
        lambda: compute_table5(execute=False), rounds=1, iterations=1)
    reasons: dict[str, int] = {}
    for row in result.rows:
        for reason, count in row.failure_reasons.items():
            reasons[reason] = reasons.get(reason, 0) + count
    assert reasons.get("aliased-struct") == 1
    assert reasons.get("array-of-buffers") == 1
    assert reasons.get("ternary-alloc") == 1
    assert reasons.get("no-unique-def", 0) == 55
    assert sum(reasons.values()) == 317 - 259
