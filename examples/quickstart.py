#!/usr/bin/env python3
"""Quickstart: fix a buffer overflow in C source with one call.

This is the paper's running example (§II-A4): a fifty-byte string copied
into a ten-byte buffer through a pointer.  We run the program in the
bounds-checked VM (it overflows), apply SAFE LIBRARY REPLACEMENT, and run
the fixed program.
"""

import repro

SOURCE = r"""
#include <stdio.h>
#include <string.h>

int main(void) {
    char buf[10];
    char src[100];
    memset(src, 'c', 50);
    src[50] = '\0';
    char *dst = buf;
    strcpy(dst, src);
    printf("copied: %s\n", buf);
    return 0;
}
"""


def main() -> None:
    print("=== original program ===")
    original = repro.preprocess(SOURCE)
    before = repro.run_c(original)
    print(f"result: {before!r}")
    assert before.fault == "buffer-overflow"

    print("\n=== applying SAFE LIBRARY REPLACEMENT ===")
    fixed = repro.fix_buffer_overflows(SOURCE, str_transform=False)
    for outcome in fixed.outcomes:
        print(f"  {outcome.function}:{outcome.line} "
              f"{outcome.target} -> {outcome.status}")

    print("\n=== the rewritten call site ===")
    for line in fixed.new_text.splitlines():
        if "g_strlcpy" in line:
            print(" ", line.strip())

    print("\n=== fixed program ===")
    after = repro.run_c(fixed.new_text)
    print(f"result: {after!r}")
    print(f"output: {after.stdout_text!r}")
    assert after.ok

    print("\nThe overflow is gone: g_strlcpy truncates the copy to "
          "sizeof(buf).")


if __name__ == "__main__":
    main()
