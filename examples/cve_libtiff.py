#!/usr/bin/env python3
"""Case study: the LibTIFF 3.8.2 tiff2pdf vulnerability (paper §IV-A2).

``t2p_write_pdf_string`` escapes non-printable characters into a
``char buffer[5]`` with ``sprintf(buffer, "\\%.3o", pdfstr[i])``.  When a
DocumentTag byte has its high bit set (any UTF-8 text), ``pdfstr[i]``
sign-extends to a negative int, ``%.3o`` prints eleven octal digits, and
the write overruns the buffer — a remote denial of service when
converting a crafted TIFF to PDF.

SLR replaces the sprintf with ``g_snprintf(buffer, sizeof(buffer), ...)``:
the attack input now produces truncated (wrong-looking) escape text
instead of a crash — exactly the trade the paper describes: "this
modifies what was previously acceptable by the program to be unacceptable
now, but such changes are beneficial".
"""

from repro.cfront.preprocessor import Preprocessor
from repro.core.slr import SafeLibraryReplacement
from repro.corpus.minitiff import cve_attack_program
from repro.vm import run_source


def main() -> None:
    source = cve_attack_program()
    preprocessed = Preprocessor().preprocess(source, "tiff2pdf.c").text

    print("=== the vulnerable escaping loop ===")
    for line in source.splitlines():
        if "sprintf" in line or "& 0x80" in line:
            print(" ", line.strip())

    print("\n=== converting a TIFF whose DocumentTag contains UTF-8 ===")
    before = run_source(preprocessed)
    print(f"before the fix: {before!r}")
    assert before.fault == "buffer-overflow", before

    print("\n=== applying SLR ===")
    result = SafeLibraryReplacement(preprocessed, "tiff2pdf.c").run()
    fixed_sites = [o for o in result.outcomes if o.transformed]
    for outcome in fixed_sites:
        print(f"  {outcome.function}:{outcome.line} {outcome.target} "
              f"replaced")
    for line in result.new_text.splitlines():
        if "g_snprintf" in line and "buffer" in line:
            print("  rewritten:", line.strip())

    print("\n=== the attack input after the fix ===")
    after = run_source(result.new_text)
    print(f"after the fix: {after!r}")
    print(f"output: {after.stdout_text!r}")
    assert after.ok

    print("\nThe denial-of-service is gone; the escape text for the "
          "UTF-8 byte is truncated rather than overflowing.")


if __name__ == "__main__":
    main()
