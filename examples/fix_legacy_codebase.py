#!/usr/bin/env python3
"""Batch-fixing a legacy codebase (the paper's RQ2 workflow).

Takes the mini-zlib corpus program (multiple C files, its own headers and
test suite), batch-applies SLR and STR to every possible target, verifies
the transformed files still parse, and re-runs the program's test suite to
show behaviour is preserved — the "maintainer fixing root causes in
legacy code" use case from the paper's introduction.
"""

from repro.core.batch import apply_batch
from repro.corpus import build_all
from repro.vm.interp import run_program_files


def main() -> None:
    program = build_all()["zlib"]
    print(f"program: {program.name} "
          f"({program.file_count} files, {program.kloc():.2f} KLOC)")

    print("\n=== running the original test suite ===")
    before = run_program_files(program.preprocess().files)
    print(f"exit={before.exit_code} fault={before.fault} "
          f"stdout={len(before.stdout)} bytes")
    assert b"ALL TESTS PASSED" in before.stdout

    print("\n=== batch-applying SLR and STR on all targets ===")
    batch = apply_batch(program)
    print(f"SLR: {batch.transformed('SLR')}/{batch.candidates('SLR')} "
          f"unsafe calls replaced ({batch.percent('SLR'):.1f}%)")
    print(f"STR: {batch.transformed('STR')}/{batch.candidates('STR')} "
          f"buffers replaced")
    print(f"SLR failures by reason: {batch.failures_by_reason('SLR')}")
    print(f"all transformed files re-parse: {batch.all_parse}")

    print("\n=== per-file summary ===")
    for report in batch.reports:
        slr = report.slr.transformed_count if report.slr else 0
        str_count = report.str_.transformed_count if report.str_ else 0
        print(f"  {report.filename}: {slr} SLR sites, "
              f"{str_count} STR buffers rewritten")

    print("\n=== running the transformed test suite ===")
    after = run_program_files(batch.transformed_program.files)
    print(f"exit={after.exit_code} fault={after.fault} "
          f"stdout={len(after.stdout)} bytes")
    assert after.ok
    assert after.stdout == before.stdout, "behaviour changed!"
    print("\ntest suite output identical before and after: the batch "
          "fix is behaviour-preserving.")


if __name__ == "__main__":
    main()
