#!/usr/bin/env python3
"""Tour of the program analyses behind the transformations (paper §III-A).

Shows, on one small program, what each analysis computes: points-to sets,
alias sets, reaching definitions, the interprocedural write check, and
Algorithm 1's buffer-length computation — the machinery that decides
whether a transformation site passes its preconditions.
"""

from repro.analysis import analyze
from repro.cfront import astnodes as ast
from repro.cfront.parser import preprocess_and_parse
from repro.core.bufferlen import BufferLengthAnalyzer, LengthFailure

SOURCE = r"""
#include <string.h>
#include <stdlib.h>

void scrub(char *victim) { victim[0] = '\0'; }
int inspect(const char *subject) { return subject[0]; }

int main(void) {
    char stack_buf[64];
    char *p = stack_buf;
    char *q = stack_buf;            /* aliases p */
    char *heap = malloc(100);
    char *fresh = malloc(100);

    strcpy(p, "into the stack buffer");
    strcpy(heap, "into the heap");
    strcpy(fresh + 10, "offset write");

    scrub(stack_buf);
    inspect(heap);
    return 0;
}
"""


def main() -> None:
    unit, text, pa = preprocess_and_parse(SOURCE, "demo.c"), None, None
    unit, text = unit
    pa = analyze(unit)
    main_fn = unit.function("main")
    locals_ = {s.name: s for s in pa.symbols.locals_of["main"]}

    print("=== points-to sets (inclusion-based, Hardekopf-style) ===")
    for name in ("p", "q", "heap", "fresh"):
        targets = sorted(n.label for n in pa.pointsto.points_to(
            locals_[name]))
        print(f"  {name} -> {targets}")

    print("\n=== alias analysis ===")
    for name in ("p", "q", "heap", "fresh"):
        symbol = locals_[name]
        aliases = sorted(s.name for s in pa.aliases.aliases_of(symbol))
        print(f"  ISALIASED({name}) = {pa.aliases.is_aliased(symbol)}"
              f"{'  (aliases: ' + ', '.join(aliases) + ')' if aliases else ''}")

    print("\n=== reaching definitions at each strcpy ===")
    reaching = pa.reaching_of("main")
    calls = [n for n in main_fn.walk()
             if isinstance(n, ast.Call) and n.callee_name == "strcpy"]
    lengths = BufferLengthAnalyzer(pa, text)
    for call in calls:
        dest = call.args[0]
        print(f"  strcpy dest `{dest.source_text(text)}`:")
        result = lengths.get_buffer_length(dest)
        if isinstance(result, LengthFailure):
            print(f"    GetBufferLength -> FAIL ({result.reason}): "
                  f"{result.detail}")
        else:
            print(f"    GetBufferLength -> {result.render()} "
                  f"[{result.kind}]")

    print("\n=== interprocedural write check (STR precondition) ===")
    for fn_name in ("scrub", "inspect"):
        writes = pa.interproc.function_may_write_param(fn_name, 0)
        print(f"  {fn_name}(buf) may write through its parameter: "
              f"{writes}")

    print("\n=== call graph ===")
    print(f"  main calls: {sorted(pa.callgraph.callees('main'))}")


if __name__ == "__main__":
    main()
