/* memcpy with an attacker-controlled length: `n` is read from stdin and
 * can exceed sizeof(dst).  SLR clamps the copy to the destination's
 * size (Option 1 when `n` is reused afterwards, otherwise an inline
 * ternary), which the oracle verifies preserves benign behaviour. */
#include <stdio.h>
#include <string.h>

int main(void) {
    char src[64];
    char dst[16];
    char line[16];
    int n = 0;
    memset(src, 'x', sizeof(src));
    if (fgets(line, sizeof(line), stdin))
        n = (int)strlen(line) * 8;
    memcpy(dst, src, n);
    dst[sizeof(dst) - 1] = '\0';
    printf("copied %d\n", n);
    return 0;
}
