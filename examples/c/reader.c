/* gets() can write past the end of `line` on long stdin lines.  SLR
 * replaces it with fgets plus a newline-stripping epilogue; the oracle's
 * overflow input (64 bytes of 'A') shows the fault disappearing while
 * benign short lines keep their exact output. */
#include <stdio.h>

int main(void) {
    char line[16];
    if (gets(line))
        printf("read: %s\n", line);
    return 0;
}
