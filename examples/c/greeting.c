/* Classic strcpy overflow: the name buffer is far smaller than the
 * greeting copied into it.  SLR rewrites the strcpy to g_strlcpy and
 * the differential oracle classifies the change as overflow-prevented:
 *
 *     python -m repro validate examples/c/greeting.c
 */
#include <stdio.h>
#include <string.h>

int main(void) {
    char name[8];
    strcpy(name, "a name that is much too long for eight bytes");
    printf("hello, %s\n", name);
    return 0;
}
