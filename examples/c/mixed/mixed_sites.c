/* Mixed-site fixture: no single backend can fix both overflow sites.
 *
 * Site A (strcpy into a_buf): SLR sizes a_buf via Algorithm 1 and
 * rewrites the call to g_strlcpy; STR must refuse a_buf because
 * stamp() may write through the pointer it receives.
 * Site B (index loop into b_buf): there is no unsafe library call, so
 * SLR/tr24731/s3lib have nothing to rewrite; STR replaces b_buf with a
 * stralloc, whose element writes grow the buffer on demand.
 *
 * Whole-file arbitration therefore ships at most one fixed site;
 * per-site arbitration (--arbitration site) composes SLR's fix for
 * site A with STR's fix for site B and prevents both overflows.
 */
#include <stdio.h>
#include <string.h>

void stamp(char *d)
{
    d[0] = '#';
}

int main(void)
{
    char line[300];
    char a_buf[8];
    char b_buf[8];
    int i;
    if (!fgets(line, 300, stdin))
        return 0;
    if (line[0] == 'B') {
        for (i = 0; line[i] != '\n' && line[i] != 0; i++) {
            b_buf[i] = line[i];
        }
        b_buf[i] = 0;
        printf("b:%s\n", b_buf);
    } else {
        strcpy(a_buf, line);
        stamp(a_buf);
        printf("a:%s\n", a_buf);
    }
    return 0;
}
