/* Parse-stage failure: K&R-style parameter declarations, which the
 * C89+ frontend deliberately does not accept. */
int add(a, b)
int a;
int b;
{
    return a + b;
}

int main(void) {
    return add(1, 2);
}
