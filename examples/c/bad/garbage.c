/* Lex-stage failure: bytes that are not C tokens at all. */
 @@@ $$$ ~~~!!! not C `` 
