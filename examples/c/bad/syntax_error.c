/* Parse-stage failure: the initializer is missing its expression and
 * the return statement its semicolon. */
int main(void) {
    int x = ;
    return x
}
