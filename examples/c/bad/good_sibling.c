/* Well-formed file living among broken ones: the batch driver must
 * still transform it while its siblings fail with diagnostics. */
extern char *strcpy(char *dest, const char *src);
extern char *gets(char *s);

int main(void) {
    char buffer[16];
    char copy[16];
    gets(buffer);
    strcpy(copy, buffer);
    return 0;
}
