/* Preprocess-stage failure: the quoted header does not exist. */
#include "no_such_header_anywhere.h"

int main(void) {
    return 0;
}
