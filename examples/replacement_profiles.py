#!/usr/bin/env python3
"""Comparing SLR's two replacement profiles (Table I families).

The paper's Table I catalogues several safe-function families.  The glib
family (the paper's Linux implementation) *truncates* an oversized
operation; the ISO/IEC TR 24731 / C11 Annex K family (`strcpy_s` & co.,
the "Windows analogs") *rejects* it — the destination is emptied and an
errno_t reports the violation.  Same transformation machinery, same
Algorithm 1 size computation, different recovery policy.
"""

from repro.cfront.preprocessor import Preprocessor
from repro.core.slr import SafeLibraryReplacement
from repro.vm import run_source

SOURCE = r"""
#include <stdio.h>
#include <string.h>

int main(void) {
    char username[12];
    strcpy(username, "averyverylongusername");
    printf("logged in as: [%s]\n", username);
    return 0;
}
"""


def main() -> None:
    text = Preprocessor().preprocess(SOURCE, "login.c").text

    print("=== original ===")
    before = run_source(text)
    print(f"  {before!r}")
    assert before.fault == "buffer-overflow"

    for profile in ("glib", "c11"):
        print(f"\n=== profile: {profile} ===")
        result = SafeLibraryReplacement(text, "login.c",
                                        profile=profile).run()
        call_line = next(line.strip()
                         for line in result.new_text.splitlines()
                         if "username," in line and "printf" not in line)
        print(f"  rewrite: {call_line}")
        outcome = run_source(result.new_text)
        print(f"  runtime: {outcome!r}")
        print(f"  output : {outcome.stdout_text.strip()!r}")
        assert outcome.ok

    print("\nglib truncates the oversized name; Annex K refuses it "
          "outright.\nBoth eliminate the overflow — choose per your "
          "failure-policy taste.")


if __name__ == "__main__":
    main()
