"""The LibTIFF tiff2pdf case study (paper §IV-A2), end to end."""

from repro.cfront.preprocessor import Preprocessor
from repro.core.slr import SafeLibraryReplacement
from repro.corpus.minitiff import cve_attack_program
from repro.vm import run_source


def _preprocessed() -> str:
    return Preprocessor().preprocess(cve_attack_program(), "t2p.c").text


class TestVulnerability:
    def test_attack_input_overflows(self):
        result = run_source(_preprocessed())
        assert result.fault == "buffer-overflow"
        assert "buffer" in result.fault_detail

    def test_benign_input_is_fine(self):
        source = cve_attack_program().replace("(char)0xC3", "'e'")
        pp = Preprocessor().preprocess(source, "t2p.c").text
        result = run_source(pp)
        assert result.ok
        assert result.stdout_text == "escaped=cafe\n"

    def test_control_chars_exactly_fill_buffer(self):
        # '\t' -> "\011": 4 chars + NUL exactly fills char buffer[5].
        source = cve_attack_program().replace("(char)0xC3", "'\\t'")
        pp = Preprocessor().preprocess(source, "t2p.c").text
        result = run_source(pp)
        assert result.ok
        assert result.stdout_text == "escaped=caf\\011\n"

    def test_sign_extension_is_the_root_cause(self):
        # The same byte as unsigned would only need 3 octal digits; the
        # fault happens because char sign-extends to a negative int.
        result = run_source(_preprocessed())
        assert result.fault == "buffer-overflow"


class TestFix:
    def test_slr_replaces_the_sprintf(self):
        result = SafeLibraryReplacement(_preprocessed(), "t2p.c").run()
        sprintf_outcomes = [o for o in result.outcomes
                            if o.target == "sprintf"]
        assert len(sprintf_outcomes) == 1
        assert sprintf_outcomes[0].transformed
        assert 'g_snprintf(buffer, sizeof(buffer), "\\\\%.3o", ' \
               "pdfstr[i])" in result.new_text

    def test_attack_no_longer_crashes(self):
        result = SafeLibraryReplacement(_preprocessed(), "t2p.c").run()
        after = run_source(result.new_text)
        assert after.ok
        # The escape text is truncated — behaviour intentionally changed
        # for the attack input, exactly as the paper describes.
        assert after.stdout_text.startswith("escaped=caf")

    def test_benign_behaviour_unchanged_by_fix(self):
        source = cve_attack_program().replace("(char)0xC3", "'\\t'")
        pp = Preprocessor().preprocess(source, "t2p.c").text
        before = run_source(pp)
        fixed = SafeLibraryReplacement(pp, "t2p.c").run()
        after = run_source(fixed.new_text)
        assert before.ok and after.ok
        assert before.stdout == after.stdout
