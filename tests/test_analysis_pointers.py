"""Tests for points-to, alias, call graph, and interprocedural analyses."""

from repro.cfront import astnodes as ast

from .helpers import local_symbols, parse_and_analyze


class TestPointsTo:
    def test_pointer_to_stack_array(self):
        src = "int main(void){ char buf[8]; char *p = buf; return 0; }"
        _, _, pa = parse_and_analyze(src)
        p = local_symbols(pa, "main")["p"]
        labels = {n.label for n in pa.pointsto.points_to(p)}
        assert labels == {"obj:buf"}

    def test_address_of_scalar(self):
        # Scalar storage unifies with the variable node (Andersen-style).
        src = "int main(void){ int v; int *p = &v; return 0; }"
        _, _, pa = parse_and_analyze(src)
        syms = local_symbols(pa, "main")
        targets = pa.pointsto.points_to(syms["p"])
        assert len(targets) == 1
        assert next(iter(targets)).symbol is syms["v"]

    def test_heap_allocation_site(self):
        src = """#include <stdlib.h>
        int main(void){ char *p = malloc(8); return 0; }"""
        _, _, pa = parse_and_analyze(src)
        p = local_symbols(pa, "main")["p"]
        nodes = pa.pointsto.points_to(p)
        assert len(nodes) == 1
        assert next(iter(nodes)).kind == "heap"

    def test_copy_propagation(self):
        src = """int main(void){
            char buf[8]; char *a = buf; char *b = a; return 0; }"""
        _, _, pa = parse_and_analyze(src)
        syms = local_symbols(pa, "main")
        a_pts = {n.label for n in pa.pointsto.points_to(syms["a"])}
        b_pts = {n.label for n in pa.pointsto.points_to(syms["b"])}
        assert a_pts == b_pts == {"obj:buf"}

    def test_conditional_flow_joins(self):
        src = """int main(void){
            char x[4], y[4];
            int c = 1;
            char *p = c ? x : y;
            return 0; }"""
        _, _, pa = parse_and_analyze(src)
        p = local_symbols(pa, "main")["p"]
        labels = {n.label for n in pa.pointsto.points_to(p)}
        assert labels == {"obj:x", "obj:y"}

    def test_pointer_arithmetic_stays_in_object(self):
        src = """int main(void){
            char buf[8]; char *p = buf + 3; return 0; }"""
        _, _, pa = parse_and_analyze(src)
        p = local_symbols(pa, "main")["p"]
        labels = {n.label for n in pa.pointsto.points_to(p)}
        assert labels == {"obj:buf"}

    def test_separate_heap_sites_distinct(self):
        src = """#include <stdlib.h>
        int main(void){
            char *a = malloc(4);
            char *b = malloc(4);
            return 0; }"""
        _, _, pa = parse_and_analyze(src)
        syms = local_symbols(pa, "main")
        a_pts = {n.index for n in pa.pointsto.points_to(syms["a"])}
        b_pts = {n.index for n in pa.pointsto.points_to(syms["b"])}
        assert not (a_pts & b_pts)

    def test_store_through_pointer(self):
        # **pp = q propagation: p = &x; pp = &p; *pp = y;
        src = """int main(void){
            char x[4], y[4];
            char *p = x;
            char **pp = &p;
            *pp = y;
            return 0; }"""
        _, _, pa = parse_and_analyze(src)
        p = local_symbols(pa, "main")["p"]
        labels = {n.label for n in pa.pointsto.points_to(p)}
        assert "obj:y" in labels

    def test_cycle_collapsing_terminates(self):
        src = """int main(void){
            char buf[4];
            char *a = buf; char *b; char *c;
            b = a; c = b; a = c;
            return 0; }"""
        _, _, pa = parse_and_analyze(src)
        a = local_symbols(pa, "main")["a"]
        labels = {n.label for n in pa.pointsto.points_to(a)}
        assert labels == {"obj:buf"}


class TestAlias:
    def test_single_pointer_not_aliased(self):
        src = "int main(void){ char buf[8]; char *p = buf; return 0; }"
        _, _, pa = parse_and_analyze(src)
        p = local_symbols(pa, "main")["p"]
        assert not pa.aliases.is_aliased(p)

    def test_two_pointers_same_target_aliased(self):
        src = """int main(void){
            char buf[8];
            char *p = buf;
            char *q = buf;
            return 0; }"""
        _, _, pa = parse_and_analyze(src)
        syms = local_symbols(pa, "main")
        assert pa.aliases.is_aliased(syms["p"])
        assert pa.aliases.is_aliased(syms["q"])
        assert syms["q"] in pa.aliases.aliases_of(syms["p"])

    def test_pointers_to_different_objects_not_aliased(self):
        src = """int main(void){
            char a[4], b[4];
            char *p = a;
            char *q = b;
            return 0; }"""
        _, _, pa = parse_and_analyze(src)
        syms = local_symbols(pa, "main")
        assert not pa.aliases.is_aliased(syms["p"])
        assert not pa.aliases.is_aliased(syms["q"])

    def test_alias_sets_partition(self):
        src = """int main(void){
            char buf[8], other[8];
            char *a = buf; char *b = buf;
            char *c = other;
            return 0; }"""
        _, _, pa = parse_and_analyze(src)
        groups = pa.aliases.alias_sets()
        assert len(groups) == 1
        names = {s.name for s in groups[0]}
        assert names == {"a", "b"}

    def test_struct_aliased_when_pointed_to(self):
        src = """
        struct s { char *buf; };
        int main(void){
            struct s v;
            struct s *p = &v;
            return 0; }"""
        _, _, pa = parse_and_analyze(src)
        v = local_symbols(pa, "main")["v"]
        assert pa.aliases.struct_is_aliased(v)

    def test_struct_not_aliased_without_pointers(self):
        src = """
        struct s { char *buf; };
        int main(void){ struct s v; v.buf = 0; return 0; }"""
        _, _, pa = parse_and_analyze(src)
        v = local_symbols(pa, "main")["v"]
        assert not pa.aliases.struct_is_aliased(v)


class TestCallGraph:
    SRC = """
    int leaf(int x) { return x; }
    int mid(int x) { return leaf(x) + leaf(x + 1); }
    int main(void) { return mid(2); }
    """

    def test_direct_edges(self):
        _, _, pa = parse_and_analyze(self.SRC)
        assert pa.callgraph.callees("main") == {"mid"}
        assert pa.callgraph.callees("mid") == {"leaf"}

    def test_callers(self):
        _, _, pa = parse_and_analyze(self.SRC)
        assert pa.callgraph.callers("leaf") == {"mid"}

    def test_transitive(self):
        _, _, pa = parse_and_analyze(self.SRC)
        assert pa.callgraph.transitive_callees("main") == {"mid", "leaf"}

    def test_recursion_detected(self):
        src = "int fact(int n){ return n <= 1 ? 1 : n * fact(n - 1); }"
        _, _, pa = parse_and_analyze(src)
        assert pa.callgraph.is_recursive("fact")

    def test_indirect_call_recorded(self):
        src = """
        int f(void) { return 1; }
        int main(void){ int (*fp)(void) = f; return fp(); }
        """
        _, _, pa = parse_and_analyze(src)
        assert "<indirect>" in pa.callgraph.callees("main")


class TestInterprocWriteCheck:
    def test_pure_reader(self):
        src = """
        int reader(const char *p) { return p[0] + p[1]; }
        int main(void){ return 0; }
        """
        _, _, pa = parse_and_analyze(src)
        assert not pa.interproc.function_may_write_param("reader", 0)

    def test_index_store(self):
        src = "void w(char *p) { p[0] = 'x'; }"
        _, _, pa = parse_and_analyze(src)
        assert pa.interproc.function_may_write_param("w", 0)

    def test_deref_store(self):
        src = "void w(char *p) { *p = 'x'; }"
        _, _, pa = parse_and_analyze(src)
        assert pa.interproc.function_may_write_param("w", 0)

    def test_deref_increment(self):
        src = "void w(char *p) { (*p)++; }"
        _, _, pa = parse_and_analyze(src)
        assert pa.interproc.function_may_write_param("w", 0)

    def test_write_through_local_alias(self):
        src = """
        void w(char *p) {
            char *q = p;
            q[1] = 'y';
        }"""
        _, _, pa = parse_and_analyze(src)
        assert pa.interproc.function_may_write_param("w", 0)

    def test_pass_to_writing_libc(self):
        src = """
        #include <string.h>
        void w(char *p) { strcpy(p, "data"); }
        """
        _, _, pa = parse_and_analyze(src)
        assert pa.interproc.function_may_write_param("w", 0)

    def test_pass_to_readonly_libc(self):
        src = """
        #include <string.h>
        int r(const char *p) { return (int)strlen(p); }
        """
        _, _, pa = parse_and_analyze(src)
        assert not pa.interproc.function_may_write_param("r", 0)

    def test_transitive_through_user_function(self):
        src = """
        void inner(char *q) { q[0] = 'z'; }
        void outer(char *p) { inner(p); }
        """
        _, _, pa = parse_and_analyze(src)
        assert pa.interproc.function_may_write_param("outer", 0)

    def test_transitive_reader_chain(self):
        src = """
        int inner(const char *q) { return q[0]; }
        int outer(const char *p) { return inner(p); }
        """
        _, _, pa = parse_and_analyze(src)
        assert not pa.interproc.function_may_write_param("outer", 0)

    def test_recursive_cycle_conservative(self):
        src = """
        int spin(char *p, int n) {
            if (n == 0) return 0;
            return spin(p, n - 1);
        }"""
        _, _, pa = parse_and_analyze(src)
        # Cycle seeds True; the analysis may stay conservative here.
        result = pa.interproc.function_may_write_param("spin", 0)
        assert result in (True, False)      # must terminate either way

    def test_undefined_callee_assumed_writing(self):
        _, _, pa = parse_and_analyze("int main(void){ return 0; }")
        assert pa.interproc.function_may_write_param("mystery", 0)

    def test_only_named_param_flagged(self):
        src = "void w(char *a, char *b) { b[0] = 'x'; }"
        _, _, pa = parse_and_analyze(src)
        assert not pa.interproc.function_may_write_param("w", 0)
        assert pa.interproc.function_may_write_param("w", 1)

    def test_escape_to_global(self):
        src = """
        char *sink;
        void w(char *p) { sink = p; }
        """
        _, _, pa = parse_and_analyze(src)
        assert pa.interproc.function_may_write_param("w", 0)
