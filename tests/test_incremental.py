"""Function-granular incremental re-analysis (core/incremental.py).

The engine's contract is byte-identity: every update — incremental,
no-op, or fallback — must produce exactly the transformed text,
per-site outcomes, and oracle verdicts a cold
:func:`repro.core.batch.transform_file` run over the same raw text
would, at any worker count.  These tests enforce the differential
against both the serial and the fork-pool executors, plus the cache
and invalidation behaviour the latency win rests on.
"""

import os

import pytest

from repro.core.batch import FileTask, SourceProgram, apply_batch, \
    transform_file
from repro.core.incremental import IncrementalEngine, _FUNC_CACHE, \
    incremental_enabled
from repro.core.session import get_session


BASE = """#include <stdio.h>
#include <string.h>

void copy_name(const char *src) {
    char buf[16];
    strcpy(buf, src);
    printf("name %s\\n", buf);
}

void copy_title(const char *src) {
    char buf[24];
    strcpy(buf, src);
    printf("title %s\\n", buf);
}

void copy_note(const char *src) {
    char note[12];
    strcat(note, src);
    printf("note %s\\n", note);
}

int main(void) {
    char line[32];
    fgets(line, sizeof line, stdin);
    copy_name(line);
    return 0;
}
"""

SEED = 11


def edit_note(text):
    """Touch only copy_note (uncalled from main)."""
    return text.replace('printf("note %s\\n", note);',
                        'printf("note: %s\\n", note);')


def edit_title(text):
    return text.replace("char buf[24];", "char buf[20];")


def cold_report(text, filename="inc.c"):
    session = get_session()
    pp = session.preprocess(text, filename).text
    return transform_file(FileTask(filename, pp, validate=True,
                                   fuzz_seed=SEED))


def cold_outcomes(report):
    out = []
    for result in (report.slr, report.str_):
        if result is not None:
            out.extend(result.outcomes)
    return out


def assert_matches_cold(update, cold):
    assert update.final_text == cold.final_text
    assert update.parses == cold.parses
    assert list(update.slr_outcomes) + list(update.str_outcomes) \
        == cold_outcomes(cold)
    assert update.verdict_counts() == cold.validation.counts()


def warm_engine(text=BASE, filename="inc.c"):
    engine = IncrementalEngine(filename, fuzz_seed=SEED)
    first = engine.update(text)
    assert first.mode == "full" and first.reason == "cold-start"
    assert engine._raw_text is not None, "warm-up state rebuild failed"
    return engine, first


def test_enabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
    assert incremental_enabled()
    monkeypatch.setenv("REPRO_INCREMENTAL", "off")
    assert not incremental_enabled()


def test_warm_full_matches_cold_pipeline():
    _engine, first = warm_engine()
    assert_matches_cold(first, cold_report(BASE))


def test_one_function_edit_is_incremental_and_identical():
    engine, _ = warm_engine()
    edited = edit_note(BASE)
    update = engine.update(edited)
    assert update.mode == "incremental"
    assert update.changed == frozenset({"copy_note"})
    assert update.invalidated == frozenset({"copy_note"})
    assert_matches_cold(update, cold_report(edited))


def test_unchanged_functions_hit_function_cache(fresh_store):
    engine, _ = warm_engine()
    update = engine.update(edit_note(BASE))
    assert update.mode == "incremental"
    # copy_name/copy_title/main artifacts replay from the func family;
    # only copy_note's component (pp render + SLR + STR) recomputes.
    assert update.func_hits > 0, update.as_dict()
    assert 0 < update.func_misses <= 3, update.as_dict()


def test_probe_reuse_when_dirty_function_never_entered():
    engine, _ = warm_engine()
    update = engine.update(edit_note(BASE))
    # copy_note is never called: every probe's previous execution pair
    # still stands, so the oracle re-executes nothing.
    assert update.probes_executed == 0, update.as_dict()
    assert update.probes_reused > 0
    assert update.verdict_counts() == cold_report(edit_note(BASE)) \
        .validation.counts()


def test_called_function_edit_reexecutes_probes():
    engine, _ = warm_engine()
    edited = BASE.replace('printf("name %s\\n", buf);',
                          'printf("name: %s\\n", buf);')
    update = engine.update(edited)
    assert update.mode == "incremental"
    # main's component includes copy_name, so both are re-transformed
    # and every probe that entered copy_name re-executes.
    assert update.probes_executed > 0
    assert_matches_cold(update, cold_report(edited))


def test_comment_edit_is_no_op():
    engine, before = warm_engine()
    commented = BASE.replace("char buf[16];",
                             "char buf[16]; /* fixed-size scratch */")
    update = engine.update(commented)
    assert update.mode == "no-op"
    assert update.final_text == before.final_text
    assert update.func_misses == 0
    assert update.probes_executed == 0


def test_whitespace_edits_are_no_ops():
    engine, before = warm_engine()
    # The preprocessor renders one space between tokens regardless of
    # the raw spacing, so this is a genuine no-op — the cold pipeline
    # would produce the same bytes.
    spaced = BASE.replace("}\n\nint main", "}\n\nint  main")
    update = engine.update(spaced)
    assert update.mode == "no-op"
    assert update.final_text == cold_report(spaced).final_text
    # Extra blank line between functions: pp output differs only if the
    # blank-line structure survives squeezing; either way the engine
    # must match cold.
    gapped = BASE.replace("}\n\nint main", "}\n\n\nint main")
    update = engine.update(gapped)
    assert update.final_text == cold_report(gapped).final_text


def test_identical_input_is_no_op():
    engine, _ = warm_engine()
    update = engine.update(BASE)
    assert update.mode == "no-op"
    assert update.reason == "identical-input"


def test_insert_delete_rename_match_cold():
    engine, _ = warm_engine()
    inserted = BASE.replace(
        "int main(void) {",
        "void copy_extra(const char *src) {\n"
        "    char extra[10];\n"
        "    strcpy(extra, src);\n"
        "}\n\n"
        "int main(void) {")
    update = engine.update(inserted)
    assert update.mode == "incremental"
    assert update.inserted == frozenset({"copy_extra"})
    assert_matches_cold(update, cold_report(inserted))

    deleted = inserted.replace(
        "void copy_note(const char *src) {\n"
        "    char note[12];\n"
        "    strcat(note, src);\n"
        '    printf("note %s\\n", note);\n'
        "}\n\n", "")
    update = engine.update(deleted)
    assert update.mode == "incremental"
    assert update.deleted == frozenset({"copy_note"})
    assert_matches_cold(update, cold_report(deleted))

    renamed = deleted.replace("copy_extra", "copy_spare")
    update = engine.update(renamed)
    assert update.mode == "incremental"
    assert update.inserted == frozenset({"copy_spare"})
    assert update.deleted == frozenset({"copy_extra"})
    assert_matches_cold(update, cold_report(renamed))


def test_preamble_edit_falls_back_to_full():
    engine, _ = warm_engine()
    edited = BASE.replace("#include <string.h>",
                          "#include <string.h>\n#define LIMIT 8")
    update = engine.update(edited)
    assert update.mode == "full"
    assert update.reason == "preamble-changed"
    assert_matches_cold(update, cold_report(edited))
    # The fallback rebuilt warm state: the next small edit goes
    # incremental again.
    update = engine.update(edit_note(edited))
    assert update.mode == "incremental"
    assert_matches_cold(update, cold_report(edit_note(edited)))


def test_reorder_falls_back_but_matches():
    engine, _ = warm_engine()
    reordered = BASE.replace(
        "void copy_name(const char *src) {\n"
        "    char buf[16];\n"
        "    strcpy(buf, src);\n"
        '    printf("name %s\\n", buf);\n'
        "}\n\n"
        "void copy_title(const char *src) {\n"
        "    char buf[24];\n"
        "    strcpy(buf, src);\n"
        '    printf("title %s\\n", buf);\n'
        "}",
        "void copy_title(const char *src) {\n"
        "    char buf[24];\n"
        "    strcpy(buf, src);\n"
        '    printf("title %s\\n", buf);\n'
        "}\n\n"
        "void copy_name(const char *src) {\n"
        "    char buf[16];\n"
        "    strcpy(buf, src);\n"
        '    printf("name %s\\n", buf);\n'
        "}")
    assert reordered != BASE
    update = engine.update(reordered)
    assert update.mode == "full"
    assert update.reason == "functions-reordered"
    assert_matches_cold(update, cold_report(reordered))


def test_invalidate_wiring_on_retained_analysis():
    engine, _ = warm_engine()
    calls = []
    analysis = engine._analysis
    assert analysis is not None
    original = analysis.invalidate

    def recording(name=None):
        calls.append(name)
        return original(name)

    analysis.invalidate = recording
    update = engine.update(edit_title(BASE))
    assert update.mode == "incremental"
    assert calls == ["copy_title"]


def test_disabled_by_env(monkeypatch):
    engine, _ = warm_engine()
    monkeypatch.setenv("REPRO_INCREMENTAL", "off")
    edited = edit_note(BASE)
    update = engine.update(edited)
    assert update.mode == "full"
    assert update.reason.startswith("disabled")
    assert_matches_cold(update, cold_report(edited))


def test_position_macro_is_permanently_unsupported():
    src = BASE.replace('printf("note %s\\n", note);',
                       'printf("note %d\\n", __LINE__);')
    engine = IncrementalEngine("line.c", fuzz_seed=SEED)
    engine.update(src)
    assert engine._unsupported == "position-dependent-macro"
    update = engine.update(edit_title(src))
    assert update.mode == "full"
    assert_matches_cold(update, cold_report(edit_title(src), "line.c"))


def test_validation_skipped_when_disabled():
    engine = IncrementalEngine("noval.c", validate=False)
    first = engine.update(BASE)
    assert first.validation is None
    update = engine.update(edit_note(BASE))
    assert update.mode == "incremental"
    assert update.validation is None
    assert update.final_text == cold_report(edit_note(BASE),
                                            "noval.c").final_text


# ------------------------------------------------ batch differentials

def _batch_differential(jobs):
    """Incremental engines vs ``apply_batch`` at a given worker count.

    Four files, each a different single-function edit of the same base;
    each engine warms on the base and applies its file's edit.  The
    batch preprocesses/transforms/validates cold — reports must match
    the engines byte for byte.
    """
    edits = {
        "edit_note.c": edit_note(BASE),
        "edit_title.c": edit_title(BASE),
        "edit_main.c": BASE.replace("copy_name(line);",
                                    "copy_name(line);\n    copy_title(line);"),
        "edit_none.c": BASE,
    }
    updates = {}
    for filename, text in edits.items():
        engine = IncrementalEngine(filename, fuzz_seed=SEED)
        engine.update(BASE)
        updates[filename] = engine.update(text)
        expected = "no-op" if text == BASE else "incremental"
        assert updates[filename].mode == expected, \
            (filename, updates[filename].mode, updates[filename].reason)

    result = apply_batch(SourceProgram("differential", dict(edits)),
                         jobs=jobs, validate=True, fuzz_seed=SEED)
    assert len(result.reports) == len(edits)
    for report in result.reports:
        update = updates[report.filename]
        assert update.final_text == report.final_text, report.filename
        assert update.parses == report.parses
        assert list(update.slr_outcomes) + list(update.str_outcomes) \
            == cold_outcomes(report), report.filename
        assert update.verdict_counts() == report.validation.counts(), \
            report.filename


def test_incremental_matches_batch_jobs_1():
    _batch_differential(jobs=1)


def test_incremental_matches_batch_jobs_4():
    _batch_differential(jobs=4)
