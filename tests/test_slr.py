"""Tests for the SAFE LIBRARY REPLACEMENT transformation."""

from repro.cfront.parser import parse_translation_unit
from repro.core.slr import (
    SAFE_ALTERNATIVES, SafeLibraryReplacement, UNSAFE_FUNCTIONS,
    _already_declared,
)

from .helpers import pp, run


def slr(src: str):
    return SafeLibraryReplacement(pp(src), "test.c").run()


PRELUDE = ("#include <stdio.h>\n#include <string.h>\n"
           "#include <stdlib.h>\n")


class TestCatalogue:
    def test_six_unsafe_functions(self):
        assert UNSAFE_FUNCTIONS == {"strcpy", "strcat", "sprintf",
                                    "vsprintf", "memcpy", "gets"}

    def test_alternatives_match_table1(self):
        assert SAFE_ALTERNATIVES["strcpy"] == "g_strlcpy"
        assert SAFE_ALTERNATIVES["strcat"] == "g_strlcat"
        assert SAFE_ALTERNATIVES["sprintf"] == "g_snprintf"
        assert SAFE_ALTERNATIVES["vsprintf"] == "g_vsnprintf"
        assert SAFE_ALTERNATIVES["gets"] == "fgets"


class TestStrcpyStrcat:
    def test_paper_example(self):
        result = slr(PRELUDE + """
        int main(void) {
            char buf[10];
            char src[100];
            memset(src, 'c', 50);
            src[50] = '\\0';
            char *dst = buf;
            strcpy(dst, src);
            return 0;
        }""")
        assert "g_strlcpy(dst, src, sizeof(buf))" in result.new_text
        assert "strcpy(dst, src)" not in result.new_text

    def test_strcat_minigzip_example(self):
        result = slr(PRELUDE + """
        void f(char *name) {
            char outfile[64];
            strcpy(outfile, name);
            strcat(outfile, ".gz");
        }""")
        assert 'g_strlcat(outfile, ".gz", sizeof(outfile))' in \
            result.new_text

    def test_precondition_failure_leaves_site_untouched(self):
        result = slr(PRELUDE + """
        void f(char *dst, const char *src) { strcpy(dst, src); }""")
        assert "strcpy(dst, src)" in result.new_text
        outcome = result.outcomes[0]
        assert not outcome.transformed
        assert outcome.reason in ("no-unique-def", "no-heap-alloc")

    def test_outcome_records_site_info(self):
        result = slr(PRELUDE + """
        void g(void) { char b[4]; strcpy(b, "x"); }""")
        outcome = result.outcomes[0]
        assert outcome.target == "strcpy"
        assert outcome.function == "g"
        assert outcome.transformed

    def test_declarations_injected(self):
        result = slr(PRELUDE + """
        void g(void) { char b[4]; strcpy(b, "x"); }""")
        assert "g_strlcpy(char *dest" in result.new_text

    def test_heap_buffer_uses_malloc_usable_size(self):
        result = slr(PRELUDE + """
        void g(void) { char *p = malloc(16); strcpy(p, "data"); }""")
        assert "g_strlcpy(p, \"data\", malloc_usable_size(p))" in \
            result.new_text


class TestSprintf:
    def test_size_param_after_destination(self):
        result = slr(PRELUDE + """
        void g(int n) { char b[32]; sprintf(b, "%d", n); }""")
        assert 'g_snprintf(b, sizeof(b), "%d", n)' in result.new_text

    def test_vsprintf(self):
        result = slr(PRELUDE + """
        #include <stdarg.h>
        void logmsg(const char *fmt, ...) {
            char line[128];
            va_list ap;
            va_start(ap, fmt);
            vsprintf(line, fmt, ap);
            va_end(ap);
            puts(line);
        }""")
        assert "g_vsnprintf(line, sizeof(line), fmt, ap)" in result.new_text


class TestGets:
    SRC = PRELUDE + """
    void readit(void) {
        char dest[32];
        gets(dest);
        printf("%s\\n", dest);
    }"""

    def test_fgets_with_stdin(self):
        result = slr(self.SRC)
        assert "fgets(dest, sizeof(dest), stdin)" in result.new_text

    def test_newline_strip_epilogue(self):
        result = slr(self.SRC)
        assert "strchr(dest, '\\n')" in result.new_text
        assert "*check = '\\0';" in result.new_text

    def test_epilogue_placed_after_statement(self):
        result = slr(self.SRC)
        gets_pos = result.new_text.index("fgets(dest")
        strchr_pos = result.new_text.index("strchr(dest")
        printf_pos = result.new_text.index('printf("%s')
        assert gets_pos < strchr_pos < printf_pos

    def test_behavioural_equivalence_without_overflow(self):
        before = run(self.SRC + "\nint main(void){ readit(); return 0; }",
                     stdin=b"hello\n")
        result = slr(self.SRC + "\nint main(void){ readit(); return 0; }")
        after = run(result.new_text, stdin=b"hello\n", preprocess=False)
        assert before.ok and after.ok
        assert before.stdout == after.stdout

    def test_overflow_fixed(self):
        long_line = b"A" * 100 + b"\n"
        before = run(self.SRC + "\nint main(void){ readit(); return 0; }",
                     stdin=long_line)
        assert before.fault == "buffer-overflow"
        result = slr(self.SRC + "\nint main(void){ readit(); return 0; }")
        after = run(result.new_text, stdin=long_line, preprocess=False)
        assert after.ok
        assert after.stdout == b"A" * 31 + b"\n"


class TestMemcpy:
    def test_option2_inline_ternary(self):
        result = slr(PRELUDE + """
        void g(const char *s, unsigned long n) {
            char local[16];
            memcpy(local, s, n);
        }""")
        assert "sizeof(local) > n ? n : sizeof(local)" in result.new_text

    def test_option1_when_length_used_later(self):
        result = slr(PRELUDE + """
        void g(const char *s) {
            unsigned long len = strlen(s);
            char *num = malloc(len + 1);
            memcpy(num, s, len);
            num[len] = '\\0';
            puts(num);
        }""")
        assert "len = malloc_usable_size(num) > len ? len : " \
               "malloc_usable_size(num);" in result.new_text
        # The call itself keeps its original argument.
        assert "memcpy(num, s, len);" in result.new_text

    def test_non_char_destination_skipped(self):
        result = slr(PRELUDE + """
        void g(const int *src) {
            int values[4];
            memcpy(values, src, 8 * sizeof(int));
        }""")
        outcome = result.outcomes[0]
        assert not outcome.transformed
        assert outcome.reason == "non-char-buffer"

    def test_memcpy_overflow_fixed_at_runtime(self):
        src = PRELUDE + """
        int main(void) {
            char small[8];
            char big[64];
            memset(big, 'B', 63);
            big[63] = '\\0';
            memcpy(small, big, 64);
            return 0;
        }"""
        before = run(src)
        assert before.fault == "buffer-overflow"
        result = slr(src)
        after = run(result.new_text, preprocess=False)
        assert after.ok


class TestBracelessContexts:
    """Regressions: line-level insertions (memcpy Option 1 clamp, the
    gets newline-strip epilogue) must not escape a brace-less if/else/
    loop body — that executed the inserted code unconditionally."""

    def test_memcpy_braceless_if_falls_back_to_ternary(self):
        src = PRELUDE + """
        int main(void) {
            char d[8];
            char s[200];
            unsigned long n = 100;
            memset(s, 'A', 199); s[199] = 0;
            if (0) memcpy(d, s, n);
            printf("%lu\\n", n);
            return 0;
        }"""
        result = slr(src)
        assert result.transformed_count == 1
        # Option 2: the clamp stays inside the untaken branch.
        assert "if (0) memcpy(d, s, sizeof(d) > n ? n : sizeof(d));" \
            in result.new_text
        before = run(src)
        after = run(result.new_text, preprocess=False)
        assert before.stdout == after.stdout == b"100\n"

    def test_memcpy_option1_still_used_in_compound_block(self):
        result = slr(PRELUDE + """
        void g(const char *s) {
            unsigned long len = strlen(s);
            char *num = malloc(len + 1);
            memcpy(num, s, len);
            num[len] = '\\0';
        }""")
        assert "len = malloc_usable_size(num) > len ?" in result.new_text

    def test_gets_braceless_if_epilogue_stays_conditional(self):
        src = PRELUDE + """
        int main(void) {
            char buf[16] = "a\\nb";
            if (0) gets(buf);
            printf("[%s]\\n", buf);
            return 0;
        }"""
        result = slr(src)
        before = run(src, stdin=b"hi\n")
        after = run(result.new_text, stdin=b"hi\n", preprocess=False)
        # Pre-fix, the epilogue ran unconditionally and stripped the
        # embedded newline of the untouched buffer.
        assert before.stdout == after.stdout == b"[a\nb]\n"

    def test_gets_braceless_if_with_else_keeps_binding(self):
        src = PRELUDE + """
        int main(void) {
            char buf[16];
            buf[0] = 0;
            if (1)
                gets(buf);
            else
                printf("no\\n");
            printf("[%s]\\n", buf);
            return 0;
        }"""
        result = slr(src)
        parse_translation_unit(result.new_text)    # must not raise
        after = run(result.new_text, stdin=b"hello\n", preprocess=False)
        # Pre-fix, the inserted `if (check)` stole the dangling else.
        assert after.ok
        assert after.stdout == b"[hello]\n"

    def test_gets_braceless_while_body(self):
        src = PRELUDE + """
        int main(void) {
            char buf[32];
            int i = 0;
            while (i++ < 2)
                gets(buf);
            printf("[%s]\\n", buf);
            return 0;
        }"""
        result = slr(src)
        after = run(result.new_text, stdin=b"one\ntwo\n",
                    preprocess=False)
        assert after.ok
        assert after.stdout == b"[two]\n"

    def test_gets_value_consumed_strips_before_use(self):
        # `gets` in a condition: the newline must be gone before the
        # body reads the buffer, and the NULL-on-EOF return value must
        # survive.  A statement-level epilogue after the `if` ran too
        # late (printed the newline) — the call becomes an inline
        # strip-and-yield expression instead.
        src = PRELUDE + """
        int main(void) {
            char line[16];
            if (gets(line))
                printf("read: %s\\n", line);
            else
                printf("eof\\n");
            return 0;
        }"""
        result = slr(src)
        assert result.transformed_count == 1
        assert "strcspn" in result.new_text
        before = run(src, stdin=b"ok\n")
        after = run(result.new_text, stdin=b"ok\n", preprocess=False)
        assert after.ok
        assert before.stdout == after.stdout == b"read: ok\n"
        at_eof = run(result.new_text, stdin=b"", preprocess=False)
        assert at_eof.ok
        assert at_eof.stdout == b"eof\n"

    def test_gets_value_consumed_complex_dest_fails_closed(self):
        result = slr(PRELUDE + """
        void f(void) {
            char line[16];
            char *p;
            p = gets(line + 0) ? line : 0;
            (void)p;
        }""")
        assert result.transformed_count == 0
        assert result.failures_by_reason().get("unsupported-expr") == 1


class TestFreshNames:
    def test_epilogue_temp_avoids_user_variable(self):
        src = PRELUDE + """
        int main(void) {
            char buf[16];
            char *check = buf;
            gets(buf);
            printf("[%s][%c]\\n", buf, *check ? 'x' : 'y');
            return 0;
        }"""
        result = slr(src)
        # The temp must not capture (or redeclare) the user's `check`.
        assert "char *check_2 = strchr(buf, '\\n');" in result.new_text
        after = run(result.new_text, stdin=b"hey\n", preprocess=False)
        assert after.ok
        assert after.stdout == b"[hey][x]\n"

    def test_same_function_sites_get_distinct_temps(self):
        result = slr(PRELUDE + """
        void f(void) {
            char a[8];
            char b[8];
            gets(a);
            gets(b);
        }
        """)
        # Two epilogues in one scope chain must not collide.
        assert "char *check = strchr(b, '\\n');" in result.new_text
        assert "char *check_2 = strchr(a, '\\n');" in result.new_text

    def test_temp_serials_restart_per_function(self):
        result = slr(PRELUDE + """
        void f(void) { char a[8]; gets(a); }
        void g(void) { char b[8]; gets(b); }
        """)
        # Name allocation is scoped to the enclosing function, so each
        # function's bytes are independent of the other's site count —
        # the property incremental per-function re-transformation needs.
        assert "char *check = strchr(a, '\\n');" in result.new_text
        assert "char *check = strchr(b, '\\n');" in result.new_text
        assert "check_2" not in result.new_text


class TestAlreadyDeclared:
    def test_call_site_does_not_count_as_declaration(self):
        body = "void f(void){ char b[8]; fgets(b, 8, stdin); }"
        assert not _already_declared(body, "fgets")

    def test_file_scope_prototype_counts(self):
        text = "char *fgets(char *s, int size, FILE *stream);\n" \
               "void f(void){}"
        assert _already_declared(text, "fgets")

    def test_pointer_return_prototype_counts(self):
        assert _already_declared(
            "extern char *fgets(char *, int, FILE *);", "fgets")

    def test_braces_in_strings_do_not_confuse_depth(self):
        text = ('void f(void){ printf("{"); }\n'
                "char *fgets(char *, int, FILE *);\n")
        assert _already_declared(text, "fgets")

    def test_prototype_injected_despite_existing_call(self):
        # A unit that *calls* strchr (K&R implicit declaration) but never
        # declares it: the gets epilogue needs strchr, and the injected
        # prototype must not be suppressed by the call site.
        text = (
            "typedef struct _FILE FILE;\nextern FILE *stdin;\n"
            "char *gets(char *s);\n"
            "char *fgets(char *s, int size, FILE *stream);\n"
            "void scan(char *s) {\n"
            "    strchr(s, 58);\n"
            "}\n"
            "void legacy(void) {\n"
            "    char buf[16];\n"
            "    gets(buf);\n"
            "}\n")
        result = SafeLibraryReplacement(text, "t.c").run()
        assert result.transformed_count == 1
        assert "char *strchr(const char *s, int c);" in result.new_text
        parse_translation_unit(result.new_text)    # must not raise


class TestBatchBehaviour:
    def test_all_sites_visited(self):
        result = slr(PRELUDE + """
        void a(void){ char b[4]; strcpy(b, "x"); }
        void b_(void){ char b[4]; strcat(b, "y"); }
        void c(void){ char b[4]; sprintf(b, "z"); }
        """)
        assert result.candidates == 3
        assert result.transformed_count == 3

    def test_output_reparses(self):
        result = slr(PRELUDE + """
        void a(void){ char b[4]; strcpy(b, "x"); }
        """)
        parse_translation_unit(result.new_text)    # must not raise

    def test_by_target_stats(self):
        result = slr(PRELUDE + """
        void a(void){ char b[4]; strcpy(b, "x"); strcpy(b, "y"); }
        void c(char *p){ strcpy(p, "z"); }
        """)
        done, total = result.by_target()["strcpy"]
        assert (done, total) == (2, 3)

    def test_failures_by_reason(self):
        result = slr(PRELUDE + """
        void c(char *p, char *q){ strcpy(p, "z"); strcpy(q, "w"); }
        """)
        reasons = result.failures_by_reason()
        assert sum(reasons.values()) == 2

    def test_unchanged_when_no_targets(self):
        result = slr(PRELUDE + "int main(void){ return 0; }")
        assert not result.changed
        assert result.candidates == 0

    def test_percent_transformed(self):
        result = slr(PRELUDE + """
        void a(void){ char b[4]; strcpy(b, "x"); }
        void c(char *p){ strcpy(p, "z"); }
        """)
        assert result.percent_transformed == 50.0
