"""Tests for the SAFE LIBRARY REPLACEMENT transformation."""

from repro.cfront.parser import parse_translation_unit
from repro.core.slr import (
    SAFE_ALTERNATIVES, SafeLibraryReplacement, UNSAFE_FUNCTIONS,
)

from .helpers import pp, run


def slr(src: str):
    return SafeLibraryReplacement(pp(src), "test.c").run()


PRELUDE = ("#include <stdio.h>\n#include <string.h>\n"
           "#include <stdlib.h>\n")


class TestCatalogue:
    def test_six_unsafe_functions(self):
        assert UNSAFE_FUNCTIONS == {"strcpy", "strcat", "sprintf",
                                    "vsprintf", "memcpy", "gets"}

    def test_alternatives_match_table1(self):
        assert SAFE_ALTERNATIVES["strcpy"] == "g_strlcpy"
        assert SAFE_ALTERNATIVES["strcat"] == "g_strlcat"
        assert SAFE_ALTERNATIVES["sprintf"] == "g_snprintf"
        assert SAFE_ALTERNATIVES["vsprintf"] == "g_vsnprintf"
        assert SAFE_ALTERNATIVES["gets"] == "fgets"


class TestStrcpyStrcat:
    def test_paper_example(self):
        result = slr(PRELUDE + """
        int main(void) {
            char buf[10];
            char src[100];
            memset(src, 'c', 50);
            src[50] = '\\0';
            char *dst = buf;
            strcpy(dst, src);
            return 0;
        }""")
        assert "g_strlcpy(dst, src, sizeof(buf))" in result.new_text
        assert "strcpy(dst, src)" not in result.new_text

    def test_strcat_minigzip_example(self):
        result = slr(PRELUDE + """
        void f(char *name) {
            char outfile[64];
            strcpy(outfile, name);
            strcat(outfile, ".gz");
        }""")
        assert 'g_strlcat(outfile, ".gz", sizeof(outfile))' in \
            result.new_text

    def test_precondition_failure_leaves_site_untouched(self):
        result = slr(PRELUDE + """
        void f(char *dst, const char *src) { strcpy(dst, src); }""")
        assert "strcpy(dst, src)" in result.new_text
        outcome = result.outcomes[0]
        assert not outcome.transformed
        assert outcome.reason in ("no-unique-def", "no-heap-alloc")

    def test_outcome_records_site_info(self):
        result = slr(PRELUDE + """
        void g(void) { char b[4]; strcpy(b, "x"); }""")
        outcome = result.outcomes[0]
        assert outcome.target == "strcpy"
        assert outcome.function == "g"
        assert outcome.transformed

    def test_declarations_injected(self):
        result = slr(PRELUDE + """
        void g(void) { char b[4]; strcpy(b, "x"); }""")
        assert "g_strlcpy(char *dest" in result.new_text

    def test_heap_buffer_uses_malloc_usable_size(self):
        result = slr(PRELUDE + """
        void g(void) { char *p = malloc(16); strcpy(p, "data"); }""")
        assert "g_strlcpy(p, \"data\", malloc_usable_size(p))" in \
            result.new_text


class TestSprintf:
    def test_size_param_after_destination(self):
        result = slr(PRELUDE + """
        void g(int n) { char b[32]; sprintf(b, "%d", n); }""")
        assert 'g_snprintf(b, sizeof(b), "%d", n)' in result.new_text

    def test_vsprintf(self):
        result = slr(PRELUDE + """
        #include <stdarg.h>
        void logmsg(const char *fmt, ...) {
            char line[128];
            va_list ap;
            va_start(ap, fmt);
            vsprintf(line, fmt, ap);
            va_end(ap);
            puts(line);
        }""")
        assert "g_vsnprintf(line, sizeof(line), fmt, ap)" in result.new_text


class TestGets:
    SRC = PRELUDE + """
    void readit(void) {
        char dest[32];
        char *result;
        result = gets(dest);
        printf("%s\\n", dest);
    }"""

    def test_fgets_with_stdin(self):
        result = slr(self.SRC)
        assert "fgets(dest, sizeof(dest), stdin)" in result.new_text

    def test_newline_strip_epilogue(self):
        result = slr(self.SRC)
        assert "strchr(dest, '\\n')" in result.new_text
        assert "*check = '\\0';" in result.new_text

    def test_epilogue_placed_after_statement(self):
        result = slr(self.SRC)
        gets_pos = result.new_text.index("fgets(dest")
        strchr_pos = result.new_text.index("strchr(dest")
        printf_pos = result.new_text.index('printf("%s')
        assert gets_pos < strchr_pos < printf_pos

    def test_behavioural_equivalence_without_overflow(self):
        before = run(self.SRC + "\nint main(void){ readit(); return 0; }",
                     stdin=b"hello\n")
        result = slr(self.SRC + "\nint main(void){ readit(); return 0; }")
        after = run(result.new_text, stdin=b"hello\n", preprocess=False)
        assert before.ok and after.ok
        assert before.stdout == after.stdout

    def test_overflow_fixed(self):
        long_line = b"A" * 100 + b"\n"
        before = run(self.SRC + "\nint main(void){ readit(); return 0; }",
                     stdin=long_line)
        assert before.fault == "buffer-overflow"
        result = slr(self.SRC + "\nint main(void){ readit(); return 0; }")
        after = run(result.new_text, stdin=long_line, preprocess=False)
        assert after.ok
        assert after.stdout == b"A" * 31 + b"\n"


class TestMemcpy:
    def test_option2_inline_ternary(self):
        result = slr(PRELUDE + """
        void g(const char *s, unsigned long n) {
            char local[16];
            memcpy(local, s, n);
        }""")
        assert "sizeof(local) > n ? n : sizeof(local)" in result.new_text

    def test_option1_when_length_used_later(self):
        result = slr(PRELUDE + """
        void g(const char *s) {
            unsigned long len = strlen(s);
            char *num = malloc(len + 1);
            memcpy(num, s, len);
            num[len] = '\\0';
            puts(num);
        }""")
        assert "len = malloc_usable_size(num) > len ? len : " \
               "malloc_usable_size(num);" in result.new_text
        # The call itself keeps its original argument.
        assert "memcpy(num, s, len);" in result.new_text

    def test_non_char_destination_skipped(self):
        result = slr(PRELUDE + """
        void g(const int *src) {
            int values[4];
            memcpy(values, src, 8 * sizeof(int));
        }""")
        outcome = result.outcomes[0]
        assert not outcome.transformed
        assert outcome.reason == "non-char-buffer"

    def test_memcpy_overflow_fixed_at_runtime(self):
        src = PRELUDE + """
        int main(void) {
            char small[8];
            char big[64];
            memset(big, 'B', 63);
            big[63] = '\\0';
            memcpy(small, big, 64);
            return 0;
        }"""
        before = run(src)
        assert before.fault == "buffer-overflow"
        result = slr(src)
        after = run(result.new_text, preprocess=False)
        assert after.ok


class TestBatchBehaviour:
    def test_all_sites_visited(self):
        result = slr(PRELUDE + """
        void a(void){ char b[4]; strcpy(b, "x"); }
        void b_(void){ char b[4]; strcat(b, "y"); }
        void c(void){ char b[4]; sprintf(b, "z"); }
        """)
        assert result.candidates == 3
        assert result.transformed_count == 3

    def test_output_reparses(self):
        result = slr(PRELUDE + """
        void a(void){ char b[4]; strcpy(b, "x"); }
        """)
        parse_translation_unit(result.new_text)    # must not raise

    def test_by_target_stats(self):
        result = slr(PRELUDE + """
        void a(void){ char b[4]; strcpy(b, "x"); strcpy(b, "y"); }
        void c(char *p){ strcpy(p, "z"); }
        """)
        done, total = result.by_target()["strcpy"]
        assert (done, total) == (2, 3)

    def test_failures_by_reason(self):
        result = slr(PRELUDE + """
        void c(char *p, char *q){ strcpy(p, "z"); strcpy(q, "w"); }
        """)
        reasons = result.failures_by_reason()
        assert sum(reasons.values()) == 2

    def test_unchanged_when_no_targets(self):
        result = slr(PRELUDE + "int main(void){ return 0; }")
        assert not result.changed
        assert result.candidates == 0

    def test_percent_transformed(self):
        result = slr(PRELUDE + """
        void a(void){ char b[4]; strcpy(b, "x"); }
        void c(char *p){ strcpy(p, "z"); }
        """)
        assert result.percent_transformed == 50.0
