"""Tests for the differential transformation oracle
(:mod:`repro.core.validate`)."""

import pytest

from repro.core.batch import SourceProgram, apply_batch
from repro.core.session import AnalysisSession
from repro.core.slr import SafeLibraryReplacement
from repro.core.validate import (
    VERDICT_BENIGN, VERDICT_CHANGED, VERDICT_IDENTICAL, VERDICT_PREVENTED,
    VERDICTS, classify, default_inputs, file_seed, fuzz_inputs,
    validate_pair, validate_result,
)
from repro.vm.interp import ExecutionResult

from .helpers import pp


def _result(stdout=b"", exit_code=0, fault=None):
    return ExecutionResult(stdout, None if fault else exit_code,
                           fault, fault or "", steps=1)


class TestInputs:
    def test_fuzz_deterministic_for_seed(self):
        a = fuzz_inputs(1234)
        b = fuzz_inputs(1234)
        assert [i.stdin for i in a] == [i.stdin for i in b]
        assert [i.name for i in a] == [i.name for i in b]

    def test_fuzz_varies_with_seed(self):
        a = fuzz_inputs(1)
        b = fuzz_inputs(2)
        assert [i.stdin for i in a] != [i.stdin for i in b]

    def test_file_seed_stable_and_per_file(self):
        assert file_seed("a.c", 7) == file_seed("a.c", 7)
        assert file_seed("a.c", 7) != file_seed("b.c", 7)

    def test_default_inputs_cover_all_kinds(self):
        kinds = {i.kind for i in default_inputs("x.c")}
        assert kinds == {"benign", "overflow", "fuzz"}

    def test_default_inputs_deterministic(self):
        a = default_inputs("x.c", seed=99)
        b = default_inputs("x.c", seed=99)
        assert [(i.name, i.stdin) for i in a] == \
            [(i.name, i.stdin) for i in b]

    def test_env_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE_SEED", "4242")
        assert file_seed("f.c") == file_seed("f.c", 4242)


class TestClassify:
    def test_identical(self):
        verdict, _ = classify(_result(b"out\n"), _result(b"out\n"))
        assert verdict == VERDICT_IDENTICAL

    def test_overflow_prevented(self):
        verdict, detail = classify(
            _result(b"x", fault="buffer-overflow"), _result(b"x\ny\n"))
        assert verdict == VERDICT_PREVENTED
        assert "buffer-overflow" in detail

    def test_introduced_fault_is_semantics_changed(self):
        verdict, _ = classify(_result(b"ok\n"),
                              _result(b"", fault="null-dereference"))
        assert verdict == VERDICT_CHANGED

    def test_exit_code_change_is_semantics_changed(self):
        verdict, _ = classify(_result(b"a\n", exit_code=0),
                              _result(b"a\n", exit_code=3))
        assert verdict == VERDICT_CHANGED

    def test_truncation_is_benign(self):
        verdict, _ = classify(_result(b"helloworld\ntail\n"),
                              _result(b"hello\ntail\n"))
        assert verdict == VERDICT_BENIGN

    def test_new_output_is_semantics_changed(self):
        verdict, _ = classify(_result(b"hello\n"), _result(b"hellp\n"))
        assert verdict == VERDICT_CHANGED

    def test_vanished_step_limit_is_semantics_changed(self):
        verdict, _ = classify(_result(b"", fault="step-limit"),
                              _result(b"done\n"))
        assert verdict == VERDICT_CHANGED

    def test_same_residual_fault_is_identical(self):
        verdict, _ = classify(
            _result(b"p\n", fault="buffer-overflow"),
            _result(b"p\n", fault="buffer-overflow"))
        assert verdict == VERDICT_IDENTICAL


OVERFLOWING = pp(
    "#include <stdio.h>\n#include <string.h>\n"
    "int main(void) {\n"
    "    char buf[8];\n"
    '    strcpy(buf, "far far too long for this buffer");\n'
    '    printf("%s\\n", buf);\n'
    "    return 0;\n}\n", "overflow.c")

SAFE = pp(
    "#include <stdio.h>\n"
    'int main(void) { printf("fine\\n"); return 0; }\n', "safe.c")


class TestOracle:
    def test_unchanged_text_short_circuits(self):
        report = validate_pair(SAFE, SAFE, filename="safe.c")
        assert report.unchanged
        assert report.verdicts == []
        assert report.ok
        assert report.summary() == "unchanged"

    def test_slr_fix_is_overflow_prevented(self):
        result = SafeLibraryReplacement(OVERFLOWING, "overflow.c").run()
        report = validate_result(result, filename="overflow.c")
        assert not report.unchanged
        assert report.overflows_prevented == len(report.verdicts)
        assert report.ok

    def test_broken_rewrite_is_semantics_changed(self):
        # Simulate a transformation bug: the "fix" also changes what the
        # program prints on every input.
        broken = SAFE.replace('"fine\\n"', '"evil\\n"')
        assert broken != SAFE
        report = validate_pair(SAFE, broken, filename="safe.c")
        assert report.semantics_changed == len(report.verdicts)
        assert not report.ok

    def test_truncating_rewrite_is_benign(self):
        original = pp(
            "#include <stdio.h>\n"
            'int main(void) { printf("helloworld\\n"); return 0; }\n')
        truncated = original.replace('"helloworld\\n"', '"hello\\n"')
        report = validate_pair(original, truncated)
        counts = report.counts()
        assert counts[VERDICT_BENIGN] == len(report.verdicts)

    def test_counts_cover_taxonomy(self):
        report = validate_pair(SAFE, SAFE)
        assert set(report.counts()) == set(VERDICTS)

    def test_as_dict_round_trip(self):
        result = SafeLibraryReplacement(OVERFLOWING, "overflow.c").run()
        report = validate_result(result, filename="overflow.c")
        data = report.as_dict()
        assert data["filename"] == "overflow.c"
        assert data["counts"][VERDICT_PREVENTED] == \
            report.overflows_prevented
        assert len(data["verdicts"]) == len(report.verdicts)


BATCH_FILES = {
    "broken.c": (
        "#include <stdio.h>\n#include <string.h>\n"
        "int main(void) {\n"
        "    char buf[8];\n"
        '    strcpy(buf, "far far too long for this buffer");\n'
        '    printf("%s\\n", buf);\n'
        "    return 0;\n}\n"),
    "clean.c": (
        "#include <stdio.h>\n"
        'int main(void) { printf("ok\\n"); return 0; }\n'),
}


class TestBatchValidation:
    def test_validate_off_by_default(self):
        batch = apply_batch(SourceProgram("p", dict(BATCH_FILES)))
        assert batch.validations() == []
        assert batch.semantics_preserved  # vacuously

    def test_validate_mode_attaches_reports(self):
        batch = apply_batch(SourceProgram("p", dict(BATCH_FILES)),
                            validate=True)
        validations = batch.validations()
        assert len(validations) == len(BATCH_FILES)
        assert batch.semantics_preserved
        counts = batch.validation_counts()
        assert counts["overflow-prevented"] > 0
        assert counts["semantics-changed"] == 0

    def test_untransformed_file_reports_unchanged(self):
        batch = apply_batch(SourceProgram("p", dict(BATCH_FILES)),
                            validate=True)
        by_name = {v.filename: v for v in batch.validations()}
        assert by_name["clean.c"].unchanged
        assert not by_name["broken.c"].unchanged

    def test_session_validate_flag_is_the_default(self):
        session = AnalysisSession(validate=True)
        batch = apply_batch(SourceProgram("p", dict(BATCH_FILES)),
                            session=session)
        assert len(batch.validations()) == len(BATCH_FILES)
        batch = apply_batch(SourceProgram("p", dict(BATCH_FILES)),
                            session=session, validate=False)
        assert batch.validations() == []


class TestValidateCli:
    @pytest.fixture
    def run_cli(self):
        import io
        import sys

        from repro.cli import main

        def invoke(argv):
            out, err = io.StringIO(), io.StringIO()
            old = sys.stdout, sys.stderr
            sys.stdout, sys.stderr = out, err
            try:
                code = main([str(a) for a in argv])
            finally:
                sys.stdout, sys.stderr = old
            return code, out.getvalue(), err.getvalue()

        return invoke

    def test_validate_single_file(self, run_cli, tmp_path):
        path = tmp_path / "broken.c"
        path.write_text(BATCH_FILES["broken.c"])
        code, out, err = run_cli(["validate", path])
        assert code == 0
        assert "semantics preserved: yes" in out
        assert "overflow-prevented" in err

    def test_validate_directory(self, run_cli, tmp_path):
        for name, text in BATCH_FILES.items():
            (tmp_path / name).write_text(text)
        code, out, _ = run_cli(["validate", tmp_path, "--jobs", "2"])
        assert code == 0
        assert "semantics preserved: yes" in out

    def test_batch_validate_flag(self, run_cli, tmp_path):
        for name, text in BATCH_FILES.items():
            (tmp_path / name).write_text(text)
        code, out, _ = run_cli(["batch", tmp_path, "--validate"])
        assert code == 0
        assert "oracle" in out
        assert "semantics preserved: yes" in out

    def test_missing_path(self, run_cli, tmp_path):
        code, _, err = run_cli(["validate", tmp_path / "nope"])
        assert code == 2


class TestValidationEval:
    def test_samate_slice_is_clean(self):
        from repro.eval.validate import compute_validation
        result = compute_validation(scale=0.002, limit=2, corpus=False)
        assert result.ok
        assert result.samate_rows
        prevented = sum(r.counts.get("overflow-prevented", 0)
                        for r in result.samate_rows)
        assert prevented > 0
