"""Every shipped example must run clean and demonstrate its claim."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3       # deliverable: at least three examples


def test_quickstart():
    out = run_example("quickstart.py")
    assert "buffer-overflow" in out
    assert "g_strlcpy(dst, src, sizeof(buf))" in out
    assert "The overflow is gone" in out


def test_fix_legacy_codebase():
    out = run_example("fix_legacy_codebase.py")
    assert "26/36 unsafe calls replaced" in out
    assert "behaviour-preserving" in out


def test_cve_libtiff():
    out = run_example("cve_libtiff.py")
    assert "FAULT buffer-overflow" in out
    assert "g_snprintf" in out
    assert "denial-of-service is gone" in out


def test_pointer_analysis_demo():
    out = run_example("pointer_analysis_demo.py")
    assert "ISALIASED(p) = True" in out
    assert "ISALIASED(heap) = False" in out
    assert "malloc_usable_size(heap)" in out
    assert "scrub(buf) may write through its parameter: True" in out


def test_replacement_profiles():
    out = run_example("replacement_profiles.py")
    assert "g_strlcpy(username" in out
    assert "strcpy_s(username, sizeof(username)" in out
    assert "[averyverylo]" in out       # glib truncates
    assert "[]" in out                  # c11 rejects
