"""Shared helpers for the test suite."""

from __future__ import annotations

from repro.analysis import ProgramAnalysis, analyze, bind, typecheck
from repro.cfront import astnodes as ast
from repro.cfront.parser import parse_translation_unit
from repro.cfront.preprocessor import Preprocessor
from repro.vm import run_source


def pp(source: str, filename: str = "test.c") -> str:
    """Preprocess C source with the builtin headers."""
    return Preprocessor().preprocess(source, filename).text


def parse(source: str, *, preprocess: bool = True) -> ast.TranslationUnit:
    text = pp(source) if preprocess else source
    return parse_translation_unit(text, "test.c")


def parse_and_analyze(source: str) -> tuple[ast.TranslationUnit, str,
                                            ProgramAnalysis]:
    text = pp(source)
    unit = parse_translation_unit(text, "test.c")
    return unit, text, analyze(unit)


def run(source: str, *, stdin: bytes = b"", preprocess: bool = True,
        step_limit: int = 5_000_000):
    """Preprocess (optionally) and execute C source in the VM."""
    text = pp(source) if preprocess else source
    return run_source(text, stdin=stdin, step_limit=step_limit)


def find_calls(unit: ast.TranslationUnit, name: str) -> list[ast.Call]:
    return [node for node in unit.walk()
            if isinstance(node, ast.Call) and node.callee_name == name]


def local_symbols(analysis: ProgramAnalysis, function: str) -> dict:
    return {s.name: s for s in analysis.symbols.locals_of.get(function, [])}
