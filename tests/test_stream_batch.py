"""Tests for the streaming work-queue scheduler (PR 9).

The streaming batch must be byte-identical to the collecting batch at
any worker count, emit in filename order, and keep the parent's working
set bounded by the stream/dedup windows instead of the batch size.
"""

import gc
import weakref

import pytest

from repro.core.batch import (
    BatchStream, ProcessPoolExecutor, SerialExecutor, SourceProgram,
    apply_batch, dedup_window, stream_batch, stream_window,
)

BROKEN_TMPL = """\
#include <stdio.h>
#include <string.h>
int main(void) {{
    char buf[8];
    char line[64];
    if (fgets(line, 64, stdin)) {{
        strcpy(buf, line);
        printf("{tag}:%s", buf);
    }}
    return 0;
}}
"""


def distinct_program(count, name="stream"):
    return SourceProgram(name, {
        f"f{i:04d}.c": BROKEN_TMPL.format(tag=f"{name}-{i}")
        for i in range(count)})


def report_shape(report):
    """Everything observable about a report except wall-clock noise."""
    return (report.filename, report.final_text, report.parses,
            report.status,
            tuple(sorted((d.stage, d.kind, d.message)
                         for d in report.diagnostics)),
            None if report.validation is None
            else tuple(sorted(report.validation.counts().items())))


class TestStreamEquivalence:
    def test_stream_matches_apply_batch(self, fresh_store):
        program = distinct_program(6)
        collected = apply_batch(distinct_program(6), jobs=1,
                                validate=False)
        streamed = list(stream_batch(program, jobs=1, validate=False))
        assert [report_shape(r) for r in streamed] \
            == [report_shape(r) for r in collected.reports]

    def test_jobs_1_vs_4_byte_identical(self, fresh_store):
        serial = [report_shape(r) for r in
                  stream_batch(distinct_program(8), jobs=1,
                               validate=True)]
        pooled = [report_shape(r) for r in
                  stream_batch(distinct_program(8), jobs=4,
                               validate=True)]
        assert serial == pooled

    def test_emission_is_filename_ordered(self, fresh_store):
        names = [r.filename for r in
                 stream_batch(distinct_program(9), jobs=4,
                              validate=False)]
        assert names == sorted(names)

    def test_apply_batch_unchanged_with_duplicates(self, fresh_store):
        src = BROKEN_TMPL.format(tag="dup")
        program = SourceProgram("dup", {"a.c": src, "b.c": src})
        result = apply_batch(program, jobs=1, validate=False)
        assert result.stats.deduplicated == 1
        assert result.reports[0].final_text \
            == result.reports[1].final_text
        assert [r.filename for r in result.reports] == ["a.c", "b.c"]


class TestStreamLaziness:
    def test_first_report_before_batch_is_preprocessed(self,
                                                       fresh_store):
        """Pulling one report must not force the whole batch through
        preprocessing — the incremental pre-warm only runs as far as
        the dispatch window."""
        stream = stream_batch(distinct_program(40), jobs=1,
                              validate=False, window=2)
        first = next(iter(stream))
        assert first.filename == "f0000.c"
        assert len(stream.info.pp_timings) < 40

    def test_memory_bounded_thousand_file_batch(self, fresh_store):
        """A 1k-file batch must not retain all reports in the parent:
        emitted reports the consumer drops become garbage, and the
        buffered backlog stays within the window bounds."""
        unique = 8
        program = SourceProgram("big", {
            f"f{i:04d}.c": BROKEN_TMPL.format(tag=f"u{i % unique}")
            for i in range(1000)})
        stream = stream_batch(program, jobs=1, validate=False,
                              window=16, dedup_cap=32)
        alive = []
        peak_alive = 0
        count = 0
        for report in stream:
            alive.append(weakref.ref(report))
            count += 1
            del report
            if count % 100 == 0:
                gc.collect()
                live = sum(1 for ref in alive if ref() is not None)
                peak_alive = max(peak_alive, live)
        assert count == 1000
        gc.collect()
        assert peak_alive < 300          # never anywhere near O(batch)
        assert stream.info.deduplicated == 1000 - unique
        assert stream.info.max_buffered <= 16   # bounded by the window

    def test_dedup_cap_trims_but_stays_correct(self, fresh_store):
        """With a tiny dedup window, later duplicates recompute instead
        of cloning — outputs identical, only the dedup count drops."""
        src_a = BROKEN_TMPL.format(tag="cap-a")
        src_b = BROKEN_TMPL.format(tag="cap-b")
        files = {}
        for i in range(6):
            files[f"f{i:02d}.c"] = src_a if i % 2 == 0 else src_b
        capped = list(stream_batch(SourceProgram("cap", dict(files)),
                                   jobs=1, validate=False, dedup_cap=1))
        uncapped = list(stream_batch(SourceProgram("cap", dict(files)),
                                     jobs=1, validate=False,
                                     dedup_cap=0))
        assert [report_shape(r) for r in capped] \
            == [report_shape(r) for r in uncapped]


class TestStreamSupervisionAndKnobs:
    def test_stream_window_knob(self, monkeypatch):
        assert stream_window(4) == 16
        assert stream_window(8) == 32
        monkeypatch.setenv("REPRO_STREAM_WINDOW", "7")
        assert stream_window(4) == 7
        monkeypatch.setenv("REPRO_STREAM_WINDOW", "bogus")
        with pytest.warns(RuntimeWarning):
            assert stream_window(4) == 16

    def test_dedup_window_knob(self, monkeypatch):
        assert dedup_window() == 4096
        monkeypatch.setenv("REPRO_DEDUP_WINDOW", "12")
        assert dedup_window() == 12

    def test_executor_imap_streams_in_order(self, fresh_store):
        from repro.core.batch import FileTask
        tasks = [FileTask(f"t{i}.c",
                          BROKEN_TMPL.format(tag=f"imap-{i}"),
                          validate=False)
                 for i in range(6)]
        pool = ProcessPoolExecutor(3)
        indexed = list(pool.imap(iter(tasks), window=4))
        assert [i for i, _ in indexed] == list(range(6))
        assert [r.filename for _, r in indexed] \
            == [t.filename for t in tasks]
        assert pool.max_inflight <= 4

    def test_serial_imap_matches_map(self, fresh_store):
        from repro.core.batch import FileTask
        tasks = [FileTask(f"t{i}.c",
                          BROKEN_TMPL.format(tag=f"ser-{i}"),
                          validate=False)
                 for i in range(3)]
        serial = SerialExecutor()
        via_map = serial.map(tasks)
        via_imap = [r for _, r in SerialExecutor().imap(iter(tasks))]
        assert [report_shape(r) for r in via_map] \
            == [report_shape(r) for r in via_imap]

    def test_stream_survives_worker_death(self, fresh_store,
                                          monkeypatch):
        """The streaming path inherits the supervised pool: an injected
        worker kill still yields a failed report in order."""
        monkeypatch.setenv("REPRO_FAULTS", "str:kill:0.5")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "0")
        from repro.core import faults
        program = distinct_program(6, name="chaos")
        names = sorted(program.files)
        pp = {name: text for name, text in
              program.preprocess().files.items()}
        killed = set(faults.faulted_subjects("str", "kill", names))
        assert killed
        reports = list(stream_batch(distinct_program(6, name="chaos"),
                                    jobs=3, validate=False))
        assert [r.filename for r in reports] == names
        for report in reports:
            if report.filename in killed:
                assert report.status == "failed"
                assert report.final_text == pp[report.filename]
            else:
                assert report.status == "ok"

    def test_site_arbitration_requires_backends_eagerly(self):
        with pytest.raises(ValueError, match="site arbitration"):
            BatchStream(distinct_program(2), arbitration="site")
