"""Deeper VM semantics: aggregates, function pointers, scoping, and the
corner cases legacy C leans on."""

from .helpers import run

P = "#include <stdio.h>\n#include <string.h>\n#include <stdlib.h>\n"


def out(src: str, **kwargs) -> str:
    result = run(P + src, **kwargs)
    assert result.ok, f"unexpected fault: {result.fault_detail}"
    return result.stdout_text


class TestAggregates:
    def test_nested_structs(self):
        assert out("""
        struct inner { int v; };
        struct outer { struct inner first; struct inner second; };
        int main(void){
            struct outer o;
            o.first.v = 10;
            o.second.v = 32;
            printf("%d\\n", o.first.v + o.second.v);
            return 0; }""") == "42\n"

    def test_array_of_structs(self):
        assert out("""
        struct point { int x; int y; };
        int main(void){
            struct point pts[3];
            int i;
            for (i = 0; i < 3; i++) { pts[i].x = i; pts[i].y = i * i; }
            printf("%d %d\\n", pts[2].x, pts[2].y);
            return 0; }""") == "2 4\n"

    def test_struct_with_embedded_array(self):
        assert out("""
        struct record { char name[8]; int id; };
        int main(void){
            struct record r;
            strcpy(r.name, "bob");
            r.id = 7;
            printf("%s=%d\\n", r.name, r.id);
            return 0; }""") == "bob=7\n"

    def test_struct_embedded_array_overflow_detected(self):
        result = run(P + """
        struct record { char name[4]; int id; };
        int main(void){
            struct record r;
            r.id = 99;
            strcpy(r.name, "overlong");
            return 0; }""")
        # Writing past name[] inside the struct tramples id — but our
        # byte-accurate model allows in-struct overflow like real C;
        # the write stays inside the struct block here.
        assert result.ok or result.fault == "buffer-overflow"

    def test_pointer_to_struct_member(self):
        assert out("""
        struct holder { int value; };
        int main(void){
            struct holder h;
            int *p = &h.value;
            *p = 55;
            printf("%d\\n", h.value);
            return 0; }""") == "55\n"

    def test_linked_list(self):
        assert out("""
        struct node { int v; struct node *next; };
        int main(void){
            struct node *head = 0;
            int i;
            for (i = 0; i < 5; i++) {
                struct node *fresh = malloc(sizeof(struct node));
                fresh->v = i;
                fresh->next = head;
                head = fresh;
            }
            int total = 0;
            while (head != 0) {
                total += head->v;
                head = head->next;
            }
            printf("%d\\n", total);
            return 0; }""") == "10\n"

    def test_struct_passed_by_value(self):
        assert out("""
        struct pair { int a; int b; };
        int sum(struct pair p) { p.a = 99; return p.a + p.b; }
        int main(void){
            struct pair v;
            v.a = 1;
            v.b = 2;
            int s = sum(v);
            printf("%d %d\\n", s, v.a);
            return 0; }""") == "101 1\n"

    def test_struct_returned_by_value(self):
        assert out("""
        struct pair { int a; int b; };
        struct pair make(int x) {
            struct pair p;
            p.a = x;
            p.b = x * 2;
            return p;
        }
        int main(void){
            struct pair v = make(21);
            printf("%d\\n", v.a + v.b);
            return 0; }""") == "63\n"


class TestFunctionPointers:
    def test_table_dispatch(self):
        assert out("""
        int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        int main(void){
            int (*ops[2])(int, int);
            ops[0] = add;
            ops[1] = mul;
            printf("%d %d\\n", ops[0](3, 4), ops[1](3, 4));
            return 0; }""") == "7 12\n"

    def test_callback_argument(self):
        assert out("""
        int twice(int x) { return 2 * x; }
        int apply(int (*fn)(int), int v) { return fn(v); }
        int main(void){
            printf("%d\\n", apply(twice, 21));
            return 0; }""") == "42\n"

    def test_function_pointer_in_struct(self):
        assert out("""
        struct vtable { int (*op)(int); };
        int neg(int x) { return -x; }
        int main(void){
            struct vtable v;
            v.op = neg;
            printf("%d\\n", v.op(5));
            return 0; }""") == "-5\n"

    def test_address_of_function(self):
        assert out("""
        int one(void) { return 1; }
        int main(void){
            int (*fp)(void) = &one;
            printf("%d\\n", fp());
            return 0; }""") == "1\n"


class TestScoping:
    def test_block_shadowing(self):
        assert out("""
        int main(void){
            int x = 1;
            { int x = 2; printf("%d", x); }
            printf("%d\\n", x);
            return 0; }""") == "21\n"

    def test_loop_variable_scoping(self):
        assert out("""
        int main(void){
            int total = 0;
            for (int i = 0; i < 2; i++) {
                for (int i = 0; i < 3; i++) total++;
            }
            printf("%d\\n", total);
            return 0; }""") == "6\n"

    def test_global_shadowed_by_local(self):
        assert out("""
        int v = 100;
        int main(void){
            int v = 5;
            printf("%d\\n", v);
            return 0; }""") == "5\n"


class TestCornerCases:
    def test_comma_in_for(self):
        assert out("""
        int main(void){
            int i, j;
            for (i = 0, j = 10; i < j; i++, j--) { }
            printf("%d %d\\n", i, j);
            return 0; }""") == "5 5\n"

    def test_negative_modulo(self):
        assert out("""
        int main(void){
            printf("%d %d\\n", -10 % 3, 10 % -3);
            return 0; }""") == "-1 1\n"

    def test_chars_are_small_ints(self):
        assert out("""
        int main(void){
            char c = 'A';
            int promoted = c + 1;
            printf("%d %c\\n", promoted, promoted);
            return 0; }""") == "66 B\n"

    def test_index_commutativity(self):
        assert out("""
        int main(void){
            char buf[4] = "abc";
            printf("%c%c\\n", buf[1], 1[buf]);
            return 0; }""") == "bb\n"

    def test_void_cast_discards(self):
        assert out("""
        int main(void){
            (void)printf("side");
            printf("\\n");
            return 0; }""") == "side\n"

    def test_string_literal_is_shared(self):
        assert out("""
        int main(void){
            const char *a = "shared";
            const char *b = "shared";
            printf("%d\\n", a == b);
            return 0; }""") == "1\n"

    def test_sizeof_struct_with_padding(self):
        assert out("""
        struct padded { char c; long l; };
        int main(void){
            printf("%lu\\n", sizeof(struct padded));
            return 0; }""") == "16\n"

    def test_ternary_lvalue_free_semantics(self):
        assert out("""
        int main(void){
            int a = 3, b = 4;
            int larger = a > b ? a : b;
            printf("%d\\n", larger);
            return 0; }""") == "4\n"

    def test_deep_recursion_within_budget(self):
        assert out("""
        int depth(int n) { return n == 0 ? 0 : 1 + depth(n - 1); }
        int main(void){
            printf("%d\\n", depth(200));
            return 0; }""") == "200\n"

    def test_do_while_with_continue(self):
        assert out("""
        int main(void){
            int i = 0, hits = 0;
            do {
                i++;
                if (i % 2) continue;
                hits++;
            } while (i < 6);
            printf("%d\\n", hits);
            return 0; }""") == "3\n"

    def test_switch_inside_loop(self):
        assert out("""
        int main(void){
            int total = 0;
            for (int i = 0; i < 5; i++) {
                switch (i % 2) {
                    case 0: total += 10; break;
                    case 1: total += 1; break;
                }
            }
            printf("%d\\n", total);
            return 0; }""") == "32\n"

    def test_goto_out_of_nested_loop(self):
        assert out("""
        int main(void){
            int i, j, found = -1;
            for (i = 0; i < 4; i++) {
                for (j = 0; j < 4; j++) {
                    if (i * j == 6) goto done;
                }
            }
            done:
            printf("%d %d\\n", i, j);
            return 0; }""") == "2 3\n"

    def test_unsigned_comparison_semantics(self):
        assert out("""
        int main(void){
            unsigned int big = 0;
            big = big - 1;
            printf("%d\\n", big > 1000u);
            return 0; }""") == "1\n"

    def test_null_function_pointer_call_is_error(self):
        result = run(P + """
        int main(void){
            int (*fp)(void) = 0;
            return fp();
        }""")
        assert result.fault is not None


class TestVarargsAdvanced:
    def test_va_copy(self):
        assert out("""
        #include <stdarg.h>
        int sum_twice(int n, ...) {
            va_list ap, aq;
            int total = 0;
            int i;
            va_start(ap, n);
            va_copy(aq, ap);
            for (i = 0; i < n; i++) total += va_arg(ap, int);
            for (i = 0; i < n; i++) total += va_arg(aq, int);
            va_end(ap);
            va_end(aq);
            return total;
        }
        int main(void){
            printf("%d\\n", sum_twice(2, 10, 11));
            return 0; }""") == "42\n"

    def test_varargs_forwarding_to_vsprintf(self):
        assert out("""
        #include <stdarg.h>
        void logfmt(char *out, const char *fmt, ...) {
            va_list ap;
            va_start(ap, fmt);
            vsprintf(out, fmt, ap);
            va_end(ap);
        }
        int main(void){
            char line[64];
            logfmt(line, "%s=%d", "answer", 42);
            printf("%s\\n", line);
            return 0; }""") == "answer=42\n"

    def test_mixed_type_va_args(self):
        assert out("""
        #include <stdarg.h>
        void show(const char *fmt, ...) {
            va_list ap;
            va_start(ap, fmt);
            int i = va_arg(ap, int);
            char *s = va_arg(ap, char *);
            long l = va_arg(ap, long);
            va_end(ap);
            printf("%d %s %ld\\n", i, s, l);
        }
        int main(void){
            show("", 7, "mid", 99L);
            return 0; }""") == "7 mid 99\n"
