"""Hash-seed determinism of the analysis outputs.

Points-to targets, alias sets, and reaching definitions must render
identically whatever ``PYTHONHASHSEED`` the interpreter started with —
a raw ``set`` leaking into any user-visible ordering shows up here as a
run-to-run diff.  Each case runs the same probe in fresh interpreters
under different seeds (for both the fast path and the legacy reference
solvers) and compares stdout byte for byte.
"""

import os
import subprocess
import sys

import pytest

_PROBE = r"""
import sys
from repro.analysis import bind
from repro.analysis.alias import AliasAnalysis
from repro.analysis.cfg import build_all_cfgs
from repro.analysis.pointsto import PointsToAnalysis
from repro.analysis.reaching import ReachingDefinitions
from repro.cfront.parser import parse_translation_unit
from repro.eval.analysis_bench import pointer_stress_source

src = pointer_stress_source(n_objects=10, n_pointers=20, cycle_every=7)
unit = parse_translation_unit(src, "probe.c")
table = bind(unit)
pointsto = PointsToAnalysis(unit, table)
for symbol in pointsto.pointer_symbols():
    targets = [node.index for node in pointsto.points_to(symbol)]
    print("pts", symbol.name, targets)
aliases = AliasAnalysis(pointsto, table)
for group in aliases.alias_sets():
    print("alias", [s.name for s in group])
for name, cfg in sorted(build_all_cfgs(unit).items()):
    reaching = ReachingDefinitions(cfg)
    for node in cfg.nodes:
        print("in", name, node.nid,
              [d.index for d in reaching.reaching_in(node)])
"""


def _run_probe(seed: str, fast: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in (env.get("PYTHONPATH"),) if p] + [_src_dir()])
    env["REPRO_ANALYSIS_FAST"] = fast
    proc = subprocess.run([sys.executable, "-c", _PROBE],
                          capture_output=True, text=True, env=env,
                          timeout=120)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def _src_dir() -> str:
    import repro
    return os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))


@pytest.mark.parametrize("fast", ["1", "0"])
def test_analysis_output_is_hashseed_invariant(fast):
    baseline = _run_probe("0", fast)
    assert "pts" in baseline and "alias" in baseline
    for seed in ("1", "4242"):
        assert _run_probe(seed, fast) == baseline, \
            f"seed {seed} changed analysis output (fast={fast})"


def test_fast_and_legacy_render_identically():
    # The two solver families must not just agree on sets but on the
    # rendered ordering, so differential comparisons can diff text.
    assert _run_probe("0", "1") == _run_probe("0", "0")
