"""Tests for the command-line interfaces."""

import io
import sys

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def broken_c(tmp_path):
    path = tmp_path / "broken.c"
    path.write_text(
        "#include <stdio.h>\n#include <string.h>\n"
        "int main(void) {\n"
        "    char buf[8];\n"
        '    strcpy(buf, "far far too long for this buffer");\n'
        '    printf("%s\\n", buf);\n'
        "    return 0;\n}\n")
    return path


def run_cli(argv, stdin_text=""):
    out, err = io.StringIO(), io.StringIO()
    old_out, old_err = sys.stdout, sys.stderr
    sys.stdout, sys.stderr = out, err
    try:
        code = main([str(a) for a in argv])
    finally:
        sys.stdout, sys.stderr = old_out, old_err
    return code, out.getvalue(), err.getvalue()


class TestRunCommand:
    def test_faulting_program(self, broken_c):
        code, out, err = run_cli(["run", broken_c])
        assert code == 1
        assert "FAULT: buffer-overflow" in err

    def test_clean_program(self, tmp_path):
        path = tmp_path / "ok.c"
        path.write_text('#include <stdio.h>\n'
                        'int main(void){ printf("fine\\n"); return 7; }\n')
        code, out, err = run_cli(["run", path])
        assert code == 7
        assert out == "fine\n"

    def test_stdin_option(self, tmp_path):
        path = tmp_path / "echo.c"
        path.write_text(
            "#include <stdio.h>\nint main(void){ char b[32]; "
            "fgets(b, 32, stdin); "
            'printf("<%s>", b); return 0; }\n')
        code, out, _ = run_cli(["run", path, "--stdin", "hello\n"])
        assert out == "<hello\n>"


class TestFixCommand:
    def test_fix_to_stdout(self, broken_c):
        code, out, err = run_cli(["fix", broken_c])
        assert code == 0
        assert "g_strlcpy(buf" in out
        assert "[FIXED] SLR" in err

    def test_fix_to_file_then_run(self, broken_c, tmp_path):
        fixed = tmp_path / "fixed.c"
        code, _, err = run_cli(["fix", broken_c, "-o", fixed])
        assert code == 0
        assert fixed.exists()
        code, out, err = run_cli(["run", fixed])
        assert code == 0
        assert out == "far far\n"       # truncated to 7 chars + NUL

    def test_fix_c11_profile(self, broken_c):
        code, out, _ = run_cli(["fix", broken_c, "--profile", "c11",
                                "--no-str"])
        assert code == 0
        assert "strcpy_s(buf, sizeof(buf)," in out

    def test_no_slr_no_str_flags(self, broken_c):
        code, out, err = run_cli(["fix", broken_c, "--no-slr"])
        assert code == 0
        assert "g_strlcpy" not in out
        assert "SLR" not in err or "[FIXED] SLR" not in err


class TestAnalyzeCommand:
    def test_analyze_output(self, broken_c):
        code, out, _ = run_cli(["analyze", broken_c])
        assert code == 0
        assert "== unsafe call sites ==" in out
        assert "strcpy(buf, ...): size = sizeof(buf)" in out

    def test_analyze_reports_unsizable(self, tmp_path):
        path = tmp_path / "param.c"
        path.write_text("#include <string.h>\n"
                        "void f(char *d){ strcpy(d, \"x\"); }\n")
        code, out, _ = run_cli(["analyze", path])
        assert code == 0
        assert "UNSIZABLE" in out


class TestParser:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fix", "x.c", "--profile", "win"])


@pytest.fixture
def batch_dir(tmp_path, broken_c):
    """A directory with one transformable .c file for batch commands."""
    target = tmp_path / "prog"
    target.mkdir()
    (target / "broken.c").write_text(broken_c.read_text())
    return target


class TestCacheCommand:
    def test_stats_on_empty_store(self, fresh_store):
        code, out, _ = run_cli(["cache", "stats"])
        assert code == 0
        assert "(store is empty)" in out
        assert "schema v" in out

    def test_stats_after_batch_reports_families(self, fresh_store,
                                                batch_dir):
        assert run_cli(["batch", batch_dir])[0] == 0
        code, out, _ = run_cli(["cache", "stats"])
        assert code == 0
        assert "preprocess" in out and "slr" in out
        assert "(total)" in out
        assert "misses=" in out             # live counters rendered

    def test_clear_empties_store(self, fresh_store, batch_dir):
        run_cli(["batch", batch_dir])
        code, out, _ = run_cli(["cache", "clear"])
        assert code == 0 and "cleared" in out
        assert fresh_store.usage() == {}

    def test_gc_runs_clean(self, fresh_store, batch_dir):
        run_cli(["batch", batch_dir])
        code, out, _ = run_cli(["cache", "gc"])
        assert code == 0
        assert "removed 0 file(s)" in out
        code, out, _ = run_cli(["cache", "gc", "--max-age-days", "0"])
        assert code == 0
        assert "removed 0 file(s)" not in out

    def test_no_disk_cache_flag(self, fresh_store, batch_dir,
                                monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "1")
        from repro.cfront.cache import clear_all_caches
        clear_all_caches()
        code, _, _ = run_cli(["batch", batch_dir, "--no-disk-cache"])
        assert code == 0
        assert fresh_store.usage() == {}


class TestBatchProfileFlag:
    def test_profile_renders_stage_table(self, fresh_store, batch_dir):
        code, out, _ = run_cli(["batch", batch_dir, "--profile"])
        assert code == 0
        assert "mean ms/file" in out
        assert "slr" in out and "verify" in out

    def test_no_profile_no_stage_table(self, fresh_store, batch_dir,
                                       monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        code, out, _ = run_cli(["batch", batch_dir])
        assert code == 0
        assert "mean ms/file" not in out

    def test_repro_profile_env(self, fresh_store, batch_dir,
                               monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        code, out, _ = run_cli(["batch", batch_dir])
        assert code == 0
        assert "mean ms/file" in out


class TestEvalCli:
    def test_eval_help(self):
        from repro.eval.__main__ import main as eval_main
        old_argv = sys.argv
        sys.argv = ["repro.eval", "--help"]
        out = io.StringIO()
        old_out = sys.stdout
        sys.stdout = out
        try:
            assert eval_main() == 0
        finally:
            sys.stdout = old_out
            sys.argv = old_argv
        assert "table3" in out.getvalue()

    def test_eval_unknown(self):
        from repro.eval.__main__ import main as eval_main
        old_argv = sys.argv
        sys.argv = ["repro.eval", "nonsense"]
        try:
            assert eval_main() == 2
        finally:
            sys.argv = old_argv
