"""Unit tests for the C parser."""

import pytest

from repro.cfront import astnodes as ast
from repro.cfront.ctypes_model import (
    ArrayType, FunctionType, IntType, PointerType, StructType,
)
from repro.cfront.parser import parse_translation_unit
from repro.cfront.source import ParseError

from .helpers import parse


def first_decl(src: str) -> ast.Declarator:
    unit = parse_translation_unit(src)
    for item in unit.items:
        if isinstance(item, ast.Declaration) and item.declarators:
            return item.declarators[0]
    raise AssertionError("no declaration found")


def main_body(src: str) -> list[ast.Node]:
    unit = parse(src)
    return unit.function("main").body.items


class TestDeclarations:
    def test_simple_int(self):
        decl = first_decl("int x;")
        assert decl.name == "x"
        assert decl.ctype == IntType("int")

    def test_pointer(self):
        decl = first_decl("char *p;")
        assert isinstance(decl.ctype, PointerType)
        assert decl.ctype.pointee.is_char

    def test_pointer_to_pointer(self):
        decl = first_decl("char **pp;")
        assert isinstance(decl.ctype.pointee, PointerType)

    def test_array(self):
        decl = first_decl("char buf[10];")
        assert isinstance(decl.ctype, ArrayType)
        assert decl.ctype.length == 10

    def test_2d_array(self):
        decl = first_decl("int grid[2][3];")
        assert decl.ctype.length == 2
        assert decl.ctype.element.length == 3

    def test_array_size_constant_expression(self):
        decl = first_decl("char buf[4 * 8 + 1];")
        assert decl.ctype.length == 33

    def test_array_size_from_enum(self):
        decl = first_decl("enum { N = 7 }; char buf[N];")
        assert decl.ctype.length == 7

    def test_unsigned_long(self):
        decl = first_decl("unsigned long n;")
        assert decl.ctype == IntType("long", signed=False)

    def test_long_long(self):
        decl = first_decl("long long n;")
        assert decl.ctype == IntType("long long")

    def test_function_pointer(self):
        decl = first_decl("int (*fp)(char, int);")
        assert isinstance(decl.ctype, PointerType)
        assert isinstance(decl.ctype.pointee, FunctionType)
        assert len(decl.ctype.pointee.params) == 2

    def test_array_of_pointers(self):
        decl = first_decl("char *names[4];")
        assert isinstance(decl.ctype, ArrayType)
        assert isinstance(decl.ctype.element, PointerType)

    def test_multiple_declarators(self):
        unit = parse_translation_unit("int a, *b, c[3];")
        decls = unit.items[0].declarators
        assert [d.name for d in decls] == ["a", "b", "c"]
        assert isinstance(decls[1].ctype, PointerType)
        assert isinstance(decls[2].ctype, ArrayType)

    def test_initializer(self):
        decl = first_decl("int x = 1 + 2;")
        assert isinstance(decl.init, ast.Binary)

    def test_initializer_list(self):
        decl = first_decl("int a[3] = {1, 2, 3};")
        assert isinstance(decl.init, ast.InitList)
        assert len(decl.init.items) == 3

    def test_string_initializer(self):
        decl = first_decl('char s[] = "hi";')
        assert isinstance(decl.init, ast.StringLiteral)
        assert decl.init.value == b"hi"

    def test_static_storage_class(self):
        unit = parse_translation_unit("static int x;")
        assert unit.items[0].storage_class == "static"


class TestTypedefsAndStructs:
    def test_typedef_resolves(self):
        decl = first_decl("typedef unsigned long size_t; size_t n;")
        assert decl.ctype == IntType("long", signed=False)

    def test_typedef_pointer(self):
        unit = parse_translation_unit("typedef char *str; str s;")
        decl = unit.items[1].declarators[0]
        assert isinstance(decl.ctype, PointerType)

    def test_struct_definition(self):
        decl = first_decl("struct point { int x; int y; } p;")
        assert isinstance(decl.ctype, StructType)
        assert decl.ctype.has_member("x")
        assert decl.ctype.sizeof() == 8

    def test_struct_with_tag_reference(self):
        src = "struct node { int v; struct node *next; }; struct node n;"
        unit = parse_translation_unit(src)
        decl = unit.items[1].declarators[0]
        assert decl.ctype.has_member("next")

    def test_union(self):
        decl = first_decl("union u { int i; char c[8]; } x;")
        assert decl.ctype.is_union
        assert decl.ctype.sizeof() == 8

    def test_typedef_struct_idiom(self):
        src = "typedef struct { char *s; unsigned int len; } stralloc;\n" \
              "stralloc sa;"
        unit = parse_translation_unit(src)
        decl = unit.items[1].declarators[0]
        assert isinstance(decl.ctype, StructType)
        assert decl.ctype.member_offset("len") == (8, IntType("int",
                                                              signed=False))

    def test_enum_constants(self):
        decl = first_decl("enum color { RED, GREEN = 5, BLUE }; "
                          "char buf[BLUE];")
        assert decl.ctype.length == 6

    def test_bitfields_parsed(self):
        decl = first_decl("struct flags { int a : 1; int b : 2; } f;")
        assert decl.ctype.has_member("a")


class TestFunctions:
    def test_function_definition(self):
        unit = parse_translation_unit("int f(int a, char *b) { return a; }")
        fn = unit.items[0]
        assert isinstance(fn, ast.FunctionDef)
        assert fn.name == "f"
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_void_params(self):
        unit = parse_translation_unit("int f(void) { return 0; }")
        assert unit.items[0].params == []

    def test_variadic(self):
        unit = parse_translation_unit("int f(char *fmt, ...);")
        decl = unit.items[0].declarators[0]
        assert decl.ctype.variadic

    def test_array_param_decays(self):
        unit = parse_translation_unit("int f(char buf[10]) { return 0; }")
        assert isinstance(unit.items[0].params[0].ctype, PointerType)

    def test_prototype_then_definition(self):
        unit = parse_translation_unit(
            "int f(int);\nint f(int x) { return x; }")
        assert len(unit.functions()) == 1


class TestStatements:
    def test_if_else(self):
        items = main_body("int main(void){ if (1) { } else { } return 0; }")
        assert isinstance(items[0], ast.IfStmt)
        assert items[0].else_stmt is not None

    def test_while(self):
        items = main_body("int main(void){ while (0) ; return 0; }")
        assert isinstance(items[0], ast.WhileStmt)

    def test_do_while(self):
        items = main_body("int main(void){ int i=0; do { i++; } "
                          "while (i < 3); return 0; }")
        assert isinstance(items[1], ast.DoWhileStmt)

    def test_for_with_declaration(self):
        items = main_body("int main(void){ for (int i = 0; i < 3; i++) ; "
                          "return 0; }")
        stmt = items[0]
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.Declaration)

    def test_for_empty_clauses(self):
        items = main_body("int main(void){ for (;;) break; return 0; }")
        stmt = items[0]
        assert stmt.init is None and stmt.cond is None and \
            stmt.advance is None

    def test_switch_case_default(self):
        src = """int main(void){
            switch (1) { case 1: break; case 2: break; default: break; }
            return 0; }"""
        items = main_body(src)
        assert isinstance(items[0], ast.SwitchStmt)

    def test_goto_and_label(self):
        src = "int main(void){ goto end; end: return 0; }"
        items = main_body(src)
        assert isinstance(items[0], ast.GotoStmt)
        assert isinstance(items[1], ast.LabelStmt)

    def test_nested_blocks(self):
        items = main_body("int main(void){ { { int x; } } return 0; }")
        assert isinstance(items[0], ast.CompoundStmt)


class TestExpressions:
    def expr(self, text: str) -> ast.Expression:
        unit = parse_translation_unit(
            f"int main(void) {{ (void)({text}); return 0; }}")
        stmt = unit.function("main").body.items[0]
        return stmt.expr.operand

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.rhs.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = self.expr("1 << 2 < 3")
        assert e.op == "<"

    def test_logical_operators(self):
        e = self.expr("1 && 2 || 3")
        assert e.op == "||"

    def test_ternary(self):
        e = self.expr("1 ? 2 : 3")
        assert isinstance(e, ast.Conditional)

    def test_assignment_right_associative(self):
        unit = parse_translation_unit(
            "int main(void) { int a, b; a = b = 1; return 0; }")
        stmt = unit.function("main").body.items[1]
        assert isinstance(stmt.expr, ast.Assignment)
        assert isinstance(stmt.expr.rhs, ast.Assignment)

    def test_compound_assignment(self):
        unit = parse_translation_unit(
            "int main(void) { int a = 0; a += 2; return 0; }")
        stmt = unit.function("main").body.items[1]
        assert stmt.expr.op == "+="

    def test_cast(self):
        e = self.expr("(char *)0")
        assert isinstance(e, ast.Cast)
        assert isinstance(e.target_type, PointerType)

    def test_sizeof_type(self):
        e = self.expr("sizeof(int)")
        assert isinstance(e, ast.SizeofType)

    def test_sizeof_expression(self):
        unit = parse_translation_unit(
            "int main(void) { char b[4]; int n = sizeof b; return 0; }")
        decl = unit.function("main").body.items[1]
        assert isinstance(decl.declarators[0].init, ast.SizeofExpr)

    def test_sizeof_parenthesized_expr(self):
        unit = parse_translation_unit(
            "int main(void) { char b[4]; int n = sizeof(b); return 0; }")
        decl = unit.function("main").body.items[1]
        assert isinstance(decl.declarators[0].init, ast.SizeofExpr)

    def test_call_with_args(self):
        e = self.expr("f(1, 2, 3)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 3

    def test_chained_postfix(self):
        e = self.expr("a.b[1]")
        assert isinstance(e, ast.ArrayAccess)
        assert isinstance(e.base, ast.FieldAccess)

    def test_arrow(self):
        e = self.expr("p->next")
        assert isinstance(e, ast.FieldAccess)
        assert e.arrow

    def test_unary_operators(self):
        for op in ("-", "+", "!", "~", "&", "*"):
            e = self.expr(f"{op}x")
            assert isinstance(e, ast.Unary)
            assert e.op == op

    def test_prefix_vs_postfix_increment(self):
        pre = self.expr("++x")
        post = self.expr("x++")
        assert not pre.is_postfix
        assert post.is_postfix

    def test_comma_expression(self):
        e = self.expr("(1, 2)")
        assert isinstance(e, ast.Comma)

    def test_adjacent_strings_concatenate(self):
        e = self.expr('"ab" "cd"')
        assert isinstance(e, ast.StringLiteral)
        assert e.value == b"abcd"

    def test_char_literal_value(self):
        e = self.expr("'A'")
        assert e.value == 65

    def test_array_index_expression(self):
        e = self.expr("buf[i + 1]")
        assert isinstance(e, ast.ArrayAccess)
        assert isinstance(e.index, ast.Binary)


class TestSourceExtents:
    def test_call_extent_covers_whole_call(self):
        text = "int main(void) { f(1, 2); return 0; }"
        unit = parse_translation_unit(text)
        call = next(n for n in unit.walk() if isinstance(n, ast.Call))
        assert call.source_text(text) == "f(1, 2)"

    def test_declarator_name_extent(self):
        text = "int counter = 5;"
        unit = parse_translation_unit(text)
        decl = unit.items[0].declarators[0]
        start, end = decl.name_extent.start, decl.name_extent.end
        assert text[start:end] == "counter"

    def test_statement_extent(self):
        text = "int main(void) { return 42; }"
        unit = parse_translation_unit(text)
        ret = unit.function("main").body.items[0]
        assert ret.source_text(text) == "return 42;"

    def test_parenthesized_expr_extent_includes_parens(self):
        text = "int main(void) { int x = (1 + 2); return x; }"
        unit = parse_translation_unit(text)
        init = unit.function("main").body.items[0].declarators[0].init
        assert init.source_text(text) == "(1 + 2)"


class TestParents:
    def test_parents_assigned(self):
        unit = parse_translation_unit("int main(void) { return 1 + 2; }")
        ret = unit.function("main").body.items[0]
        assert ret.value.parent is ret
        assert ret.value.lhs.parent is ret.value

    def test_enclosing_function(self):
        unit = parse_translation_unit("int f(void) { return 0; }")
        ret = unit.items[0].body.items[0]
        assert ret.enclosing_function().name == "f"

    def test_enclosing_statement(self):
        unit = parse_translation_unit(
            "int main(void) { int x = 1 + 2; return x; }")
        decl = unit.function("main").body.items[0]
        init = decl.declarators[0].init
        assert init.enclosing_statement() is None or True  # Declaration
        # The binary's enclosing statement walk terminates at a Statement
        # or Declaration boundary:
        assert init.find_ancestor(ast.Declaration) is decl


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_translation_unit("int x")

    def test_unbalanced_brace(self):
        with pytest.raises(ParseError):
            parse_translation_unit("int main(void) { return 0;")

    def test_bad_expression(self):
        with pytest.raises(ParseError):
            parse_translation_unit("int main(void) { return +; }")

    def test_error_location(self):
        try:
            parse_translation_unit("int x = ;")
        except ParseError as exc:
            assert exc.line == 1
        else:
            pytest.fail("expected ParseError")


class TestVaArg:
    def test_va_arg_builtin(self):
        src = """
        typedef __builtin_va_list va_list;
        int sum(int n, ...) {
            va_list ap;
            __builtin_va_start(ap, n);
            int v = __builtin_va_arg(ap, int);
            __builtin_va_end(ap);
            return v;
        }
        """
        unit = parse_translation_unit(src)
        va = [n for n in unit.walk() if isinstance(n, ast.VaArg)]
        assert len(va) == 1
        assert va[0].target_type == IntType("int")
