"""Tests for the SAMATE benchmark generator and its pipeline."""

import pytest

from repro.cfront.parser import parse_translation_unit
from repro.cfront.preprocessor import Preprocessor
from repro.eval.samate_runner import run_samate_program, stratified_sample
from repro.samate import (
    FLOW_VARIANTS, PAPER_COUNTS, generate_cwe, generate_suite,
    render_program, suite_size,
)
from repro.samate.variants import CWE121_SLR_VARIANTS


class TestGeneratorSizing:
    def test_paper_counts_exact(self):
        suite = generate_suite()
        assert suite_size(suite) == 4505
        for cwe, (total, slr) in PAPER_COUNTS.items():
            assert len(suite[cwe]) == total
            assert sum(p.slr_applicable for p in suite[cwe]) == slr

    def test_str_applicability(self):
        suite = generate_suite(scale=0.02)
        for cwe, programs in suite.items():
            for program in programs:
                assert program.str_applicable == (cwe != 242)

    def test_scaled_suite_preserves_ratios(self):
        suite = generate_suite(scale=0.1)
        cwe121 = suite[121]
        slr = sum(p.slr_applicable for p in cwe121)
        assert len(cwe121) == 188            # round(1877 * 0.1)
        assert abs(slr / len(cwe121) - 1096 / 1877) < 0.05

    def test_names_unique(self):
        suite = generate_suite(scale=0.05)
        names = [p.name for cwe in suite.values() for p in cwe]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        first = generate_cwe(124, 30, 0)
        second = generate_cwe(124, 30, 0)
        assert [p.source for p in first] == [p.source for p in second]

    def test_flow_variants_all_used(self):
        programs = generate_cwe(121, 200, 120)
        flows = {p.flow for p in programs}
        assert len(flows) == len(FLOW_VARIANTS)

    def test_too_small_variant_space_raises(self):
        with pytest.raises(ValueError):
            generate_cwe(242, 100000, 100000)


class TestGeneratedPrograms:
    def test_every_sampled_program_parses(self):
        suite = generate_suite(scale=0.02)
        for programs in suite.values():
            for program in programs:
                pp = Preprocessor().preprocess(program.source,
                                               program.name)
                parse_translation_unit(pp.text, program.name)

    def test_program_structure(self):
        program = render_program(CWE121_SLR_VARIANTS[0],
                                 FLOW_VARIANTS[0], (8, 18))
        assert "static void good_case(void)" in program.source
        assert "static void bad_case(void)" in program.source
        assert "int main(void)" in program.source
        assert f"CWE-121" in program.source

    def test_flow_wrapping_appears_in_bad_only(self):
        program = render_program(CWE121_SLR_VARIANTS[0],
                                 FLOW_VARIANTS[15], (8, 18))  # while(1)
        bad = program.source[program.source.index("bad_case"):]
        good = program.source[
            program.source.index("good_case"):program.source.index(
                "bad_case")]
        assert "while (1)" in bad
        assert "while (1)" not in good


class TestPipeline:
    @pytest.mark.parametrize("cwe", sorted(PAPER_COUNTS))
    def test_bad_faults_and_gets_fixed(self, cwe):
        programs = stratified_sample(generate_cwe(cwe), 4)
        for program in programs:
            outcome = run_samate_program(program)
            assert outcome.bad_faulted_before, \
                f"{program.name} did not fault"
            assert outcome.fixed_after, \
                (program.name, outcome.fault_after)
            assert outcome.good_preserved, program.name

    def test_overflow_faults_are_memory_kinds(self):
        program = generate_cwe(121, 4, 4)[0]
        pp = Preprocessor().preprocess(program.source, program.name)
        from repro.vm import run_source
        result = run_source(pp.text, stdin=program.stdin)
        assert result.fault in ("buffer-overflow", "buffer-overread",
                                "buffer-underwrite", "buffer-underread")

    def test_underwrite_cwe_faults_with_under_kind(self):
        program = generate_cwe(124, 3, 0)[0]
        pp = Preprocessor().preprocess(program.source, program.name)
        from repro.vm import run_source
        result = run_source(pp.text, stdin=program.stdin)
        assert result.fault in ("buffer-underwrite", "buffer-underread")

    def test_transform_marks_applicability(self):
        slr_program = next(p for p in generate_cwe(121, 50, 40)
                           if p.slr_applicable)
        outcome = run_samate_program(slr_program, execute=False)
        assert outcome.slr_applied
        assert outcome.str_applied

    def test_stratified_sample(self):
        programs = generate_cwe(126, 60, 0)
        sample = stratified_sample(programs, 10)
        assert len(sample) == 10
        assert len({p.name for p in sample}) == 10
        sample_all = stratified_sample(programs, 999)
        assert len(sample_all) == 60
