"""Tests for the token-stream function matcher (cfront.funcdiff):
segmentation tiling, hash-based diffing across edit kinds, coupling
components, and the layouts that must fall back to whole-file mode."""

import pytest

from repro.cfront.funcdiff import (
    UnsupportedLayout, components, diff_files, dirty_closure,
    patch_segment, segment_file,
)

SOURCE = (
    "#include <string.h>\n"
    "#include <stdio.h>\n"
    "\n"
    "char shared[32];\n"
    "\n"
    "/* helper one */\n"
    "void alpha(const char *s) {\n"
    "    char buf[16];\n"
    "    strcpy(buf, s);\n"
    "    printf(\"%s\\n\", buf);\n"
    "}\n"
    "\n"
    "static int beta(int x) {\n"
    "    return x + 1;\n"
    "}\n"
    "\n"
    "void gamma(const char *s) {\n"
    "    strcpy(shared, s);\n"
    "}\n"
    "\n"
    "int main(void) {\n"
    "    char line[64];\n"
    "    fgets(line, sizeof line, stdin);\n"
    "    alpha(line);\n"
    "    gamma(line);\n"
    "    return beta(2);\n"
    "}\n"
)


def seg(text):
    return segment_file(text, "demo.c")


def test_tiling_reconstructs_text_exactly():
    sf = seg(SOURCE)
    assert "".join(s.text for s in sf.segments) == SOURCE
    assert sf.function_order() == ["alpha", "beta", "gamma", "main"]
    # Alternating interstitial / function, bookended by interstitials.
    kinds = [s.kind for s in sf.segments]
    assert kinds[::2] == ["interstitial"] * 5
    assert kinds[1::2] == ["function"] * 4


def test_preamble_carries_directives_and_globals():
    sf = seg(SOURCE)
    assert sf.preamble.tokenful
    assert "shared" in sf.preamble.object_ids
    # '#include' names are directive tokens, not object declarations.
    assert "string" not in sf.preamble.object_ids
    assert not sf.has_midfile_declarations()


def test_function_prototype_is_not_an_object_id():
    sf = seg("char *gets(char *s);\nint main(void) { return 0; }\n")
    assert "gets" not in sf.preamble.object_ids


def test_body_edit_changes_exactly_one_function():
    new = SOURCE.replace("return x + 1;", "return x + 2;")
    d = diff_files(seg(SOURCE), seg(new))
    assert d.changed == frozenset({"beta"})
    assert not d.inserted and not d.deleted
    assert not d.reordered and not d.preamble_changed


def test_rename_is_delete_plus_insert():
    new = SOURCE.replace("beta", "beta_renamed")
    d = diff_files(seg(SOURCE), seg(new))
    assert d.deleted == frozenset({"beta"})
    assert d.inserted == frozenset({"beta_renamed"})
    # The call site in main changed too.
    assert d.changed == frozenset({"main"})


def test_reorder_is_flagged_without_content_changes():
    sf = seg(SOURCE)
    alpha = sf.functions()["alpha"].text
    beta = sf.functions()["beta"].text
    swapped = (SOURCE.replace(alpha, "\x00").replace(beta, alpha)
               .replace("\x00", beta))
    d = diff_files(sf, seg(swapped))
    assert d.reordered
    assert not d.changed and not d.inserted and not d.deleted


def test_insertion_between_functions():
    new = SOURCE.replace(
        "void gamma",
        "int delta(void) {\n    return 7;\n}\n\nvoid gamma")
    d = diff_files(seg(SOURCE), seg(new))
    assert d.inserted == frozenset({"delta"})
    assert not d.changed and not d.deleted and not d.reordered


def test_deletion_of_a_function():
    sf = seg(SOURCE)
    gone = SOURCE.replace(sf.functions()["gamma"].text, "")
    d = diff_files(sf, seg(gone))
    assert d.deleted == frozenset({"gamma"})
    assert not d.changed and not d.inserted


def test_comment_edit_is_a_noop_invalidation():
    new = SOURCE.replace("helper one", "helper number one, edited")
    d = diff_files(seg(SOURCE), seg(new))
    assert d.no_op


def test_whitespace_only_gap_edit_is_a_noop():
    new = SOURCE.replace("}\n\nint main", "}\n\n\n\nint main")
    d = diff_files(seg(SOURCE), seg(new))
    assert d.no_op


def test_string_literal_edit_invalidates_only_its_function():
    new = SOURCE.replace('"%s\\n"', '"%s !\\n"')
    d = diff_files(seg(SOURCE), seg(new))
    assert d.changed == frozenset({"alpha"})
    assert not d.preamble_changed


def test_indentation_change_invalidates_the_function():
    # The preprocessor re-indents from the first token's column, so a
    # re-indented body genuinely renders differently.
    new = SOURCE.replace("    return x + 1;", "        return x + 1;")
    d = diff_files(seg(SOURCE), seg(new))
    assert d.changed == frozenset({"beta"})


def test_preamble_edit_is_not_charged_to_functions():
    new = SOURCE.replace("char shared[32];", "char shared[64];")
    d = diff_files(seg(SOURCE), seg(new))
    assert d.preamble_changed
    assert not d.changed


def test_components_couple_through_calls_and_globals():
    comp = components(seg(SOURCE))
    # main calls everything, gamma shares `shared` — one big component.
    assert comp["alpha"] == frozenset(
        {"alpha", "beta", "gamma", "main"})


def test_independent_functions_get_singleton_components():
    text = (
        "void a(void) { char b[4]; b[0] = 'x'; }\n"
        "void c(void) { char d[4]; d[0] = 'y'; }\n"
        "int main(void) { a(); return 0; }\n"
    )
    comp = components(seg(text))
    assert comp["c"] == frozenset({"c"})
    assert comp["a"] == frozenset({"a", "main"})


def test_dirty_closure_spreads_through_references():
    sf = seg(SOURCE)
    assert dirty_closure(sf, frozenset({"beta"})) == frozenset(
        {"alpha", "beta", "gamma", "main"})


def test_dirty_closure_for_deleted_name_marks_referencers():
    text = (
        "void a(void) { }\n"
        "void b(void) { a(); }\n"
        "void c(void) { }\n"
    )
    sf = seg(text.replace("void a(void) { }\n", ""))
    closure = dirty_closure(sf, frozenset({"a"}))
    assert "b" in closure and "c" not in closure


@pytest.mark.parametrize("bad, reason", [
    ("int f(\\\nvoid) { return 0; }\n", "splice"),
    ("void f(void) { }\nvoid f(void) { }\n", "duplicate"),
    ("void f(void) { }\n#define X 1\nvoid g(void) { }\n",
     "directive below preamble stays, but unbalanced is separate"),
])
def test_unsupported_layouts(bad, reason):
    if "define" in bad:
        # Directives between functions segment fine — they land in a
        # tokenful interstitial, which the engine treats as a fallback.
        sf = segment_file(bad, "x.c")
        assert sf.has_midfile_declarations()
    else:
        with pytest.raises(UnsupportedLayout):
            segment_file(bad, "x.c")


def test_struct_braces_are_not_function_bodies():
    text = (
        "struct point { int x; int y; };\n"
        "struct point origin = { 0, 0 };\n"
        "int main(void) { return origin.x; }\n"
    )
    sf = seg(text)
    assert sf.function_order() == ["main"]
    assert "origin" in sf.preamble.object_ids


def test_prototype_parameter_names_do_not_couple():
    # `src` appears in the strcpy prototype and in both bodies, but a
    # prototype parameter has function-prototype scope — it declares no
    # file-scope object, so a and c must stay independent.
    text = (
        "char *strcpy(char *dest, const char *src);\n"
        "void a(const char *src) { char b[4]; strcpy(b, src); }\n"
        "void c(const char *src) { char d[4]; strcpy(d, src); }\n"
    )
    comp = components(seg(text))
    assert comp["a"] == frozenset({"a"})
    assert comp["c"] == frozenset({"c"})


def test_function_pointer_global_still_couples():
    # Declarator parens `(*handler)` do not follow an identifier, so
    # `handler` remains a coupling object.
    text = (
        "void (*handler)(int);\n"
        "void a(void) { handler(1); }\n"
        "void c(void) { handler(2); }\n"
    )
    sf = seg(text)
    assert "handler" in sf.preamble.object_ids
    comp = components(sf)
    assert comp["a"] == frozenset({"a", "c"})


# ----------------------------------------------------------- patching

def assert_patch_equals_full(old_sf, new_text):
    patched = patch_segment(old_sf, new_text)
    assert patched is not None
    full = segment_file(new_text, old_sf.name)
    assert [(s.kind, s.name, s.text, s.token_hash)
            for s in patched.segments] == \
        [(s.kind, s.name, s.text, s.token_hash) for s in full.segments]
    assert patched.text == new_text


def test_patch_identical_text_returns_old_object():
    sf = seg(SOURCE)
    assert patch_segment(sf, SOURCE) is sf


def test_patch_body_edit_matches_full_segmentation():
    sf = seg(SOURCE)
    assert_patch_equals_full(sf, SOURCE.replace("x + 1", "x + 2"))


def test_patch_grow_and_shrink_edits_match_full():
    sf = seg(SOURCE)
    assert_patch_equals_full(
        sf, SOURCE.replace("return x + 1;",
                           "int y = x;\n    return y + 1;"))
    assert_patch_equals_full(sf, SOURCE.replace("    char buf[16];\n", ""))


def test_patch_rename_within_tile_matches_full():
    sf = seg(SOURCE)
    assert_patch_equals_full(
        sf, SOURCE.replace("static int beta(int x)",
                           "static int delta(int x)"))


def test_patch_refuses_preamble_and_gap_edits():
    sf = seg(SOURCE)
    assert patch_segment(
        sf, SOURCE.replace("char shared[32];", "char shared[64];")) is None
    assert patch_segment(
        sf, SOURCE.replace("/* helper one */", "/* helper 1 */")) is None


def test_patch_refuses_multi_function_edits():
    sf = seg(SOURCE)
    two = SOURCE.replace("x + 1", "x + 2").replace(
        "strcpy(shared, s);", "strcpy(shared, s); /* edited */")
    assert patch_segment(sf, two) is None


def test_patch_refuses_structural_breakage():
    sf = seg(SOURCE)
    # Unbalancing the tile's braces cannot be patched locally.
    assert patch_segment(
        sf, SOURCE.replace("return x + 1;\n}", "return x + 1;\n")) is None
    # Splitting one tile into two functions must re-tile fully.
    split = SOURCE.replace(
        "static int beta(int x) {\n    return x + 1;\n}",
        "static int beta(int x) {\n    return x + 1;\n}\n"
        "int extra(void) {\n    return 9;\n}")
    assert patch_segment(sf, split) is None


def test_patch_refuses_rename_onto_existing_function():
    sf = seg(SOURCE)
    clash = SOURCE.replace("static int beta(int x)",
                           "static int gamma(int x)")
    assert patch_segment(sf, clash) is None
    with pytest.raises(UnsupportedLayout):
        segment_file(clash, "demo.c")


def test_patch_edit_at_tile_boundaries_matches_full():
    sf = seg(SOURCE)
    # First token of a tile and last token before the closing brace.
    assert_patch_equals_full(sf, SOURCE.replace("void gamma", "int gamma"))
    assert_patch_equals_full(
        sf, SOURCE.replace("    return beta(2);\n}", "    return beta(3);\n}"))


def test_multiline_heading_belongs_to_the_function():
    text = (
        "static int\n"
        "helper(int x)\n"
        "{\n"
        "    return x;\n"
        "}\n"
        "int main(void) { return helper(1); }\n"
    )
    sf = seg(text)
    assert sf.function_order() == ["helper", "main"]
    helper = sf.functions()["helper"]
    assert helper.text.startswith("static int\n")
