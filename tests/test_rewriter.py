"""Unit tests for the extent-based source rewriter."""

import pytest

from repro.cfront.rewriter import (
    Rewriter, RewriteConflict, end_of_line, line_indent,
    statement_line_start,
)
from repro.cfront.source import SourceExtent


class TestBasicEdits:
    def test_replace(self):
        r = Rewriter("strcpy(dst, src);")
        r.replace(SourceExtent(0, 6), "g_strlcpy")
        assert r.apply() == "g_strlcpy(dst, src);"

    def test_insert_before(self):
        r = Rewriter("abc")
        r.insert_before(1, "X")
        assert r.apply() == "aXbc"

    def test_insert_after_extent(self):
        r = Rewriter("f(a)")
        r.insert_after(SourceExtent(2, 3), ", b")
        assert r.apply() == "f(a, b)"

    def test_delete(self):
        r = Rewriter("hello world")
        r.delete(SourceExtent(5, 11))
        assert r.apply() == "hello"

    def test_no_edits_identity(self):
        r = Rewriter("unchanged")
        assert not r.has_edits
        assert r.apply() == "unchanged"

    def test_multiple_disjoint_edits(self):
        r = Rewriter("aaa bbb ccc")
        r.replace(SourceExtent(0, 3), "XX")
        r.replace(SourceExtent(8, 11), "YY")
        assert r.apply() == "XX bbb YY"

    def test_edits_applied_in_position_order(self):
        r = Rewriter("0123456789")
        r.replace(SourceExtent(8, 9), "B")
        r.replace(SourceExtent(1, 2), "A")
        assert r.apply() == "0A234567B9"


class TestInsertionOrdering:
    def test_same_point_insertions_keep_queue_order(self):
        r = Rewriter("X")
        r.insert_before(0, "a")
        r.insert_before(0, "b")
        assert r.apply() == "abX"

    def test_insert_at_both_ends(self):
        r = Rewriter("mid")
        r.insert_before(0, "pre-")
        r.insert_before(3, "-post")
        assert r.apply() == "pre-mid-post"


class TestConflicts:
    def test_overlapping_replacements_rejected(self):
        r = Rewriter("0123456789")
        r.replace(SourceExtent(2, 6), "X")
        with pytest.raises(RewriteConflict):
            r.replace(SourceExtent(4, 8), "Y")

    def test_nested_replacement_rejected(self):
        r = Rewriter("0123456789")
        r.replace(SourceExtent(2, 8), "X")
        with pytest.raises(RewriteConflict):
            r.replace(SourceExtent(4, 5), "Y")

    def test_insertion_inside_replacement_rejected(self):
        r = Rewriter("0123456789")
        r.replace(SourceExtent(2, 8), "X")
        with pytest.raises(RewriteConflict):
            r.insert_before(5, "Y")

    def test_insertion_at_replacement_boundary_ok(self):
        r = Rewriter("0123456789")
        r.replace(SourceExtent(2, 5), "X")
        r.insert_before(2, "Y")     # at the left boundary: allowed
        assert r.apply() == "01YX56789"

    def test_adjacent_replacements_ok(self):
        r = Rewriter("0123456789")
        r.replace(SourceExtent(2, 5), "A")
        r.replace(SourceExtent(5, 7), "B")
        assert r.apply() == "01AB789"

    def test_out_of_bounds_rejected(self):
        r = Rewriter("abc")
        with pytest.raises(ValueError):
            r.replace_range(2, 99, "X")


class TestPreview:
    def test_preview_pairs(self):
        r = Rewriter("strcpy(d, s);")
        r.replace(SourceExtent(0, 6), "g_strlcpy")
        assert r.preview() == [("strcpy", "g_strlcpy")]

    def test_edit_count(self):
        r = Rewriter("ab")
        r.insert_before(0, "x")
        r.insert_before(2, "y")
        assert r.edit_count == 2


class TestLineHelpers:
    TEXT = "line one\n    indented line\nlast"

    def test_line_indent(self):
        offset = self.TEXT.index("indented")
        assert line_indent(self.TEXT, offset) == "    "

    def test_line_indent_none(self):
        assert line_indent(self.TEXT, 2) == ""

    def test_statement_line_start(self):
        offset = self.TEXT.index("indented")
        assert statement_line_start(self.TEXT, offset) == 9

    def test_end_of_line(self):
        assert end_of_line(self.TEXT, 0) == 9

    def test_end_of_line_last_line(self):
        offset = self.TEXT.index("last")
        assert end_of_line(self.TEXT, offset) == len(self.TEXT)
