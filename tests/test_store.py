"""Tests for the persistent artifact store and its cache layering."""

import os
import pickle
import subprocess
import sys

import pytest

from repro.cfront.cache import ContentCache, _REGISTRY, \
    clear_all_caches, content_key, snapshot_stats
from repro.core.store import ArtifactStore, SCHEMA_VERSION, \
    disk_enabled, get_store, reset_store

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


@pytest.fixture
def scratch_cache():
    """A uniquely named disk-backed ContentCache, deregistered after."""
    caches = []

    def make(name, family="slr", maxsize=None):
        cache = ContentCache(name, maxsize, family=family)
        caches.append(cache)
        return cache

    yield make
    for cache in caches:
        _REGISTRY.pop(cache.name, None)


class TestArtifactStore:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        nbytes = store.store("slr", "abcd", {"x": [1, 2, 3]})
        assert nbytes > 0
        hit, value, read = store.load("slr", "abcd")
        assert hit and value == {"x": [1, 2, 3]} and read == nbytes

    def test_missing_entry_is_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        hit, value, read = store.load("parse", "feed")
        assert (hit, value, read) == (False, None, 0)
        assert store.counters["parse"]["misses"] == 1

    def test_corrupt_entry_is_miss_and_unlinked(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        store.store("slr", "abcd", "good")
        path = store._entry_path("slr", "abcd")
        with open(path, "wb") as fh:
            fh.write(b"\x80\x05 definitely not a pickle")
        hit, value, _ = store.load("slr", "abcd")
        assert not hit and value is None
        assert not os.path.exists(path)

    def test_half_written_tmp_is_invisible(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        store.store("slr", "abcd", "value")
        entry_dir = os.path.dirname(store._entry_path("slr", "abcd"))
        tmp = os.path.join(entry_dir, ".abcd.9999.deadbeef.tmp")
        with open(tmp, "wb") as fh:
            fh.write(pickle.dumps("partial")[:5])
        # The published entry still loads; the torn write is ignored.
        hit, value, _ = store.load("slr", "abcd")
        assert hit and value == "value"
        # gc reclaims abandoned temp files but keeps live entries.
        result = store.gc(tmp_max_age_s=0.0)
        assert result["removed_files"] == 1
        assert not os.path.exists(tmp)
        assert store.load("slr", "abcd")[0]

    def test_gc_drops_stale_versions(self, tmp_path):
        old = ArtifactStore(str(tmp_path), fingerprint="aaaa")
        old.store("slr", "abcd", "old-entry")
        new = ArtifactStore(str(tmp_path), fingerprint="bbbb")
        assert new.stale_versions() == [old.version_dir]
        result = new.gc()
        assert result["removed_versions"] == 1
        assert result["removed_files"] == 1
        assert not os.path.exists(old.version_dir)

    def test_gc_max_age_removes_old_entries(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        store.store("slr", "abcd", "value")
        assert store.gc(max_age_s=3600.0)["removed_files"] == 0
        assert store.gc(max_age_s=0.0)["removed_files"] == 1
        assert not store.load("slr", "abcd")[0]

    def test_clear_reports_files_and_bytes(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        written = store.store("slr", "abcd", "v1") \
            + store.store("parse", "efgh", "v2")
        files, nbytes = store.clear()
        assert files == 2 and nbytes == written
        assert store.usage() == {}

    def test_usage_per_family(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        store.store("slr", "aa11", "x")
        store.store("slr", "bb22", "y")
        store.store("execute", "cc33", "z")
        usage = store.usage()
        assert usage["slr"]["entries"] == 2
        assert usage["execute"]["entries"] == 1
        assert "parse" not in usage

    def test_version_dir_tracks_schema_and_fingerprint(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="cafe")
        assert os.path.basename(store.version_dir) \
            == f"v{SCHEMA_VERSION}-cafe"

    def test_counters_persist_across_processes(self, tmp_path):
        writer = ArtifactStore(str(tmp_path), fingerprint="t1")
        writer.store("slr", "abcd", "value")
        writer.load("slr", "abcd")
        writer.flush_counters()
        later = ArtifactStore(str(tmp_path), fingerprint="t1")
        merged = later.persisted_counters()
        assert merged["slr"]["hits"] == 1
        assert merged["slr"]["bytes_written"] > 0


class TestConcurrentWriters:
    WRITER = (
        "import pickle, sys\n"
        "sys.path.insert(0, {src!r})\n"
        "from repro.core.store import ArtifactStore\n"
        "store = ArtifactStore({root!r}, fingerprint='race')\n"
        "for i in range(40):\n"
        "    key = 'k%03d' % i\n"
        "    store.store('slr', key, ('value', i, {tag!r}))\n")

    def test_two_processes_racing_same_keys(self, tmp_path):
        """Both writers publish every key; readers only ever observe
        complete entries and no temp files survive."""
        procs = [
            subprocess.Popen(
                [sys.executable, "-c",
                 self.WRITER.format(src=REPO_SRC, root=str(tmp_path),
                                    tag=tag)])
            for tag in ("one", "two")]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        store = ArtifactStore(str(tmp_path), fingerprint="race")
        for i in range(40):
            hit, value, _ = store.load("slr", "k%03d" % i)
            assert hit, i
            assert value[:2] == ("value", i)
            assert value[2] in ("one", "two")
        leftovers = [name for _, _, names in os.walk(str(tmp_path))
                     for name in names if name.endswith(".tmp")]
        assert leftovers == []


class TestShardedLayout:
    """PR 9: key-prefix sharding, flat-layout migration, per-shard
    counters, and gc directory pruning."""

    def test_entries_land_in_shard_directories(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1", shards=8)
        for i in range(20):
            store.store("slr", f"key{i:02d}x", i)
        family_dir = os.path.join(store.version_dir, "slr")
        subdirs = sorted(os.listdir(family_dir))
        assert subdirs and all(s.startswith("s") and len(s) == 4
                               for s in subdirs)
        assert len(subdirs) > 1          # keys actually spread out
        assert all(int(s[1:]) < 8 for s in subdirs)

    def test_shard_label_is_stable_and_prefix_driven(self, tmp_path):
        a = ArtifactStore(str(tmp_path), fingerprint="t1", shards=16)
        b = ArtifactStore(str(tmp_path), fingerprint="t1", shards=16)
        key = "abcdef0123456789"
        assert a.shard_label(key) == b.shard_label(key)
        # Only the first 8 chars matter: same prefix, same shard.
        assert a.shard_label("abcdef01" + "zz" * 8) == a.shard_label(key)

    def test_shards_knob_controls_fanout(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SHARDS", "4")
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        assert store.shards == 4
        labels = {store.shard_label(f"key-{i}") for i in range(100)}
        assert labels <= {f"s{n:03d}" for n in range(4)}

    def test_flat_layout_read_through_and_migration(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        legacy = store._legacy_entry_path("slr", "abcd")
        os.makedirs(os.path.dirname(legacy), exist_ok=True)
        with open(legacy, "wb") as fh:
            fh.write(pickle.dumps("old-value"))
        hit, value, _ = store.load("slr", "abcd")
        assert hit and value == "old-value"
        # The entry now lives under its shard; the flat copy is gone.
        assert os.path.exists(store._entry_path("slr", "abcd"))
        assert not os.path.exists(legacy)
        assert store.counters["slr"]["migrated"] == 1
        # Second read is a plain sharded hit.
        assert store.load("slr", "abcd") == (True, "old-value",
                                             os.path.getsize(
                                                 store._entry_path(
                                                     "slr", "abcd")))
        assert store.counters["slr"]["migrated"] == 1

    def test_corrupt_legacy_entry_is_miss_and_unlinked(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        legacy = store._legacy_entry_path("slr", "abcd")
        os.makedirs(os.path.dirname(legacy), exist_ok=True)
        with open(legacy, "wb") as fh:
            fh.write(b"\x80\x05 definitely not a pickle")
        hit, value, _ = store.load("slr", "abcd")
        assert not hit and value is None
        assert not os.path.exists(legacy)

    def test_per_shard_counters_flush_and_merge(self, tmp_path):
        writer = ArtifactStore(str(tmp_path), fingerprint="t1")
        writer.store("slr", "abcd", "value")
        writer.load("slr", "abcd")
        writer.flush_counters()
        later = ArtifactStore(str(tmp_path), fingerprint="t1")
        shards = later.persisted_shard_counters()
        label = later.shard_label("abcd")
        assert shards["slr"][label]["hits"] == 1
        assert shards["slr"][label]["bytes_written"] > 0

    def test_pre_shard_counter_files_still_merge(self, tmp_path):
        # A counter file written by the pre-shard code (a bare family
        # dict, no "families" wrapper) still counts.
        import json
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        directory = os.path.join(store.version_dir, "counters")
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "123-old.json"), "w") as fh:
            json.dump({"slr": {"hits": 7, "misses": 0,
                               "bytes_read": 70, "bytes_written": 0}},
                      fh)
        merged = store.persisted_counters()
        assert merged["slr"]["hits"] == 7
        assert merged["slr"]["migrated"] == 0

    def test_shard_usage_reports_per_directory(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1", shards=4)
        store.store("slr", "aa11", "x")
        store.store("slr", "bb22", "y")
        usage = store.shard_usage()
        total = sum(s["entries"] for s in usage["slr"].values())
        assert total == 2

    def test_contention_summary_counts_spread(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1", shards=8)
        for i in range(20):
            store.store("slr", f"key{i:02d}x", i)
        summary = store.contention_summary()
        assert summary["slr"]["shards"] == 8
        assert 1 <= summary["slr"]["shards_used"] <= 8
        assert summary["slr"]["max_shard_bytes"] \
            <= summary["slr"]["bytes_written"]

    def test_gc_prunes_empty_directories(self, tmp_path):
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        store.store("slr", "abcd", "value")
        entry_dir = os.path.dirname(store._entry_path("slr", "abcd"))
        result = store.gc(max_age_s=0.0)
        assert result["removed_files"] == 1
        assert result["removed_dirs"] >= 2     # shard dir + family dir
        assert not os.path.exists(entry_dir)
        assert not os.path.exists(os.path.join(store.version_dir, "slr"))
        # The store still works after pruning.
        assert store.store("slr", "abcd", "again") > 0
        assert store.load("slr", "abcd")[0]

    def test_gc_race_tolerates_missing_entries(self, tmp_path,
                                               monkeypatch):
        """A second gc racing the first sees entries vanish between the
        walk and the unlink; both finish cleanly."""
        store = ArtifactStore(str(tmp_path), fingerprint="t1")
        store.store("slr", "abcd", "value")
        real_unlink = os.unlink

        def racing_unlink(path, *args, **kwargs):
            # Simulate the race: the other gc removed it first.
            real_unlink(path)
            real_unlink(path)

        monkeypatch.setattr("repro.core.store.os.unlink", racing_unlink)
        result = store.gc(max_age_s=0.0)
        assert result["removed_files"] == 0    # lost every race
        monkeypatch.undo()
        assert not os.path.exists(store._entry_path("slr", "abcd"))

    def test_two_process_race_on_sharded_layout(self, tmp_path):
        """Two writers race the same keys across many shards; every key
        is readable, lands in its shard, and no temp files survive."""
        writer = (
            "import sys\n"
            "sys.path.insert(0, {src!r})\n"
            "from repro.core.store import ArtifactStore\n"
            "store = ArtifactStore({root!r}, fingerprint='shard-race',\n"
            "                      shards=8)\n"
            "for i in range(40):\n"
            "    key = 'k%03d' % i\n"
            "    store.store('slr', key, ('value', i, {tag!r}))\n")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c",
                 writer.format(src=REPO_SRC, root=str(tmp_path),
                               tag=tag)])
            for tag in ("one", "two")]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        store = ArtifactStore(str(tmp_path), fingerprint="shard-race",
                              shards=8)
        for i in range(40):
            key = "k%03d" % i
            hit, value, _ = store.load("slr", key)
            assert hit, i
            assert value[:2] == ("value", i)
            assert os.path.exists(store._entry_path("slr", key))
        leftovers = [name for _, _, names in os.walk(str(tmp_path))
                     for name in names if name.endswith(".tmp")]
        assert leftovers == []


class TestCacheLayering:
    def test_memory_then_disk_then_compute(self, fresh_store,
                                           scratch_cache):
        cache = scratch_cache("layering-test")
        builds = []

        def build():
            builds.append(1)
            return "computed"

        key = content_key("layering-test", "input-a")
        assert cache.get_or_build(key, build) == "computed"
        assert builds == [1]
        assert cache.stats.disk_misses == 1
        assert cache.stats.bytes_written > 0
        # Memory hit: disk untouched.
        assert cache.get_or_build(key, build) == "computed"
        assert builds == [1]
        assert cache.stats.hits == 1
        # Evict memory: the disk layer answers, nothing is recomputed.
        cache.clear()
        assert cache.get_or_build(key, build) == "computed"
        assert builds == [1]
        assert cache.stats.disk_hits == 1
        assert cache.stats.bytes_read > 0

    def test_repro_cache_0_bypasses_disk_entirely(self, fresh_store,
                                                  scratch_cache,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not disk_enabled()
        cache = scratch_cache("alloff-test")
        builds = []
        key = content_key("alloff-test", "input-b")
        for _ in range(2):
            cache.get_or_build(key, lambda: builds.append(1) or "v")
        assert len(builds) == 2                  # nothing cached
        assert fresh_store.usage() == {}         # nothing on disk
        assert cache.stats.disk_misses == 0      # disk never consulted

    def test_repro_disk_cache_0_disables_disk_only(self, fresh_store,
                                                   scratch_cache,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        assert not disk_enabled()
        cache = scratch_cache("diskoff-test")
        builds = []
        key = content_key("diskoff-test", "input-c")
        for _ in range(2):
            cache.get_or_build(key, lambda: builds.append(1) or "v")
        assert len(builds) == 1                  # memory LRU still on
        assert fresh_store.usage() == {}


BROKEN_TMPL = """\
#include <stdio.h>
#include <string.h>
int main(void) {{
    char buf[8];
    char line[64];
    if (fgets(line, 64, stdin)) {{
        strcpy(buf, line);
        printf("{tag}:%s", buf);
    }}
    return 0;
}}
"""


class TestBatchIntegration:
    def test_duplicate_content_deduplicated(self, fresh_store):
        """Identical-content files share one transform: the batch maps
        one task and clones its report under each filename."""
        from repro.core.batch import SourceProgram, apply_batch
        src = BROKEN_TMPL.format(tag="dedup-test")
        other = BROKEN_TMPL.format(tag="dedup-test-other")
        program = SourceProgram(
            "dup", {"a.c": src, "b.c": src, "c.c": other})
        result = apply_batch(program, jobs=1, validate=False)
        stats = result.stats
        assert stats.deduplicated == 1
        # Two unique texts -> two SLR builds, no duplicate disk misses.
        assert stats.slr.misses == 2
        assert stats.slr.disk_misses == 2
        assert stats.str_.misses == 2
        by_name = {r.filename: r for r in result.reports}
        assert sorted(by_name) == ["a.c", "b.c", "c.c"]
        assert by_name["a.c"].final_text == by_name["b.c"].final_text
        assert by_name["a.c"].slr.transformed_count == 1

    def test_parent_prewarms_store_for_workers(self, fresh_store):
        """Preprocess runs (and persists) in the parent before any task
        is mapped, so a worker-side lookup can only hit."""
        from repro.core.batch import SourceProgram, apply_batch
        src = BROKEN_TMPL.format(tag="prewarm-test")
        program = SourceProgram("warm", {"a.c": src})
        apply_batch(program, jobs=1, validate=False)
        assert fresh_store.usage()["preprocess"]["entries"] >= 1
        assert fresh_store.usage()["parse"]["entries"] >= 1

    def test_warm_cross_process_replays_from_disk(self, fresh_store):
        """Simulate a new process (empty memory caches, same store):
        the rerun is served by disk hits and is byte-identical."""
        from repro.core.batch import SourceProgram, apply_batch
        from repro.core.session import reset_session
        src = BROKEN_TMPL.format(tag="crossproc-test")
        program = SourceProgram("xp", {"a.c": src})
        cold = apply_batch(program, jobs=1, validate=True)

        clear_all_caches()
        reset_session()
        warm = apply_batch(SourceProgram("xp", {"a.c": src}),
                           jobs=1, validate=True)
        stats = warm.stats
        disk_hits = stats.preprocess.disk_hits + stats.parse.disk_hits \
            + stats.slr.disk_hits + stats.str_.disk_hits \
            + stats.validate.disk_hits
        assert disk_hits > 0
        assert stats.slr.disk_hits == 1
        assert warm.reports[0].final_text == cold.reports[0].final_text
        assert warm.reports[0].validation.counts() \
            == cold.reports[0].validation.counts()

    def test_validate_seed_changes_miss_cache(self, fresh_store,
                                              monkeypatch):
        """A changed REPRO_VALIDATE_SEED draws different fuzz bytes, so
        a cached verdict must never be replayed for it."""
        from repro.core.session import get_session
        from repro.core.validate import _VALIDATE_CACHE, default_inputs, \
            validate_pair
        src = BROKEN_TMPL.format(tag="seed-test")
        session = get_session()
        original = session.preprocess(src, "seed_test.c").text
        from repro.core.batch import cached_slr
        transformed = cached_slr(original, "seed_test.c").new_text
        assert transformed != original

        def run():
            return validate_pair(
                original, transformed, filename="seed_test.c",
                inputs=default_inputs("seed_test.c"))

        monkeypatch.setenv("REPRO_VALIDATE_SEED", "1")
        base = _VALIDATE_CACHE.stats
        run()
        misses_after_first = base.misses
        run()                                     # same seed: a hit
        assert base.misses == misses_after_first
        monkeypatch.setenv("REPRO_VALIDATE_SEED", "2")
        run()                                     # new seed: a miss
        assert base.misses == misses_after_first + 1

    def test_validate_seed_changes_probe_bytes(self, monkeypatch):
        from repro.core.validate import _inputs_key_parts, default_inputs
        monkeypatch.setenv("REPRO_VALIDATE_SEED", "1")
        parts_1 = _inputs_key_parts(default_inputs("f.c"))
        monkeypatch.setenv("REPRO_VALIDATE_SEED", "2")
        parts_2 = _inputs_key_parts(default_inputs("f.c"))
        assert parts_1 != parts_2


class TestFingerprintSalt:
    def test_fingerprint_salts_content_key(self, monkeypatch):
        monkeypatch.setenv("REPRO_FINGERPRINT", "aaaa")
        key_a = content_key("slr", "same text")
        monkeypatch.setenv("REPRO_FINGERPRINT", "bbbb")
        key_b = content_key("slr", "same text")
        assert key_a != key_b

    def test_fingerprint_selects_version_dir(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_FINGERPRINT", "aaaa")
        dir_a = ArtifactStore(str(tmp_path)).version_dir
        monkeypatch.setenv("REPRO_FINGERPRINT", "bbbb")
        dir_b = ArtifactStore(str(tmp_path)).version_dir
        assert dir_a != dir_b

    def test_reset_store_rereads_environment(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "here"))
        store = reset_store()
        assert store is get_store()
        assert store.root == str(tmp_path / "here")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "there"))
        assert reset_store().root == str(tmp_path / "there")


class TestBackendKeySalt:
    """Backend candidate artifacts can never collide across backends,
    configs, or arbitration-contract versions (PR 6 satellite)."""

    TEXT = "int main(void) { return 0; }\n"

    def test_backend_id_salts_key(self):
        from repro.core.backends import backend_cache_key, get_backend
        keys = {backend_cache_key(get_backend(b), self.TEXT)
                for b in ("slr", "str", "tr24731", "s3lib")}
        assert len(keys) == 4

    def test_config_key_salts_key(self):
        from repro.core.backends import SLRBackend, backend_cache_key

        class Tuned(SLRBackend):
            def config_key(self):
                return "profile=glib;tuned=1"

        assert backend_cache_key(SLRBackend(), self.TEXT) \
            != backend_cache_key(Tuned(), self.TEXT)

    def test_arbitration_version_salts_key(self, monkeypatch):
        from repro.core import backends
        key_1 = backends.backend_cache_key(
            backends.get_backend("slr"), self.TEXT)
        monkeypatch.setattr(backends, "ARBITRATION_VERSION", "arb-test")
        key_2 = backends.backend_cache_key(
            backends.get_backend("slr"), self.TEXT)
        assert key_1 != key_2

    def test_backend_family_registered_in_store(self):
        from repro.core.store import FAMILIES
        assert "backend" in FAMILIES

    def test_fingerprint_walk_covers_backend_modules(self):
        """The tool fingerprint digests every .py under the package
        root, so a backend change must invalidate backend artifacts —
        the new modules have to live inside that walked tree."""
        import repro
        import repro.core.backends
        import repro.core.s3lib
        root = os.path.dirname(os.path.abspath(repro.__file__))
        for module in (repro.core.backends, repro.core.s3lib):
            path = os.path.abspath(module.__file__)
            assert path.startswith(root + os.sep), path
            assert path.endswith(".py"), path


class TestDegradedStore:
    """OSError on any store path degrades to a miss/no-op with exactly
    one warning per operation per process — never an exception."""

    KEY = "ab" * 32

    def _denying(self, monkeypatch, operation):
        """Make the named I/O primitive raise PermissionError."""
        def deny(*_args, **_kwargs):
            raise PermissionError(13, "Permission denied")
        monkeypatch.setattr(f"repro.core.store.os.{operation}", deny)

    def test_unreadable_entry_is_miss_with_one_warning(
            self, tmp_path, monkeypatch):
        store = ArtifactStore(str(tmp_path), fingerprint="t-deg")
        assert store.store("slr", self.KEY, {"v": 1}) > 0

        real_open = open

        def denying_open(path, mode="r", *args, **kwargs):
            if "b" in mode and "r" in mode and str(path).endswith(".pkl"):
                raise PermissionError(13, "Permission denied", str(path))
            return real_open(path, mode, *args, **kwargs)

        monkeypatch.setattr("builtins.open", denying_open)
        with pytest.warns(RuntimeWarning, match="store read failed"):
            hit, value, _ = store.load("slr", self.KEY)
        assert not hit and value is None
        # Second failure: silent (the warning fired already).
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            hit, _, _ = store.load("slr", self.KEY)
        assert not hit

    def test_missing_entry_never_warns(self, tmp_path):
        import warnings as _warnings
        store = ArtifactStore(str(tmp_path), fingerprint="t-deg2")
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            hit, _, _ = store.load("slr", "cd" * 32)
        assert not hit

    def test_unwritable_dir_is_noop_with_one_warning(
            self, tmp_path, monkeypatch):
        store = ArtifactStore(str(tmp_path), fingerprint="t-deg3")
        self._denying(monkeypatch, "replace")
        with pytest.warns(RuntimeWarning, match="store write failed"):
            assert store.store("slr", self.KEY, {"v": 1}) == 0
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert store.store("slr", "ef" * 32, {"v": 2}) == 0

    def test_read_only_dir_end_to_end(self, tmp_path, monkeypatch):
        # A worst-case cache directory (every write denied, every read
        # denied) must leave the pipeline fully functional.
        from repro.core.batch import SourceProgram, apply_batch
        store = ArtifactStore(str(tmp_path), fingerprint="t-deg4")
        monkeypatch.setattr("repro.core.store.get_store", lambda: store)
        self._denying(monkeypatch, "replace")
        program = SourceProgram("p", {
            "a.c": "#include <string.h>\n"
                   "void f(void) { char b[8]; strcpy(b, \"x\"); }\n"})
        with pytest.warns(RuntimeWarning, match="store write failed"):
            batch = apply_batch(program, jobs=1)
        assert batch.reports[0].status == "ok"
        assert batch.reports[0].slr.transformed_count == 1
