"""Crash-safe run journal, resume, quarantine, and audit trail (PR 10).

Covers: the write-ahead journal round trip (manifest, events, result
pointers, audit records), ``--resume`` replay semantics (including
parent-kill crashes at the journal's worst-ordered write point, proven
byte-identical against an uninterrupted run at jobs 1 and 4, warm and
cold store), poison-file quarantine (skip without spending the retry
budget, re-entry on content change, ``REPRO_QUARANTINE=0``), disk-full
degradation, run GC, the ``repro runs`` CLI, and the supervised pool's
exponential retry backoff.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.core.batch import (
    RETRY_BACKOFF_BASE_S, RETRY_BACKOFF_CAP_S, SourceProgram, apply_batch,
    retry_backoff,
)
from repro.core.diagnostics import STATUS_FAILED, STATUS_QUARANTINED
from repro.core.faults import KILL_EXIT_CODE, FaultRule, should_fire
from repro.core.runlog import (
    EVENT_COMPLETED, EVENT_DISPATCHED, RunJournal, RunNotFound, gc_runs,
    latest_run_id, list_runs, quarantine_key, quarantine_lookup,
)

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


def make_files(count: int, tag: str = "") -> dict[str, str]:
    """``count`` distinct single-overflow C files (distinct content, so
    no two deduplicate into one work key)."""
    files = {}
    for i in range(count):
        files[f"file{i:02d}.c"] = (
            "#include <stdio.h>\n#include <string.h>\n"
            f"void f{i}(const char *s) {{\n"
            f"    char buf[{8 + i}];\n"
            "    strcpy(buf, s);\n"
            f'    printf("{i}{tag} %s\\n", buf);\n'
            "}\n")
    return files


def make_program(count: int = 3, tag: str = "") -> SourceProgram:
    return SourceProgram(f"runlog-prog{tag}", make_files(count, tag))


def report_essence(result):
    """Everything that must be byte-identical across a resume (wall
    times legitimately differ)."""
    return {r.filename: (r.status, r.final_text, r.parses,
                         [(d.stage, d.kind) for d in r.diagnostics])
            for r in result.reports}


# ------------------------------------------------------------ round trip


class TestJournalRoundTrip:
    def test_journaled_batch_writes_run_dir(self, tmp_path):
        program = make_program(3)
        journal = RunJournal("run-a", root=str(tmp_path / "runs"))
        journal.begin(program, {"validate": False})
        result = apply_batch(program, jobs=1, validate=False,
                             journal=journal)
        assert all(r.status == "ok" for r in result.reports)

        manifest = json.loads(Path(journal.manifest_path).read_text())
        assert manifest["run_id"] == "run-a"
        assert sorted(manifest["files"]) == sorted(program.files)
        assert manifest["settings"] == {"validate": False}

        events = journal.events()
        dispatched = [e["file"] for e in events
                      if e["event"] == EVENT_DISPATCHED]
        completed = [e["file"] for e in events
                     if e["event"] == EVENT_COMPLETED]
        assert sorted(dispatched) == sorted(program.files)
        assert sorted(completed) == sorted(program.files)
        # WAL ordering: every completion's dispatch precedes it.
        for name in program.files:
            assert events.index(
                next(e for e in events if e["event"] == EVENT_DISPATCHED
                     and e["file"] == name)) < events.index(
                next(e for e in events if e["event"] == EVENT_COMPLETED
                     and e["file"] == name))

        # Result pointers and audit records exist for every file.
        assert len(os.listdir(journal.results_dir)) == 3
        for name in program.files:
            audit = journal.read_audit(name)
            assert audit["status"] == "ok"
            assert audit["diff"]            # strcpy fix → non-empty diff
            assert audit["parses"] is True

    def test_resume_completed_run_replays_everything(self, tmp_path):
        program = make_program(3)
        root = str(tmp_path / "runs")
        first = RunJournal("run-a", root=root)
        first.begin(program, {"validate": False})
        clean = apply_batch(program, jobs=1, validate=False, journal=first)
        events_before = len(first.events())

        resumed = RunJournal("run-a", root=root)
        resumed.load()
        assert resumed.resumed
        replay = apply_batch(program, jobs=1, validate=False,
                             journal=resumed)
        assert replay.stats.replayed == 3
        assert report_essence(replay) == report_essence(clean)
        # Replayed files are not re-journaled: the WAL does not grow.
        assert len(resumed.events()) == events_before

    def test_resume_unknown_run_raises(self, tmp_path):
        journal = RunJournal("nope", root=str(tmp_path / "runs"))
        with pytest.raises(RunNotFound):
            journal.load()

    def test_torn_final_line_tolerated(self, tmp_path):
        program = make_program(2)
        root = str(tmp_path / "runs")
        journal = RunJournal("run-torn", root=root)
        journal.begin(program, {})
        apply_batch(program, jobs=1, validate=False, journal=journal)
        with open(journal.journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "comple')       # crash cut a write short
        reopened = RunJournal("run-torn", root=root)
        reopened.load()
        assert sorted(reopened.completed) == sorted(program.files)
        assert all(kind == EVENT_COMPLETED
                   for kind, _key in reopened.completed.values())

    def test_content_change_recomputes_only_edited_file(self, tmp_path):
        program = make_program(3)
        root = str(tmp_path / "runs")
        journal = RunJournal("run-a", root=root)
        journal.begin(program, {})
        apply_batch(program, jobs=1, validate=False, journal=journal)

        edited_files = dict(program.files)
        edited_files["file01.c"] = edited_files["file01.c"].replace(
            '"1 %s\\n"', '"one %s\\n"')
        edited = SourceProgram(program.name, edited_files)
        resumed = RunJournal("run-a", root=root)
        resumed.load()
        replay = apply_batch(edited, jobs=1, validate=False,
                             journal=resumed)
        assert replay.stats.replayed == 2       # the edit missed its key
        assert '"one %s\\n"' in next(
            r.final_text for r in replay.reports
            if r.filename == "file01.c")


# --------------------------------------------------------- crash resume


DRIVER = """\
import json, os, sys
sys.path.insert(0, {src!r})
os.environ["REPRO_CACHE_DIR"] = {cache!r}
if {faults!r}:
    os.environ["REPRO_FAULTS"] = {faults!r}
from repro.core.batch import SourceProgram, apply_batch
from repro.core.runlog import RunJournal
program = SourceProgram("crash-prog", json.loads({files_json!r}))
journal = RunJournal({run_id!r}, root={runroot!r})
if {resume!r}:
    journal.load()
journal.begin(program, {{"validate": False}})
result = apply_batch(program, jobs={jobs}, validate=False,
                     journal=journal)
record = {{"replayed": result.stats.replayed,
           "reports": {{r.filename: [r.status, r.final_text, r.parses,
                                     [[d.stage, d.kind]
                                      for d in r.diagnostics]]
                        for r in result.reports}}}}
with open({out!r}, "w") as fh:
    json.dump(record, fh)
"""


def run_driver(tmp_path, name, files, *, jobs, cache, runroot,
               run_id=None, resume=False, faults=None):
    out = str(tmp_path / f"{name}.json")
    script = DRIVER.format(src=REPO_SRC, cache=cache, faults=faults,
                           files_json=json.dumps(files), run_id=run_id,
                           runroot=runroot, resume=resume, jobs=jobs,
                           out=out)
    env = {**os.environ}
    env.pop("REPRO_FAULTS", None)
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, text=True, timeout=300)
    return proc, out


def pick_kill_rate(names, stage):
    """A deterministic fault rate whose first firing file is not the
    batch's first file (so a crashed run has completions to replay)."""
    ordered = sorted(names)
    for rate in (0.15, 0.3, 0.5, 0.7, 0.9):
        rule = FaultRule(stage, "parent-kill", rate)
        fired = [n for n in ordered if should_fire(rule, n)]
        if fired and ordered.index(fired[0]) > 0:
            return rate, fired
    return 1.0, ordered


class TestCrashResume:
    COUNT = 6

    @pytest.mark.parametrize("jobs,warm", [(1, True), (4, False)])
    def test_parent_kill_then_resume_is_byte_identical(
            self, tmp_path, jobs, warm):
        """A run killed mid-journal-append resumes byte-identically —
        at jobs 1 (warm store) and jobs 4 (cold store)."""
        files = make_files(self.COUNT, tag=f"-j{jobs}")
        rate, fired = pick_kill_rate(files, "journal")
        runroot = str(tmp_path / "runs")
        crash_cache = str(tmp_path / "cache-crash")

        clean_proc, clean_out = run_driver(
            tmp_path, "clean", files, jobs=jobs,
            cache=str(tmp_path / "cache-clean"),
            runroot=str(tmp_path / "runs-clean"))
        assert clean_proc.returncode == 0, clean_proc.stderr

        crash_proc, _ = run_driver(
            tmp_path, "crash", files, jobs=jobs, cache=crash_cache,
            runroot=runroot, run_id="crash-run",
            faults=f"journal:parent-kill:{rate}")
        assert crash_proc.returncode == KILL_EXIT_CODE, crash_proc.stderr

        # What the WAL actually captured before the kill: the resumed
        # run must replay exactly these and recompute the rest.
        crashed = RunJournal("crash-run", root=runroot)
        crashed.load()
        journaled = len(crashed.completed)
        # The journal-stage kill fires *between* the result publish and
        # the WAL append of the first fired file, so that file is never
        # journaled — completions stop strictly before it.
        assert journaled == sorted(files).index(fired[0])

        resume_cache = crash_cache if warm \
            else str(tmp_path / "cache-cold")
        resume_proc, resume_out = run_driver(
            tmp_path, "resume", files, jobs=jobs, cache=resume_cache,
            runroot=runroot, run_id="crash-run", resume=True)
        assert resume_proc.returncode == 0, resume_proc.stderr

        clean = json.load(open(clean_out))
        resumed = json.load(open(resume_out))
        assert resumed["replayed"] == journaled
        assert resumed["reports"] == clean["reports"]
        assert all(status == "ok"
                   for status, *_ in resumed["reports"].values())

    def test_dispatch_kill_then_resume_is_byte_identical(self, tmp_path):
        """Same recovery when the parent dies at the dispatch record —
        a different crash point in the file lifecycle."""
        files = make_files(self.COUNT, tag="-dispatch")
        rate, _fired = pick_kill_rate(files, "dispatch")
        runroot = str(tmp_path / "runs")
        cache = str(tmp_path / "cache")

        clean_proc, clean_out = run_driver(
            tmp_path, "clean", files, jobs=1,
            cache=str(tmp_path / "cache-clean"),
            runroot=str(tmp_path / "runs-clean"))
        assert clean_proc.returncode == 0, clean_proc.stderr

        crash_proc, _ = run_driver(
            tmp_path, "crash", files, jobs=1, cache=cache,
            runroot=runroot, run_id="crash-run",
            faults=f"dispatch:parent-kill:{rate}")
        assert crash_proc.returncode == KILL_EXIT_CODE, crash_proc.stderr

        crashed = RunJournal("crash-run", root=runroot)
        crashed.load()
        journaled = len(crashed.completed)

        resume_proc, resume_out = run_driver(
            tmp_path, "resume", files, jobs=1, cache=cache,
            runroot=runroot, run_id="crash-run", resume=True)
        assert resume_proc.returncode == 0, resume_proc.stderr
        clean = json.load(open(clean_out))
        resumed = json.load(open(resume_out))
        assert resumed["replayed"] == journaled
        assert resumed["reports"] == clean["reports"]


# ----------------------------------------------------------- quarantine


class TestQuarantine:
    def _run(self, program, run_id, root, jobs=1):
        journal = RunJournal(run_id, root=root)
        journal.begin(program, {})
        return apply_batch(program, jobs=jobs, validate=False,
                           journal=journal)

    def test_poison_file_quarantined_then_skipped(
            self, fresh_store, tmp_path, monkeypatch):
        """A file whose worker keeps dying is quarantined by the first
        journaled run and skipped — shipped verbatim, no retry budget
        spent — by the next, until its content changes."""
        monkeypatch.setenv("REPRO_FAULTS", "slr:kill:1.0")
        root = str(tmp_path / "runs")
        program = make_program(2, tag="-poison")

        first = self._run(program, "q1", root)
        assert all(r.status == STATUS_FAILED for r in first.reports)
        assert first.stats.quarantined == 0
        # The second run finds the quarantine entries before dispatch.
        second = self._run(program, "q2", root)
        assert all(r.status == STATUS_QUARANTINED
                   for r in second.reports)
        assert second.stats.quarantined == 2
        for report in second.reports:
            assert report.wall_time == 0.0          # no budget spent
            diag = report.diagnostics[0]
            assert diag.kind == "quarantined"
            assert "run q1" in diag.message

    def test_content_change_releases_quarantine(
            self, fresh_store, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "slr:kill:1.0")
        root = str(tmp_path / "runs")
        program = make_program(1, tag="-release")
        self._run(program, "q1", root)

        edited = SourceProgram(program.name, {
            name: text + "/* edited */\n"
            for name, text in program.files.items()})
        third = self._run(edited, "q3", root)
        # Edited content re-enters the pipeline (and fails again under
        # the still-armed fault) instead of being skipped.
        assert third.stats.quarantined == 0
        assert all(r.status == STATUS_FAILED for r in third.reports)

    def test_quarantine_disabled_by_knob(
            self, fresh_store, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "slr:kill:1.0")
        root = str(tmp_path / "runs")
        program = make_program(1, tag="-knob")
        self._run(program, "q1", root)

        monkeypatch.setenv("REPRO_QUARANTINE", "0")
        second = self._run(program, "q2", root)
        assert second.stats.quarantined == 0
        assert all(r.status == STATUS_FAILED for r in second.reports)

    def test_healthy_batch_records_no_quarantine(
            self, fresh_store, tmp_path):
        from repro.core.session import get_session

        program = make_program(2, tag="-healthy")
        result = self._run(program, "q1", str(tmp_path / "runs"))
        assert all(r.status == "ok" for r in result.reports)
        session = get_session()
        for name, text in program.files.items():
            pp_text = session.preprocess(text, name).text
            assert quarantine_lookup(pp_text) is None


# ------------------------------------------------------------ disk full


class TestDiskFull:
    def test_journal_disk_full_degrades_warn_once(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "journal:disk-full:1.0")
        program = make_program(2, tag="-df")
        journal = RunJournal("dfull", root=str(tmp_path / "runs"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            journal.begin(program, {})
            result = apply_batch(program, jobs=1, validate=False,
                                 journal=journal)
        assert all(r.status == "ok" for r in result.reports)
        assert not os.path.exists(journal.journal_path)
        texts = [str(w.message) for w in caught]
        assert any("run journal" in t for t in texts)

    def test_store_disk_full_still_completes(
            self, fresh_store, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS", "store:disk-full:1.0")
        program = make_program(2, tag="-sdf")
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            result = apply_batch(program, jobs=1, validate=False)
        assert all(r.status == "ok" for r in result.reports)


# -------------------------------------------------------------- registry


class TestRunRegistry:
    def _make_run(self, root, run_id, count=1):
        program = make_program(count, tag=f"-{run_id}")
        journal = RunJournal(run_id, root=root)
        journal.begin(program, {})
        apply_batch(program, jobs=1, validate=False, journal=journal)

    def test_list_and_latest(self, tmp_path):
        root = str(tmp_path / "runs")
        self._make_run(root, "20260101-000000-aaaaaa")
        self._make_run(root, "20260102-000000-bbbbbb")
        runs = list_runs(root)
        assert [r["run_id"] for r in runs] == [
            "20260101-000000-aaaaaa", "20260102-000000-bbbbbb"]
        assert all(r["completed"] == 1 for r in runs)
        assert latest_run_id(root) == "20260102-000000-bbbbbb"

    def test_gc_keep(self, tmp_path):
        root = str(tmp_path / "runs")
        for run_id in ("r1", "r2", "r3"):
            self._make_run(root, run_id)
        summary = gc_runs(keep=1, root=root)
        assert summary["removed_runs"] == 2
        assert summary["freed_bytes"] > 0
        assert [r["run_id"] for r in list_runs(root)] == ["r3"]

    def test_gc_defaults_remove_nothing(self, tmp_path):
        root = str(tmp_path / "runs")
        self._make_run(root, "r1")
        assert gc_runs(root=root) == {"removed_runs": 0,
                                      "freed_bytes": 0}
        assert len(list_runs(root)) == 1


# ------------------------------------------------------------------- CLI


def run_cli(argv):
    from repro.cli import main
    out, err = io.StringIO(), io.StringIO()
    old_out, old_err = sys.stdout, sys.stderr
    sys.stdout, sys.stderr = out, err
    try:
        code = main([str(a) for a in argv])
    finally:
        sys.stdout, sys.stderr = old_out, old_err
    return code, out.getvalue(), err.getvalue()


class TestRunsCli:
    @pytest.fixture(autouse=True)
    def _run_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))

    def _journaled_run(self, run_id="cli-run"):
        program = make_program(2, tag="-cli")
        journal = RunJournal(run_id)
        journal.begin(program, {"validate": False})
        apply_batch(program, jobs=1, validate=False, journal=journal)
        return journal

    def test_list_empty(self):
        code, out, _ = run_cli(["runs", "list"])
        assert code == 0
        assert "no runs under" in out

    def test_list_and_show(self):
        self._journaled_run()
        code, out, _ = run_cli(["runs", "list"])
        assert code == 0
        assert "cli-run" in out

        code, out, _ = run_cli(["runs", "show", "cli-run"])
        assert code == 0
        assert "run cli-run" in out
        assert "file00.c: ok" in out
        assert "diff:" in out           # hint line for the shipped fix

        code, out, _ = run_cli(["runs", "show", "latest", "--diff"])
        assert code == 0
        assert "+" in out               # the unified diff is printed

    def test_show_single_file(self):
        self._journaled_run()
        code, out, _ = run_cli(["runs", "show", "cli-run",
                                "--file", "file01.c"])
        assert code == 0
        assert "file01.c: ok" in out
        assert "file00.c" not in out

    def test_show_unknown_run(self):
        code, _, err = run_cli(["runs", "show", "missing"])
        assert code == 2
        assert "error:" in err

    def test_gc_requires_opt_in(self):
        self._journaled_run()
        code, _, err = run_cli(["runs", "gc"])
        assert code == 2
        assert "--max-age-days" in err

        code, out, _ = run_cli(["runs", "gc", "--keep", "0"])
        assert code == 0
        assert "removed 1 run(s)" in out
        code, out, _ = run_cli(["runs", "list"])
        assert "no runs under" in out


class TestBatchCliJournal:
    @pytest.fixture(autouse=True)
    def _run_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))

    @pytest.fixture
    def batch_dir(self, tmp_path):
        target = tmp_path / "prog"
        target.mkdir()
        for name, text in make_files(2, tag="-bcli").items():
            (target / name).write_text(text)
        return target

    def test_batch_prints_resume_hint(self, fresh_store, batch_dir,
                                      tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs2"))
        code, _, err = run_cli(["batch", batch_dir, "--run-id", "cli-batch"])
        assert code == 0
        assert "run cli-batch: journaled to" in err
        assert "--resume cli-batch" in err

    def test_batch_resume_replays(self, fresh_store, batch_dir,
                                  tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs2"))
        code, _, _ = run_cli(["batch", batch_dir,
                              "--run-id", "cli-batch"])
        assert code == 0
        code, _, err = run_cli(["batch", batch_dir,
                                "--resume", "cli-batch"])
        assert code == 0
        assert "(2 replayed, 0 quarantined)" in err

    def test_no_run_log_disables_journaling(self, fresh_store, batch_dir,
                                            monkeypatch):
        # --no-run-log sets REPRO_RUN_LOG in-process; monkeypatch (set
        # before the call) restores the outer environment afterwards.
        monkeypatch.setenv("REPRO_RUN_LOG", "1")
        code, _, err = run_cli(["batch", batch_dir,
                                "--no-run-log"])
        assert code == 0
        assert "journaled to" not in err

    def test_resume_without_journaling_is_an_error(
            self, fresh_store, batch_dir, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_LOG", "1")
        code, _, err = run_cli(["batch", batch_dir, "--no-run-log",
                                "--resume", "latest"])
        assert code == 2
        assert "--resume requires run journaling" in err


# -------------------------------------------------------- retry backoff


class TestRetryBackoff:
    def test_exponential_and_capped(self):
        waits = [retry_backoff(attempt, "task.c")
                 for attempt in range(1, 12)]
        assert waits == sorted(waits)               # monotone
        assert waits[0] >= RETRY_BACKOFF_BASE_S * 0.5
        assert waits[0] < RETRY_BACKOFF_BASE_S * 1.5
        assert waits[-1] == RETRY_BACKOFF_CAP_S     # hard cap reached
        assert all(w <= RETRY_BACKOFF_CAP_S for w in waits)

    def test_jitter_is_deterministic_per_subject(self):
        assert retry_backoff(2, "a.c") == retry_backoff(2, "a.c")
        # Different subjects de-synchronize (distinct jitter draws).
        draws = {retry_backoff(1, f"f{i}.c") for i in range(8)}
        assert len(draws) > 1

    def test_quarantine_key_tracks_content(self):
        assert quarantine_key("abc") == quarantine_key("abc")
        assert quarantine_key("abc") != quarantine_key("abd")
