"""Unit tests for the C lexer."""

import pytest

from repro.cfront.lexer import Lexer, splice_lines, tokenize
from repro.cfront.source import LexError, SourceFile
from repro.cfront.tokens import (
    CHAR_CONST, EOF, HASH, ID, KEYWORD, NEWLINE, NUMBER, PUNCT, STRING,
    Token, tokens_to_text,
)


def kinds(text, **kwargs):
    return [(t.kind, t.text) for t in tokenize(text, **kwargs)
            if t.kind != EOF]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        toks = kinds("int foo _bar x123")
        assert toks == [(KEYWORD, "int"), (ID, "foo"), (ID, "_bar"),
                        (ID, "x123")]

    def test_all_c99_keywords_recognized(self):
        for kw in ("auto", "break", "case", "char", "const", "continue",
                   "default", "do", "double", "else", "enum", "extern",
                   "float", "for", "goto", "if", "inline", "int", "long",
                   "register", "restrict", "return", "short", "signed",
                   "sizeof", "static", "struct", "switch", "typedef",
                   "union", "unsigned", "void", "volatile", "while"):
            assert kinds(kw) == [(KEYWORD, kw)]

    def test_decimal_hex_octal_numbers(self):
        toks = kinds("42 0x1F 0755 0")
        assert [t[1] for t in toks] == ["42", "0x1F", "0755", "0"]
        assert all(t[0] == NUMBER for t in toks)

    def test_float_numbers(self):
        toks = kinds("3.14 1e10 2.5e-3 1.f .5")
        assert all(t[0] == NUMBER for t in toks)

    def test_integer_suffixes(self):
        toks = kinds("1U 2L 3UL 4LL 5ull")
        assert all(t[0] == NUMBER for t in toks)

    def test_char_constants(self):
        toks = kinds(r"'a' '\n' '\0' '\x41' '\\'")
        assert all(t[0] == CHAR_CONST for t in toks)

    def test_string_literals(self):
        toks = kinds(r'"hello" "with \"escape\"" ""')
        assert all(t[0] == STRING for t in toks)
        assert toks[0][1] == '"hello"'

    def test_multibyte_punctuators_win(self):
        toks = kinds("a <<= b >>= c ... -> ++ -- << >>")
        texts = [t[1] for t in toks if t[0] == PUNCT]
        assert texts == ["<<=", ">>=", "...", "->", "++", "--", "<<", ">>"]

    def test_adjacent_operators_do_not_merge(self):
        toks = kinds("a+++b")      # a ++ + b, maximal munch
        texts = [t[1] for t in toks]
        assert texts == ["a", "++", "+", "b"]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == [(ID, "a"), (ID, "b")]

    def test_block_comment_skipped(self):
        assert kinds("a /* x */ b") == [(ID, "a"), (ID, "b")]

    def test_multiline_block_comment(self):
        assert kinds("a /* 1\n2\n3 */ b") == [(ID, "a"), (ID, "b")]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_space_before_flag(self):
        toks = tokenize("a b")
        assert not toks[0].space_before
        assert toks[1].space_before

    def test_comment_sets_space_before(self):
        toks = tokenize("a/*x*/b")
        assert toks[1].space_before


class TestPositions:
    def test_line_and_column(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_offsets_roundtrip(self):
        text = "int x = 42;"
        for tok in tokenize(text):
            if tok.kind != EOF:
                assert text[tok.offset:tok.end] == tok.text

    def test_extent(self):
        tok = tokenize("hello")[0]
        assert tok.extent.start == 0
        assert tok.extent.end == 5


class TestPreprocessorMode:
    def test_newlines_kept(self):
        toks = tokenize("a\nb\n", preprocessor_mode=True)
        assert [t.kind for t in toks] == [ID, NEWLINE, ID, NEWLINE, EOF]

    def test_hash_at_line_start(self):
        toks = tokenize("#define X\n", preprocessor_mode=True)
        assert toks[0].kind == HASH

    def test_hash_mid_line_is_punct(self):
        toks = tokenize("a # b\n", preprocessor_mode=True)
        assert toks[1].kind == PUNCT

    def test_final_newline_synthesized(self):
        toks = tokenize("a", preprocessor_mode=True)
        assert toks[-2].kind == NEWLINE


class TestLineSplicing:
    def test_backslash_newline_removed(self):
        assert splice_lines("a\\\nb") == "ab"

    def test_windows_line_endings(self):
        assert splice_lines("a\\\r\nb") == "ab"

    def test_spliced_macro_lexes_as_one_line(self):
        toks = tokenize("#define X 1 + \\\n 2\n", preprocessor_mode=True)
        newlines = [t for t in toks if t.kind == NEWLINE]
        assert len(newlines) == 1


class TestTokensToText:
    def test_roundtrip_simple(self):
        toks = [t for t in tokenize("a + b") if t.kind != EOF]
        assert tokens_to_text(toks).strip() == "a + b"

    def test_separator_between_words(self):
        toks = [Token(ID, "int"), Token(ID, "x")]
        assert tokens_to_text(toks) == "int x"

    def test_separator_prevents_pasting_punct(self):
        toks = [Token(PUNCT, "+"), Token(PUNCT, "+")]
        assert tokens_to_text(toks) == "+ +"

    def test_no_spurious_separator(self):
        toks = [Token(ID, "f"), Token(PUNCT, "("), Token(PUNCT, ")")]
        assert tokens_to_text(toks) == "f()"


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("int $x;")

    def test_error_carries_location(self):
        try:
            tokenize("a\n  $")
        except LexError as exc:
            assert exc.line == 2
            assert exc.col == 3
        else:
            pytest.fail("expected LexError")


class TestSourceFile:
    def test_line_col_mapping(self):
        src = SourceFile("t.c", "ab\ncd\nef")
        assert src.line_col(0) == (1, 1)
        assert src.line_col(3) == (2, 1)
        assert src.line_col(7) == (3, 2)

    def test_line_text(self):
        src = SourceFile("t.c", "ab\ncd")
        assert src.line_text(1) == "ab"
        assert src.line_text(2) == "cd"
        assert src.line_text(99) == ""

    def test_line_count(self):
        assert SourceFile("t.c", "a\nb\nc").line_count == 3
