"""Union semantics and byte-level type punning in the VM."""

from .helpers import run

P = "#include <stdio.h>\n#include <string.h>\n"


def out(src: str, **kwargs) -> str:
    result = run(P + src, **kwargs)
    assert result.ok, f"unexpected fault: {result.fault_detail}"
    return result.stdout_text


class TestUnions:
    def test_members_share_storage(self):
        assert out("""
        union box { int i; unsigned char bytes[4]; };
        int main(void){
            union box b;
            b.i = 0x01020304;
            printf("%d %d %d %d\\n", b.bytes[0], b.bytes[1],
                   b.bytes[2], b.bytes[3]);
            return 0; }""") == "4 3 2 1\n"     # little-endian

    def test_write_byte_read_int(self):
        assert out("""
        union box { unsigned int u; unsigned char bytes[4]; };
        int main(void){
            union box b;
            b.u = 0;
            b.bytes[1] = 1;
            printf("%u\\n", b.u);
            return 0; }""") == "256\n"

    def test_union_size_is_largest_member(self):
        assert out("""
        union mixed { char c; long l; char buf[13]; };
        int main(void){
            printf("%d\\n", (int)sizeof(union mixed) >= 13);
            return 0; }""") == "1\n"

    def test_union_in_struct(self):
        assert out("""
        struct tagged {
            int kind;
            union { int number; char text[8]; } payload;
        };
        int main(void){
            struct tagged v;
            v.kind = 1;
            strcpy(v.payload.text, "seven");
            printf("%d %s\\n", v.kind, v.payload.text);
            v.kind = 0;
            v.payload.number = 7;
            printf("%d %d\\n", v.kind, v.payload.number);
            return 0; }""") == "1 seven\n0 7\n"

    def test_union_overflow_still_detected(self):
        result = run(P + """
        union box { char small[4]; long wide; };
        int main(void){
            union box b;
            /* The union is 8 bytes (long); writing 9 must fault. */
            memset(&b, 'x', 9);
            return 0; }""")
        assert result.fault == "buffer-overflow"


class TestTypePunning:
    def test_int_bytes_via_char_pointer(self):
        assert out("""
        int main(void){
            unsigned int v = 0xAABBCCDD;
            unsigned char *p = (unsigned char *)&v;
            printf("%x %x %x %x\\n", p[0], p[1], p[2], p[3]);
            return 0; }""") == "dd cc bb aa\n"

    def test_memcpy_between_types(self):
        assert out("""
        int main(void){
            int src = 1234567;
            int dst = 0;
            memcpy(&dst, &src, sizeof(int));
            printf("%d\\n", dst);
            return 0; }""") == "1234567\n"

    def test_pointer_roundtrip_through_memory(self):
        assert out("""
        int main(void){
            char buf[8] = "target";
            char *p = buf;
            char **holder = &p;
            char *back = *holder;
            printf("%s\\n", back);
            return 0; }""") == "target\n"

    def test_struct_bytes_zeroing(self):
        assert out("""
        struct pair { int a; int b; };
        int main(void){
            struct pair v;
            v.a = 5;
            v.b = 6;
            memset(&v, 0, sizeof(v));
            printf("%d %d\\n", v.a, v.b);
            return 0; }""") == "0 0\n"
