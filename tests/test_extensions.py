"""Tests for the optional extensions beyond the paper's baseline."""

from repro.core.bufferlen import BufferLength, BufferLengthAnalyzer, \
    LengthFailure
from repro.core.slr import SafeLibraryReplacement

from .helpers import find_calls, parse_and_analyze, pp, run

PRELUDE = ("#include <stdio.h>\n#include <string.h>\n"
           "#include <stdlib.h>\n")

TERNARY_PROGRAM = PRELUDE + """
int main(void) {
    int big = 0;
    char *buf = big ? malloc(128) : malloc(8);
    strcpy(buf, "longer than the small branch");
    printf("%s\\n", buf);
    free(buf);
    return 0;
}
"""


class TestTernaryAllocFix:
    """Paper §IV-B failure 4: "This is an easy structural fix. We ignored
    it because it happened only once" — implemented behind a flag."""

    def _length(self, fix: bool):
        unit, text, pa = parse_and_analyze(TERNARY_PROGRAM)
        call = find_calls(unit, "strcpy")[0]
        analyzer = BufferLengthAnalyzer(pa, text,
                                        fix_ternary_alloc=fix)
        return analyzer.get_buffer_length(call.args[0])

    def test_default_still_fails_like_the_paper(self):
        result = self._length(fix=False)
        assert isinstance(result, LengthFailure)
        assert result.reason == "ternary-alloc"

    def test_flag_computes_heap_length(self):
        result = self._length(fix=True)
        assert isinstance(result, BufferLength)
        assert result.render() == "malloc_usable_size(buf)"

    def test_end_to_end_fixes_the_overflow(self):
        text = pp(TERNARY_PROGRAM)
        before = run(text, preprocess=False)
        assert before.fault == "buffer-overflow"
        result = SafeLibraryReplacement(text, "t.c",
                                        fix_ternary_alloc=True).run()
        assert result.transformed_count == 1
        after = run(result.new_text, preprocess=False)
        assert after.ok

    def test_mixed_ternary_still_rejected(self):
        # Only one branch allocates: size genuinely unknowable.
        source = PRELUDE + """
        int main(void) {
            char fallback[4];
            int big = 0;
            char *buf = big ? malloc(128) : fallback;
            strcpy(buf, "data");
            return 0;
        }
        """
        unit, text, pa = parse_and_analyze(source)
        call = find_calls(unit, "strcpy")[0]
        analyzer = BufferLengthAnalyzer(pa, text,
                                        fix_ternary_alloc=True)
        result = analyzer.get_buffer_length(call.args[0])
        assert isinstance(result, LengthFailure)

    def test_casted_branches_accepted(self):
        source = PRELUDE + """
        int main(void) {
            int big = 1;
            char *buf = big ? (char *)malloc(64) : (char *)malloc(16);
            strcpy(buf, "fits in either after the check");
            printf("%s\\n", buf);
            return 0;
        }
        """
        text = pp(source)
        result = SafeLibraryReplacement(text, "t.c",
                                        fix_ternary_alloc=True).run()
        assert result.transformed_count == 1
        assert "malloc_usable_size(buf)" in result.new_text

    def test_corpus_totals_unaffected_by_default(self):
        """The flag is off by default, so Table V keeps the paper's exact
        ternary-alloc failure."""
        from repro.eval.table5 import compute_table5
        result = compute_table5(execute=False)
        reasons: dict[str, int] = {}
        for row in result.rows:
            for reason, count in row.failure_reasons.items():
                reasons[reason] = reasons.get(reason, 0) + count
        assert reasons.get("ternary-alloc") == 1
