"""Tests for the corpus programs and the batch driver over them."""

import pytest

from repro.core.batch import apply_batch
from repro.corpus import build_all
from repro.eval.table6 import classify_outcomes
from repro.vm.interp import run_program_files


@pytest.fixture(scope="module")
def corpus():
    return build_all()


@pytest.fixture(scope="module")
def batches(corpus):
    return {name: apply_batch(program)
            for name, program in corpus.items()}


class TestCorpusPrograms:
    def test_four_programs(self, corpus):
        assert set(corpus) == {"zlib", "libpng", "GMP", "libtiff"}

    def test_all_test_suites_pass(self, corpus):
        for name, program in corpus.items():
            result = run_program_files(program.preprocess().files)
            assert result.ok, (name, result.fault_detail)
            assert b"ALL TESTS PASSED" in result.stdout, name

    def test_programs_have_multiple_files(self, corpus):
        for program in corpus.values():
            assert program.file_count >= 4

    def test_deterministic_output(self, corpus):
        program = corpus["GMP"]
        first = run_program_files(program.preprocess().files)
        second = run_program_files(program.preprocess().files)
        assert first.stdout == second.stdout

    def test_zlib_roundtrip_correct(self, corpus):
        result = run_program_files(corpus["zlib"].preprocess().files)
        assert b"same=1" in result.stdout
        assert b"gzname=archive.gz" in result.stdout

    def test_gmp_arithmetic_correct(self, corpus):
        result = run_program_files(corpus["GMP"].preprocess().files)
        assert b"sum=1000000000 prod=7000000000" in result.stdout
        assert b"parsed=123456789123 consumed=12" in result.stdout

    def test_png_filters_roundtrip(self, corpus):
        result = run_program_files(corpus["libpng"].preprocess().files)
        assert b"filters ok=1" in result.stdout

    def test_tiff_byteorder(self, corpus):
        result = run_program_files(corpus["libtiff"].preprocess().files)
        assert b"u16be=1234 u16le=3412 u32be=12345678" in result.stdout


class TestBatchTransformation:
    def test_behaviour_preserved_after_both_transforms(self, corpus,
                                                       batches):
        for name, batch in batches.items():
            before = run_program_files(corpus[name].preprocess().files)
            after = run_program_files(batch.transformed_program.files)
            assert after.ok, (name, after.fault_detail)
            assert before.stdout == after.stdout, name

    def test_all_files_reparse(self, batches):
        for name, batch in batches.items():
            assert batch.all_parse, name

    def test_paper_slr_totals(self, corpus):
        total_sites = 0
        total_done = 0
        for program in corpus.values():
            batch = apply_batch(program, run_slr=True, run_str=False)
            total_sites += batch.candidates("SLR")
            total_done += batch.transformed("SLR")
        assert total_sites == 317
        assert total_done == 259

    def test_paper_str_totals(self, corpus):
        identified = replaced = failed = 0
        for program in corpus.values():
            batch = apply_batch(program, run_slr=False, run_str=True)
            outcomes = [o for r in batch.reports if r.str_
                        for o in r.str_.outcomes]
            c1, c2, c3 = classify_outcomes(outcomes)
            identified += c1
            replaced += c2
            failed += c3
        assert (identified, replaced, failed) == (296, 237, 59)

    def test_gmp_set_str_gets_option1_clamp(self, corpus):
        """The paper's own GMP memcpy example receives the Option-1
        rewrite (length variable assigned before the call)."""
        batch = apply_batch(corpus["GMP"], run_slr=True, run_str=False)
        set_str = next(r for r in batch.reports
                       if r.filename == "set_str.c")
        assert ("numlen = malloc_usable_size(num) > numlen ? numlen : "
                "malloc_usable_size(num);") in set_str.final_text
        assert "memcpy(num, str, numlen);" in set_str.final_text


class TestSitePlanIntegrity:
    def test_slr_failure_singletons(self, corpus):
        """§IV-B: aliased-struct, array-of-buffers, and ternary-alloc
        failures each occur exactly once across the corpus."""
        reasons: dict[str, int] = {}
        for program in corpus.values():
            batch = apply_batch(program, run_slr=True, run_str=False)
            for reason, count in batch.failures_by_reason("SLR").items():
                reasons[reason] = reasons.get(reason, 0) + count
        assert reasons["aliased-struct"] == 1
        assert reasons["array-of-buffers"] == 1
        assert reasons["ternary-alloc"] == 1

    def test_str_failures_all_interprocedural(self, corpus):
        from repro.eval.common import STR_INTERPROC_FAIL_REASONS, \
            STR_STATIC_FAIL_REASONS
        for program in corpus.values():
            batch = apply_batch(program, run_slr=False, run_str=True)
            for report in batch.reports:
                if report.str_ is None:
                    continue
                for outcome in report.str_.outcomes:
                    if outcome.transformed:
                        continue
                    assert outcome.reason in (STR_STATIC_FAIL_REASONS
                                              | STR_INTERPROC_FAIL_REASONS)
