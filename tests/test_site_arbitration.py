"""Tests for per-site backend composition (PR 7).

Covers: the mixed-site fixture where site mode provably beats every
whole-file candidate, the degradation ladder back to the PR 6 file-mode
answer, conflict-aware edit merging (with per-site fallback), per-site
edit capture in both the base ``Transformation.run`` path and STR's
cluster rewriter, determinism across worker counts and cache states,
and the arbitration-layer bug fixes riding along (rejected-candidate
verdict summaries, profiler attribution of the judge, clean
unknown-backend errors from every entry point).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.backends import (
    CANDIDATE_ERROR, CANDIDATE_REJECTED, COMPOSITE_BACKEND, FixBackend,
    BackendCandidate, SiteDecision, UnknownBackendError,
    arbitrate_file, arbitration_from_env, register_backend,
    resolve_arbitration, resolve_backends, scoreboard, unregister_backend,
)
from repro.core.batch import SourceProgram, apply_batch
from repro.core.session import get_session, reset_session
from repro.core.transform import (
    SiteOutcome, TRANSFORMED, TransformResult,
)

from .helpers import pp

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
MIXED_FIXTURE = os.path.join(REPO_ROOT, "examples", "c", "mixed",
                             "mixed_sites.c")

OVERFLOW_SRC = """\
#include <stdio.h>
#include <string.h>
int main(void) {
    char buf[8];
    char line[64];
    if (fgets(line, 64, stdin)) {
        strcpy(buf, line);
        printf("got:%s", buf);
    }
    return 0;
}
"""


@pytest.fixture(autouse=True)
def _no_backend_env(monkeypatch):
    """Backend/arbitration selection comes from each test, never the
    outer environment."""
    monkeypatch.delenv("REPRO_BACKENDS", raising=False)
    monkeypatch.delenv("REPRO_ARBITRATION", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


def mixed_text() -> str:
    with open(MIXED_FIXTURE, encoding="utf-8") as handle:
        return handle.read()


def mixed_program() -> SourceProgram:
    return SourceProgram("mixed", {"mixed_sites.c": mixed_text()})


# ----------------------------------------------------------- mode knob

class TestArbitrationKnob:
    def test_resolve_defaults_to_file(self):
        assert resolve_arbitration(None) == "file"
        assert resolve_arbitration("") == "file"

    def test_resolve_modes(self):
        assert resolve_arbitration("file") == "file"
        assert resolve_arbitration(" site ") == "site"

    def test_resolve_unknown_raises_listing_modes(self):
        with pytest.raises(ValueError) as err:
            resolve_arbitration("global")
        assert "file" in str(err.value) and "site" in str(err.value)

    def test_env_knob(self, monkeypatch):
        assert arbitration_from_env() is None
        monkeypatch.setenv("REPRO_ARBITRATION", "site")
        assert arbitration_from_env() == "site"

    def test_site_mode_requires_backends(self):
        with pytest.raises(ValueError) as err:
            apply_batch(mixed_program(), arbitration="site")
        assert "backends" in str(err.value)


# ------------------------------------------------- per-site edit capture

class TestEditCapture:
    def test_slr_outcomes_carry_edits(self):
        from repro.core.slr import apply_slr
        result = apply_slr(pp(mixed_text()), "mixed_sites.c")
        transformed = [o for o in result.outcomes if o.transformed]
        assert transformed
        assert all(o.edits for o in transformed)
        assert result.finalize_edits          # support-decl insertion

    def test_str_cluster_edits_attached(self):
        from repro.core.strtransform import apply_str
        result = apply_str(pp(mixed_text()), "mixed_sites.c")
        transformed = [o for o in result.outcomes if o.transformed]
        assert transformed
        # Every cluster's edits land on exactly one representative.
        assert any(o.edits for o in transformed)

    def test_edits_replay_to_whole_file_when_single_site(self):
        """One transformed site + finalize edits reproduce the whole
        transform byte-for-byte."""
        from repro.core.backends import _build_site_text
        from repro.core.slr import apply_slr
        text = pp(OVERFLOW_SRC)
        result = apply_slr(text, "o.c")
        transformed = [o for o in result.outcomes if o.transformed]
        assert len(transformed) == 1
        rebuilt = _build_site_text(text, transformed[0].edits,
                                   result.finalize_edits)
        assert rebuilt == result.new_text

    def test_rewriter_edits_since(self):
        from repro.cfront.rewriter import Rewriter
        rewriter = Rewriter("abcdef")
        mark = rewriter.checkpoint()
        rewriter.replace_range(1, 3, "X")
        assert rewriter.edits_since(mark) == ((1, 3, "X"),)
        assert rewriter.edits_since(rewriter.checkpoint()) == ()
        with pytest.raises(ValueError):
            rewriter.edits_since(99)


# ---------------------------------------------------- the mixed fixture

class TestMixedFixture:
    """The acceptance fixture: two overflow sites no single backend can
    fix together — SLR handles the strcpy, STR the index loop."""

    def _arbitrate(self, mode):
        return arbitrate_file(pp(mixed_text()), "mixed_sites.c",
                              ("slr", "str"), arbitration=mode)

    def test_file_mode_winner_misses_a_site(self):
        _, _, validation, report = self._arbitrate("file")
        best = max(c.overflows_prevented for c in report.candidates)
        assert validation.overflows_prevented == best
        assert report.mode == "file"
        assert "mode" not in report.as_dict()      # PR 6 JSON unchanged

    def test_site_mode_prevents_strictly_more(self):
        _, _, file_validation, file_report = self._arbitrate("file")
        final, parses, validation, report = self._arbitrate("site")
        assert parses
        assert report.winner == COMPOSITE_BACKEND
        assert report.composite_status == "shipped"
        assert validation.semantics_changed == 0
        best_whole_file = max(c.overflows_prevented
                              for c in file_report.candidates)
        assert validation.overflows_prevented > best_whole_file
        # Both backends contribute composed sites.
        winners = report.site_winner_counts()
        assert winners.get("slr", 0) >= 1
        assert winners.get("str", 0) >= 1
        assert final != pp(mixed_text())

    def test_site_decisions_recorded(self):
        *_, report = self._arbitrate("site")
        assert report.sites
        composed = [d for d in report.sites if d.composed]
        assert {d.winner for d in composed} == {"slr", "str"}
        for decision in composed:
            assert decision.site == (f"{decision.function}:"
                                     f"{decision.line}:{decision.target}")

    def test_default_mode_is_byte_identical_to_explicit_file(self):
        text = pp(mixed_text())
        default = arbitrate_file(text, "mixed_sites.c", ("slr", "str"))
        explicit = arbitrate_file(text, "mixed_sites.c", ("slr", "str"),
                                  arbitration="file")
        assert default[0] == explicit[0]
        assert default[3].winner == explicit[3].winner
        assert default[3].as_dict() == explicit[3].as_dict()

    def test_batch_site_mode_rollups(self):
        batch = apply_batch(mixed_program(), backends="slr,str",
                            arbitration="site", validate=True)
        assert batch.composites_shipped == 1
        totals = batch.site_winner_totals()
        assert totals.get("slr", 0) >= 1 and totals.get("str", 0) >= 1
        report = batch.reports[0]
        assert report.arbitration.winner == COMPOSITE_BACKEND
        assert report.validation.semantics_changed == 0


# --------------------------------------------- composition stub backends

def _edit_stub(backend_id, sites, finalize=()):
    """A FixBackend fabricating a TransformResult whose outcomes carry
    explicit per-site ``edits`` against the original text."""

    class Stub(FixBackend):
        id = backend_id
        title = backend_id

        def build(self, text, filename, session):
            raise NotImplementedError

        def run(self, text, filename, session=None):
            # The whole-file text only needs to be a changed, valid
            # file; a backend whose *own* sites conflict pairwise (the
            # scenario under test) could not replay them all anyway.
            outcomes = [
                SiteOutcome(
                    transformation=backend_id.upper(), target=target,
                    function=function, line=line, status=TRANSFORMED,
                    edits=tuple(edits))
                for function, line, target, edits in sites]
            new_text = text + f"/* {backend_id} */\n" if sites else text
            return TransformResult(backend_id.upper(), text, new_text,
                                   outcomes, backend=backend_id,
                                   finalize_edits=tuple(finalize))

    return Stub()


@pytest.fixture
def stub_backends():
    registered = []

    def add(backend):
        register_backend(backend, replace=True)
        registered.append(backend.id)
        return backend

    yield add
    for backend_id in registered:
        unregister_backend(backend_id)


class TestConflictMerging:
    """Overlapping winning edits fall back per site, deterministically,
    through the shared rewriter's checkpoint/rollback."""

    #: ``text[20:26]`` is ``"return"`` — both stubs rewrite whitespace
    #: around it so every composite stays valid, behaviour-identical C.
    SRC = "int main(void)\n{\n    return 0;\n}\n"

    def _run(self, backends):
        text = pp(self.SRC)
        ws = text.index("    return")
        tail = text.index(" 0;")
        # stub-p: site s1 and site s2 both rewrite the same indent run —
        # once s1 is composed, p's s2 edit conflicts with it.
        p = _edit_stub("stub-p", [
            ("main", 1, "s1", [(ws, ws + 4, "      ")]),
            ("main", 2, "s2", [(ws, ws + 2, "\t")]),
        ])
        # stub-q offers a non-conflicting fix for s2 elsewhere.
        q = _edit_stub("stub-q", [
            ("main", 2, "s2", [(tail, tail + 1, "  ")]),
        ])
        backends(p)
        backends(q)
        return arbitrate_file(text, "c.c", ("stub-p", "stub-q"),
                              arbitration="site")

    def test_conflicting_site_falls_back_to_next_backend(
            self, stub_backends):
        final, parses, validation, report = self._run(stub_backends)
        assert parses
        decisions = {d.target: d for d in report.sites}
        assert decisions["s1"].winner == "stub-p"
        fallback = decisions["s2"]
        assert fallback.composed and fallback.winner == "stub-q"
        assert "fell back from stub-p" in fallback.reason
        assert fallback.candidates == ("stub-p", "stub-q")

    def test_unresolvable_conflict_leaves_site_unfixed(
            self, stub_backends):
        text = pp(self.SRC)
        ws = text.index("    return")
        p = _edit_stub("stub-p", [
            ("main", 1, "s1", [(ws, ws + 4, "      ")]),
            ("main", 2, "s2", [(ws, ws + 2, "\t")]),
        ])
        stub_backends(p)
        *_, report = arbitrate_file(text, "c.c", ("stub-p",),
                                    arbitration="site")
        unfixed = [d for d in report.sites if not d.composed]
        assert len(unfixed) == 1
        assert "conflicts" in unfixed[0].reason

    def test_degrades_when_no_site_composable(self, stub_backends):
        """Candidates with no captured edits (or none eligible) degrade
        to the whole-file answer with an explicit rung recorded."""
        text = pp(self.SRC)
        stub_backends(_edit_stub("stub-none", []))
        final, parses, validation, report = arbitrate_file(
            text, "c.c", ("stub-none",), arbitration="site")
        assert report.composite_status == "degraded: no composable site"
        assert report.winner != COMPOSITE_BACKEND
        assert final == text

    def test_not_strictly_better_degrades_to_file_winner(
            self, stub_backends):
        """On a single-site file the composite can never beat the best
        whole-file candidate, so site mode ships the file-mode answer."""
        final_f, *_, report_f = arbitrate_file(
            pp(OVERFLOW_SRC), "o.c", ("slr",))
        final_s, *_, report_s = arbitrate_file(
            pp(OVERFLOW_SRC), "o.c", ("slr",), arbitration="site")
        assert report_s.composite_status.startswith("degraded:")
        assert "whole-file winner slr" in report_s.composite_status
        assert report_s.winner == "slr" == report_f.winner
        assert final_s == final_f


# ----------------------------------------------------------- determinism

class TestSiteDeterminism:
    def _outcome(self, **kwargs):
        batch = apply_batch(
            SourceProgram("mix", {
                "mixed_sites.c": mixed_text(),
                "plain.c": OVERFLOW_SRC,
            }),
            backends="slr,str", arbitration="site", validate=True,
            **kwargs)
        return (batch.winners(), batch.backend_scoreboard(),
                batch.site_winner_totals(), batch.composites_shipped)

    def test_jobs_1_vs_jobs_4_identical(self):
        assert self._outcome(jobs=1) == self._outcome(jobs=4)

    def test_cache_off_vs_warm_store_identical(self, fresh_store,
                                               monkeypatch):
        warm_1 = self._outcome(jobs=1)          # populates the store
        warm_2 = self._outcome(jobs=1)          # replays from it
        monkeypatch.setenv("REPRO_CACHE", "0")
        reset_session()
        cold = self._outcome(jobs=1)
        assert warm_1 == warm_2 == cold


# ------------------------------------- satellite: verdict_summary rendering

class TestRejectedVerdictSummary:
    def _parse_breaker(self):
        class Breaker(FixBackend):
            id = "stub-noparse"
            title = "stub-noparse"

            def build(self, text, filename, session):
                raise NotImplementedError

            def run(self, text, filename, session=None):
                broken = text + "\nint oops( {\n"
                outcome = SiteOutcome(
                    transformation="STUB", target="oops",
                    function="main", line=1, status=TRANSFORMED)
                return TransformResult("STUB", text, broken, [outcome],
                                       backend="stub-noparse")

        return Breaker()

    def test_parse_rejected_candidate_reports_reason(self):
        candidate = BackendCandidate(
            "x", None, parses=False, status=CANDIDATE_REJECTED,
            reason="transformed text does not parse")
        assert candidate.verdict_summary() \
            == "rejected: transformed text does not parse"

    def test_error_and_skip_summaries_unchanged(self):
        assert BackendCandidate("x", None, status=CANDIDATE_ERROR) \
            .verdict_summary() == "error"
        assert BackendCandidate("x", None).verdict_summary() == "skip"

    def test_report_table_surfaces_parse_rejection(self, stub_backends,
                                                   tmp_path):
        from repro.core.report import (
            render_backend_scoreboard, render_batch_stats,
        )
        stub_backends(self._parse_breaker())
        batch = apply_batch(
            SourceProgram("p", {"a.c": OVERFLOW_SRC}),
            backends="stub-noparse", validate=True)
        report = batch.reports[0]
        assert report.arbitration.winner is None
        assert report.validation is None
        stats_text = render_batch_stats(batch)
        assert "stub-noparse rejected: transformed text does not parse" \
            in stats_text
        board_text = render_backend_scoreboard(batch)
        assert "rejected candidates:" in board_text
        assert "a.c stub-noparse: rejected: transformed text does " \
               "not parse" in board_text


# --------------------------------- satellite: profiler stage attribution

class TestJudgeStageAttribution:
    def test_judge_time_lands_in_validate_stage(self, monkeypatch):
        import time

        import repro.core.backends as backends_mod
        from repro.core import profile
        from repro.core.validate import ValidationReport

        def slow_judge(original, candidate_text, filename, inputs):
            time.sleep(0.05)
            return ValidationReport(filename, [], unchanged=False)

        monkeypatch.setattr(backends_mod, "_judge", slow_judge)
        text = pp(OVERFLOW_SRC)
        with profile.collect("o.c") as times:
            arbitrate_file(text, "o.c", ("slr",))
        # The judge stub does not self-report a stage, so only the
        # arbitration-side wrapper can attribute its wall time.
        assert times.get("validate", 0.0) >= 0.04
        assert times.get("slr", 0.0) < 0.04


# ---------------------------------- satellite: clean unknown-backend errors

class TestUnknownBackendErrors:
    def test_error_type_and_message(self):
        with pytest.raises(UnknownBackendError) as err:
            resolve_backends("slr,bogus")
        assert isinstance(err.value, KeyError)
        message = str(err.value)
        assert message.startswith("unknown fix backend 'bogus'")
        assert "slr" in message          # lists the registered ids

    def test_cli_validate_unknown_backend(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "a.c").write_text(OVERFLOW_SRC, encoding="utf-8")
        code = main(["validate", str(tmp_path), "--backends", "bogus"])
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown fix backend 'bogus'" in captured.err
        assert "Traceback" not in captured.err + captured.out

    def test_eval_validate_unknown_backend(self, capsys):
        from repro.eval.validate import main
        with pytest.raises(SystemExit) as err:
            main(["--backends", "bogus", "--scale", "0.01",
                  "--limit", "1", "--no-corpus"])
        captured = capsys.readouterr()
        assert err.value.code == 2
        assert "error: unknown fix backend 'bogus'" in captured.err
        assert "Traceback" not in captured.err

    def test_eval_validate_site_without_backends(self, capsys):
        from repro.eval.validate import main
        with pytest.raises(SystemExit) as err:
            main(["--arbitration", "site", "--scale", "0.01",
                  "--limit", "1", "--no-corpus"])
        captured = capsys.readouterr()
        assert err.value.code == 2
        assert "error: site arbitration requires" in captured.err

    def test_pipeline_bench_unknown_backend(self, capsys):
        from repro.eval.pipeline_bench import main
        code = main(["--backends", "bogus", "--scale", "0.01",
                     "--limit", "1", "--no-validate"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error: unknown fix backend 'bogus'" in captured.err
        assert "Traceback" not in captured.err


# ------------------------- satellite: report round-trip and aggregation

class TestReportRoundTrip:
    def _site_report(self):
        *_, report = arbitrate_file(pp(mixed_text()), "mixed_sites.c",
                                    ("slr", "str"), arbitration="site")
        return report

    def test_as_dict_json_round_trip(self):
        report = self._site_report()
        payload = report.as_dict()
        assert payload["mode"] == "site"
        assert payload["composite_status"] == "shipped"
        assert payload["sites"]
        rebuilt = json.loads(json.dumps(payload, sort_keys=True))
        assert rebuilt == payload

    def test_site_decision_round_trip(self):
        decision = SiteDecision("main", "buf", 7, winner="slr",
                                composed=True, overflows_prevented=2,
                                candidates=("slr", "str"))
        rebuilt = json.loads(json.dumps(decision.as_dict()))
        assert rebuilt["site"] == "main:7:buf"
        assert rebuilt["candidates"] == ["slr", "str"]

    def _mixed_status_outcome(self, **kwargs):
        """A batch whose candidates span error / rejected / runner-up /
        selected statuses, for aggregation tests."""
        batch = apply_batch(
            SourceProgram("mix", {
                f"f{i}.c": OVERFLOW_SRC.replace("got:", f"got{i}:")
                for i in range(3)}),
            backends="tr24731,slr,s3lib", validate=True, **kwargs)
        return batch

    def test_scoreboard_over_mixed_statuses(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "tr24731:exception:1.0")
        batch = self._mixed_status_outcome()
        board = batch.backend_scoreboard()
        assert board["tr24731"]["errors"] == 3
        assert sum(row["selected"] for row in board.values()) == 3
        assert "sites_won" not in board["slr"]     # file-mode shape
        rebuilt = json.loads(json.dumps(board, sort_keys=True))
        assert rebuilt == board

    def test_mixed_statuses_deterministic(self, fresh_store,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "tr24731:exception:1.0")

        def outcome(**kwargs):
            batch = self._mixed_status_outcome(**kwargs)
            return (batch.winners(), batch.backend_scoreboard())

        warm = outcome(jobs=1)
        assert warm == outcome(jobs=4)              # jobs determinism
        assert warm == outcome(jobs=1)              # warm-store replay
        monkeypatch.setenv("REPRO_CACHE", "0")
        reset_session()
        assert warm == outcome(jobs=1)              # cold determinism

    def test_scoreboard_sites_won_only_in_site_mode(self):
        report = self._site_report()
        board = scoreboard([report])
        assert board["slr"]["sites_won"] >= 1
        assert board["str"]["sites_won"] >= 1
        *_, file_report = arbitrate_file(pp(OVERFLOW_SRC), "o.c",
                                         ("slr",))
        assert "sites_won" not in scoreboard([file_report])["slr"]


# ------------------------------------------------------ rendered surfaces

class TestSiteRendering:
    def _batch(self):
        return apply_batch(mixed_program(), backends="slr,str",
                           arbitration="site", validate=True)

    def test_scoreboard_renders_sites_won(self):
        from repro.core.report import render_backend_scoreboard
        text = render_backend_scoreboard(self._batch())
        assert "sites-won" in text
        assert "composite(s) shipped" in text
        assert "site winners:" in text

    def test_diagnostics_payload_site_section(self):
        from repro.core.report import diagnostics_payload
        payload = diagnostics_payload(self._batch())
        section = payload["backends"]
        assert section["arbitration_mode"] == "site"
        assert section["composites_shipped"] == 1
        assert section["site_winners"].get("slr", 0) >= 1
        arb = section["arbitrations"][0]
        assert arb["mode"] == "site"
        assert arb["winner"] == COMPOSITE_BACKEND
        json.dumps(payload, sort_keys=True)         # JSON-clean

    def test_eval_scoreboard_payload_and_render(self):
        from repro.eval.validate import (
            ValidationEvalResult, ValidationRow,
        )
        result = ValidationEvalResult(
            samate_rows=[ValidationRow("CWE-121", 1, 4,
                                       {"identical": 4})],
            backends=("slr", "str"), arbitration="site",
            scoreboard={"slr": {
                "attempted": 1, "changed": 1, "selected": 0,
                "rejected": 0, "errors": 0, "overflow_prevented": 2,
                "sites_won": 1}})
        payload = result.scoreboard_payload()
        assert payload["arbitration"] == "site"
        text = result.render()
        assert "[arbitration: site]" in text
        assert "Sites-won" in text

    def test_cli_batch_site_flag(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "mixed_sites.c").write_text(mixed_text(),
                                                encoding="utf-8")
        code = main(["batch", str(tmp_path), "--backends", "slr,str",
                     "--arbitration", "site", "--validate"])
        captured = capsys.readouterr()
        assert code == 0
        assert COMPOSITE_BACKEND in captured.out
        assert "composite(s) over" in captured.err
