"""Unit tests for the preprocessor."""

import pytest

from repro.cfront.preprocessor import Preprocessor
from repro.cfront.source import PreprocessorError


def pp_text(source: str, includes: dict[str, str] | None = None,
            predefined: dict[str, str] | None = None) -> str:
    return Preprocessor(includes, predefined).preprocess(source, "t.c").text


class TestObjectMacros:
    def test_simple_expansion(self):
        assert "int x = 10;" in pp_text("#define N 10\nint x = N;")

    def test_chained_expansion(self):
        out = pp_text("#define A B\n#define B 42\nint x = A;")
        assert "int x = 42;" in out

    def test_self_reference_does_not_loop(self):
        out = pp_text("#define X X\nint X;")
        assert "int X;" in out

    def test_mutual_recursion_blocked(self):
        out = pp_text("#define A B\n#define B A\nint A;")
        assert "int" in out     # terminates

    def test_undef(self):
        out = pp_text("#define N 1\n#undef N\nint N;")
        assert "int N;" in out

    def test_redefinition_takes_latest(self):
        out = pp_text("#define N 1\n#define N 2\nint x = N;")
        assert "int x = 2;" in out

    def test_empty_body(self):
        out = pp_text("#define EMPTY\nint EMPTY x;")
        assert "int x;" in out.replace("  ", " ")


class TestFunctionMacros:
    def test_single_parameter(self):
        out = pp_text("#define SQR(x) ((x)*(x))\nint y = SQR(3);")
        assert "((3)*(3))" in out

    def test_multi_parameter(self):
        out = pp_text("#define ADD(a,b) (a+b)\nint y = ADD(1, 2);")
        assert "(1 +2)" in out or "(1+2)" in out or "(1 + 2)" in out

    def test_argument_with_commas_in_parens(self):
        out = pp_text("#define ID(x) x\nint y = ID(f(1, 2));")
        assert "f(1, 2)" in out

    def test_name_without_parens_not_expanded(self):
        out = pp_text("#define F(x) x\nint F;")
        assert "int F;" in out

    def test_stringize(self):
        out = pp_text('#define STR(x) #x\nchar *s = STR(hello world);')
        assert '"hello world"' in out

    def test_stringize_escapes_quotes(self):
        out = pp_text('#define STR(x) #x\nchar *s = STR("q");')
        assert r'"\"q\""' in out

    def test_token_paste(self):
        out = pp_text("#define CAT(a,b) a##b\nint CAT(foo, bar) = 1;")
        assert "foobar" in out

    def test_paste_forms_number(self):
        out = pp_text("#define N(a,b) a##b\nint x = N(1, 2);")
        assert "12" in out

    def test_variadic_macro(self):
        out = pp_text("#define LOG(fmt, ...) printf(fmt, __VA_ARGS__)\n"
                      "void f(void) { LOG(\"%d %d\", 1, 2); }")
        assert 'printf("%d %d", 1, 2)' in out.replace(" ,", ",")

    def test_nested_calls(self):
        out = pp_text("#define TWICE(x) ((x)+(x))\n"
                      "int y = TWICE(TWICE(2));")
        assert out.count("2") >= 4

    def test_wrong_arity_raises(self):
        with pytest.raises(PreprocessorError):
            pp_text("#define TWO(a,b) a\nint x = TWO(1);")


class TestConditionals:
    def test_ifdef_taken(self):
        out = pp_text("#define X\n#ifdef X\nint yes;\n#endif")
        assert "int yes;" in out

    def test_ifdef_not_taken(self):
        out = pp_text("#ifdef X\nint no;\n#endif")
        assert "int no;" not in out

    def test_ifndef(self):
        out = pp_text("#ifndef X\nint yes;\n#endif")
        assert "int yes;" in out

    def test_if_arithmetic(self):
        out = pp_text("#if 2 + 2 == 4\nint yes;\n#endif")
        assert "int yes;" in out

    def test_if_defined_operator(self):
        out = pp_text("#define A 1\n#if defined(A) && !defined(B)\n"
                      "int yes;\n#endif")
        assert "int yes;" in out

    def test_else_branch(self):
        out = pp_text("#if 0\nint no;\n#else\nint yes;\n#endif")
        assert "int yes;" in out and "int no;" not in out

    def test_elif_chain(self):
        out = pp_text("#define V 2\n#if V == 1\nint a;\n#elif V == 2\n"
                      "int b;\n#elif V == 3\nint c;\n#endif")
        assert "int b;" in out
        assert "int a;" not in out and "int c;" not in out

    def test_nested_conditionals(self):
        out = pp_text("#if 1\n#if 0\nint no;\n#endif\nint yes;\n#endif")
        assert "int yes;" in out and "int no;" not in out

    def test_inactive_branch_directives_ignored(self):
        out = pp_text("#if 0\n#error should not fire\n#endif\nint x;")
        assert "int x;" in out

    def test_unknown_identifier_is_zero(self):
        out = pp_text("#if UNDEFINED_THING\nint no;\n#endif\nint x;")
        assert "int no;" not in out

    def test_ternary_in_condition(self):
        out = pp_text("#if 1 ? 1 : 0\nint yes;\n#endif")
        assert "int yes;" in out

    def test_unterminated_if_raises(self):
        with pytest.raises(PreprocessorError):
            pp_text("#if 1\nint x;")

    def test_endif_without_if_raises(self):
        with pytest.raises(PreprocessorError):
            pp_text("#endif")

    def test_error_directive(self):
        with pytest.raises(PreprocessorError):
            pp_text("#error boom")

    def test_char_constant_in_condition(self):
        out = pp_text("#if 'A' == 65\nint yes;\n#endif")
        assert "int yes;" in out


class TestIncludes:
    def test_quoted_include(self):
        out = pp_text('#include "my.h"\nint x = MYVAL;',
                      includes={"my.h": "#define MYVAL 7\n"})
        assert "int x = 7;" in out

    def test_angle_include_builtin(self):
        out = pp_text("#include <stddef.h>\nsize_t n;")
        assert "typedef unsigned long size_t;" in out

    def test_missing_header_raises(self):
        with pytest.raises(PreprocessorError):
            pp_text('#include "nope.h"')

    def test_include_guard_via_ifndef(self):
        header = "#ifndef H\n#define H\nint once;\n#endif\n"
        out = pp_text('#include "h.h"\n#include "h.h"\n',
                      includes={"h.h": header})
        assert out.count("int once;") == 1

    def test_nested_includes(self):
        out = pp_text('#include "a.h"\nint x = BOTH;',
                      includes={"a.h": '#include "b.h"\n#define BOTH B\n',
                                "b.h": "#define B 3\n"})
        assert "int x = 3;" in out

    def test_self_include_cycle_terminates(self):
        out = pp_text('#include "loop.h"\nint x;',
                      includes={"loop.h": '#include "loop.h"\nint y;\n'})
        assert "int x;" in out

    def test_included_files_recorded(self):
        pp = Preprocessor({"my.h": "int v;\n"})
        result = pp.preprocess('#include "my.h"\n', "t.c")
        assert "my.h" in result.included


class TestPredefined:
    def test_predefined_macros(self):
        out = pp_text("int x = FOO;", predefined={"FOO": "99"})
        assert "int x = 99;" in out


class TestOutputShape:
    def test_blank_lines_squeezed(self):
        out = pp_text("int a;\n\n\n\nint b;")
        assert "\n\n\n" not in out

    def test_indentation_preserved(self):
        out = pp_text("void f(void) {\n    int deep;\n}")
        assert "    int deep;" in out

    def test_line_count_counts_nonblank(self):
        pp = Preprocessor()
        result = pp.preprocess("int a;\n\nint b;\n", "t.c")
        assert result.line_count == 2

    def test_pragma_and_line_ignored(self):
        out = pp_text("#pragma once\n#line 100\nint x;")
        assert "int x;" in out
