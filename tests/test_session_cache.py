"""Tests for the shared AnalysisSession, the content-keyed frontend
caches, lazy analysis construction, and serial-vs-parallel batch
equivalence."""

import pytest

from repro.analysis import ProgramAnalysis
from repro.cfront.cache import (
    CacheStats, ContentCache, clear_all_caches, content_key,
    preprocess_cached,
)
from repro.cfront.parser import parse_translation_unit
from repro.core.batch import SourceProgram, apply_batch
from repro.core.session import AnalysisSession, get_session, reset_session
from repro.core.slr import SafeLibraryReplacement

SOURCE = (
    "#include <string.h>\n"
    "void f(void) {\n"
    "    char buf[16];\n"
    "    strcpy(buf, \"hi\");\n"
    "}\n"
)

# parse_translation_unit expects preprocessed text — no directives.
PLAIN = (
    "void f(void) {\n"
    "    char buf[16];\n"
    "    char *p = buf;\n"
    "    p[0] = 'x';\n"
    "}\n"
)


class TestContentCache:
    def test_hit_returns_same_object(self):
        cache = ContentCache("t-hit", maxsize=4)
        built = []
        value = cache.get_or_build("k", lambda: built.append(1) or [1])
        again = cache.get_or_build("k", lambda: built.append(1) or [2])
        assert value is again
        assert built == [1]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_different_keys_miss(self):
        cache = ContentCache("t-miss", maxsize=4)
        a = cache.get_or_build("a", lambda: object())
        b = cache.get_or_build("b", lambda: object())
        assert a is not b
        assert cache.stats.misses == 2

    def test_lru_eviction(self):
        cache = ContentCache("t-lru", maxsize=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("a", lambda: "A2")      # refresh a
        cache.get_or_build("c", lambda: "C")       # evicts b (LRU)
        assert cache.stats.evictions == 1
        assert cache.get_or_build("a", lambda: "A3") == "A"    # survived
        assert cache.get_or_build("b", lambda: "B2") == "B2"   # rebuilt

    def test_failures_not_cached(self):
        cache = ContentCache("t-fail", maxsize=4)

        def boom():
            raise ValueError("nope")

        with pytest.raises(ValueError):
            cache.get_or_build("k", boom)
        assert len(cache) == 0
        assert cache.get_or_build("k", lambda: "ok") == "ok"

    def test_disable_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        cache = ContentCache("t-off", maxsize=4)
        a = cache.get_or_build("k", lambda: object())
        b = cache.get_or_build("k", lambda: object())
        assert a is not b
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_content_key_order_sensitive(self):
        assert content_key("ab", "c") != content_key("a", "bc")
        assert content_key("x") == content_key("x")

    def test_stats_delta(self):
        now = CacheStats("c", hits=5, misses=3, evictions=1)
        earlier = CacheStats("c", hits=2, misses=3, evictions=0)
        diff = now.delta(earlier)
        assert (diff.hits, diff.misses, diff.evictions) == (3, 0, 1)
        assert diff.hit_rate == 1.0


class TestPreprocessCache:
    def test_same_text_hits(self):
        clear_all_caches()
        first = preprocess_cached(SOURCE, "a.c")
        second = preprocess_cached(SOURCE, "a.c")
        assert first is second

    def test_edited_text_misses(self):
        clear_all_caches()
        first = preprocess_cached(SOURCE, "a.c")
        edited = preprocess_cached(SOURCE + "int tail;\n", "a.c")
        assert edited is not first
        assert "int tail;" in edited.text

    def test_macro_change_misses(self):
        text = "#ifdef FEAT\nint on;\n#else\nint off;\n#endif\n"
        plain = preprocess_cached(text, "m.c")
        with_macro = preprocess_cached(text, "m.c",
                                       predefined={"FEAT": "1"})
        assert "int off;" in plain.text
        assert "int on;" in with_macro.text

    def test_header_change_misses(self):
        text = '#include "k.h"\nint v = K;\n'
        one = preprocess_cached(text, "h.c",
                                include_paths={"k.h": "#define K 1\n"})
        two = preprocess_cached(text, "h.c",
                                include_paths={"k.h": "#define K 2\n"})
        assert "int v = 1;" in one.text
        assert "int v = 2;" in two.text


class TestAnalysisSession:
    def test_parse_same_text_hits(self):
        session = AnalysisSession(cache_name="t-parse-hit")
        first = session.parse(PLAIN, "a.c")
        second = session.parse(PLAIN, "b.c")      # filename is a label only
        assert first is second
        assert session.parse_stats.hits == 1

    def test_parse_edited_text_misses(self):
        session = AnalysisSession(cache_name="t-parse-miss")
        first = session.parse(PLAIN)
        edited = session.parse(PLAIN.replace("buf[16]", "buf[32]"))
        assert edited is not first
        assert session.parse_stats.misses == 2

    def test_cached_unit_is_annotated(self):
        session = AnalysisSession(cache_name="t-parse-ann")
        parsed = session.parse(PLAIN)
        fn = parsed.unit.functions()[0]
        assert fn.name == "f"
        assert parsed.analysis.symbols.locals_of["f"]

    def test_check_parses(self):
        session = AnalysisSession(cache_name="t-verify")
        assert session.check_parses("int x;\n")
        assert not session.check_parses("int x = ;\n")
        # The failed parse must not poison the cache.
        assert not session.check_parses("int x = ;\n")

    def test_transformed_output_not_served_stale(self):
        """SLR's output text differs from its input, so the verify parse
        must see the *new* unit, never the cached input unit."""
        session = AnalysisSession(cache_name="t-stale")
        text = session.preprocess(SOURCE, "a.c").text
        result = SafeLibraryReplacement(text, "a.c", session=session).run()
        assert result.changed
        assert "g_strlcpy" in result.new_text
        before = session.parse(text, "a.c")
        after = session.parse(result.new_text, "a.c")
        assert after is not before
        assert "g_strlcpy" not in text
        calls = [n.callee_name for n in after.unit.walk()
                 if hasattr(n, "callee_name")]
        assert "g_strlcpy" in calls

    def test_reset_session_replaces_default(self):
        old = get_session()
        fresh = reset_session()
        try:
            assert fresh is not old
            assert get_session() is fresh
        finally:
            # leave a clean default for the rest of the suite
            reset_session()


class TestLazyAnalysis:
    def _unit(self):
        return parse_translation_unit(PLAIN, "a.c")

    def test_heavy_passes_lazy_after_ensure_types(self):
        pa = ProgramAnalysis(self._unit()).ensure_types()
        assert pa._pointsto is None
        assert pa._callgraph is None
        assert pa._cfgs is None

    def test_passes_built_on_first_query_and_memoized(self):
        pa = ProgramAnalysis(self._unit()).ensure_types()
        first = pa.pointsto
        assert pa._pointsto is not None
        assert pa.pointsto is first
        assert pa.aliases is pa.aliases

    def test_per_function_invalidation(self):
        pa = ProgramAnalysis(self._unit()).ensure_types()
        reaching = pa.reaching_of("f")
        cfg = pa.cfg_of("f")
        assert reaching is not None
        pa.invalidate("f")
        assert pa.reaching_of("f") is not reaching
        assert pa.cfg_of("f") is not cfg

    def test_full_invalidation(self):
        pa = ProgramAnalysis(self._unit()).ensure_types()
        pointsto = pa.pointsto
        pa.invalidate()
        assert pa._pointsto is None
        assert pa.pointsto is not pointsto


class TestSerialParallelEquivalence:
    def _outcome_tuples(self, batch):
        out = []
        for report in batch.reports:
            for result in (report.slr, report.str_):
                if result is None:
                    continue
                out.append([(o.transformation, o.target, o.function,
                             o.line, o.status, o.reason)
                            for o in result.outcomes])
        return out

    @pytest.mark.parametrize("name", ["zlib", "libpng"])
    def test_corpus_program_equivalent(self, name):
        from repro.corpus import PROGRAM_BUILDERS
        program = PROGRAM_BUILDERS[name]()
        serial = apply_batch(program, jobs=1)
        parallel = apply_batch(program, jobs=2)
        assert [r.filename for r in serial.reports] == \
            [r.filename for r in parallel.reports]
        assert [r.final_text for r in serial.reports] == \
            [r.final_text for r in parallel.reports]
        assert [r.parses for r in serial.reports] == \
            [r.parses for r in parallel.reports]
        assert self._outcome_tuples(serial) == \
            self._outcome_tuples(parallel)
        for which in ("SLR", "STR"):
            assert serial.candidates(which) == parallel.candidates(which)
            assert serial.transformed(which) == parallel.transformed(which)
            assert serial.by_target(which) == parallel.by_target(which)

    def test_reports_in_filename_order(self):
        program = SourceProgram("p", {
            "zz.c": "int z;\n",
            "aa.c": "int a;\n",
            "mm.c": "int m;\n",
        })
        batch = apply_batch(program, jobs=2)
        assert [r.filename for r in batch.reports] == \
            ["aa.c", "mm.c", "zz.c"]
        assert batch.stats is not None
        assert batch.stats.jobs == 2
        assert set(batch.stats.file_walls) == {"aa.c", "mm.c", "zz.c"}


class TestOracleDeterminism:
    """The differential oracle's verdicts must not depend on worker
    count or on whether the content-keyed caches are enabled."""

    FILES = {
        "overflow.c": (
            "#include <stdio.h>\n#include <string.h>\n"
            "int main(void) {\n"
            "    char buf[8];\n"
            "    char line[8];\n"
            "    strcpy(buf, \"far far too long for this buffer\");\n"
            "    gets(line);\n"
            "    printf(\"%s %s\\n\", buf, line);\n"
            "    return 0;\n}\n"),
        "clean.c": (
            "#include <stdio.h>\n"
            "int main(void) { printf(\"ok\\n\"); return 0; }\n"),
    }

    def _verdicts(self, **kwargs):
        program = SourceProgram("p", dict(self.FILES))
        batch = apply_batch(program, validate=True, **kwargs)
        return [v.as_dict() for v in batch.validations()]

    def test_verdicts_identical_serial_vs_parallel(self):
        assert self._verdicts(jobs=1) == self._verdicts(jobs=4)

    def test_verdicts_identical_with_cache_off(self, monkeypatch):
        with_cache = self._verdicts(jobs=1)
        monkeypatch.setenv("REPRO_CACHE", "off")
        without_cache = self._verdicts(
            jobs=1, session=AnalysisSession(cache_name="t-oracle-off"))
        assert with_cache == without_cache


class TestDeterministicOutcomeOrdering:
    def test_outcomes_sorted_by_line(self):
        text = get_session().preprocess(
            "#include <string.h>\n"
            "void g(void) {\n"
            "    char b[8];\n"
            "    char c[8];\n"
            "    strcat(c, \"y\");\n"
            "    strcpy(b, \"x\");\n"
            "}\n", "o.c").text
        result = SafeLibraryReplacement(text, "o.c").run()
        lines = [o.line for o in result.outcomes]
        assert lines == sorted(lines)
        assert len(result.outcomes) == 2
