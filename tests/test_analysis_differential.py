"""Differential equivalence: fast-path analyses vs legacy reference.

The fast solvers (``REPRO_ANALYSIS_FAST=1``, the default) must be
observationally identical to the legacy reference solvers kept behind
``REPRO_ANALYSIS_FAST=0`` — same points-to sets, same alias sets, same
reaching definitions, same control dependences, in the same rendered
order.  Each case computes a full analysis signature of a translation
unit under both flags and compares them structurally.

Inputs cover the three populations the pipeline actually sees: the
bundled examples, a stratified SAMATE sample, and the real-world corpus
excerpts.
"""

import pathlib

import pytest

from repro.analysis import bind
from repro.analysis.alias import AliasAnalysis
from repro.analysis.cfg import build_all_cfgs
from repro.analysis.dependence import DependenceAnalysis
from repro.analysis.pointsto import PointsToAnalysis
from repro.analysis.reaching import ReachingDefinitions
from repro.cfront.parser import parse_translation_unit
from repro.core.session import AnalysisSession

_SESSION = AnalysisSession()


def _signature(unit, table, monkeypatch, fast: bool) -> dict:
    """Every observable analysis result of one unit, as plain data."""
    monkeypatch.setenv("REPRO_ANALYSIS_FAST", "1" if fast else "0")
    pointsto = PointsToAnalysis(unit, table, fast=fast)
    aliases = AliasAnalysis(pointsto, table)
    sig = {
        "pts": [(s.uid, [n.index for n in pointsto.points_to(s)])
                for s in pointsto.pointer_symbols()],
        "escaped": sorted(pointsto.escaped),
        "alias_sets": [[s.uid for s in group]
                       for group in aliases.alias_sets()],
        "aliased": [(s.uid, aliases.is_aliased(s))
                    for s in pointsto.pointer_symbols()],
        "reaching": {},
        "control": {},
    }
    for name, cfg in sorted(build_all_cfgs(unit).items()):
        reaching = ReachingDefinitions(cfg)
        dependence = DependenceAnalysis(cfg, reaching)
        sig["reaching"][name] = [
            (node.nid, [d.index for d in reaching.reaching_in(node)])
            for node in cfg.nodes]
        sig["control"][name] = [
            (node.nid,
             sorted(b.nid for b in dependence.control_dependencies(node)))
            for node in cfg.nodes]
    return sig


def _assert_equivalent(text: str, name: str, monkeypatch) -> None:
    unit = parse_translation_unit(text, name)
    table = bind(unit)
    fast = _signature(unit, table, monkeypatch, fast=True)
    legacy = _signature(unit, table, monkeypatch, fast=False)
    for key in fast:
        assert fast[key] == legacy[key], f"{name}: {key} diverged"


def _example_files():
    root = pathlib.Path(__file__).resolve().parent.parent / "examples" / "c"
    return sorted(root.glob("*.c"))


@pytest.mark.parametrize("path", _example_files(),
                         ids=lambda p: p.name)
def test_examples_equivalent(path, monkeypatch):
    text = _SESSION.preprocess(path.read_text(), path.name).text
    _assert_equivalent(text, path.name, monkeypatch)


def _samate_sample(limit: int = 12):
    from repro.eval.pipeline_bench import sample_program
    program = sample_program(0.05, limit)
    return sorted(program.files.items())


@pytest.mark.parametrize("item", _samate_sample(), ids=lambda i: i[0])
def test_samate_sample_equivalent(item, monkeypatch):
    filename, source = item
    text = _SESSION.preprocess(source, filename).text
    _assert_equivalent(text, filename, monkeypatch)


def _corpus_files():
    from repro.corpus import build_all
    out = []
    for program in build_all().values():
        preprocessed = program.preprocess(_SESSION)
        for filename, text in sorted(preprocessed.files.items()):
            out.append((f"{program.name}/{filename}", text))
    return out


@pytest.mark.parametrize("item", _corpus_files(), ids=lambda i: i[0])
def test_corpus_equivalent(item, monkeypatch):
    filename, text = item
    _assert_equivalent(text, filename, monkeypatch)


def test_pointer_stress_equivalent(monkeypatch):
    from repro.eval.analysis_bench import pointer_stress_source
    _assert_equivalent(pointer_stress_source(n_objects=24, n_pointers=48),
                       "stress.c", monkeypatch)
