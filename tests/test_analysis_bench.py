"""Smoke tests for the analysis microbenchmark harness."""

import json

from repro.analysis import bind
from repro.analysis.pointsto import PointsToAnalysis
from repro.cfront.parser import parse_translation_unit
from repro.eval.analysis_bench import (
    ANALYSES, bench_workload, main, pointer_stress_source, _parse_units,
)


class TestPointerStressWorkload:
    def test_source_is_deterministic(self):
        assert pointer_stress_source() == pointer_stress_source()

    def test_source_parses_and_binds(self):
        units = _parse_units({"stress.c": pointer_stress_source()})
        assert len(units) == 1

    def test_fast_and_legacy_agree_on_stress_unit(self):
        unit = parse_translation_unit(
            pointer_stress_source(n_objects=12, n_pointers=24),
            "stress.c")
        table = bind(unit)
        fast = PointsToAnalysis(unit, table, fast=True)
        legacy = PointsToAnalysis(unit, table, fast=False)
        for symbol in fast.pointer_symbols():
            assert [n.index for n in fast.points_to(symbol)] \
                == [n.index for n in legacy.points_to(symbol)], symbol.name


class TestBenchWorkload:
    def test_record_shape(self):
        units = _parse_units({
            "stress.c": pointer_stress_source(n_objects=8, n_pointers=16)})
        record = bench_workload(units, repeat=1)
        assert record["files"] == 1
        assert record["functions"] == 1
        assert set(record["analyses"]) == set(ANALYSES)
        for cell in record["analyses"].values():
            assert cell["fast_s"] >= 0.0
            assert cell["legacy_s"] >= 0.0

    def test_cli_writes_sorted_rounded_json(self, tmp_path, monkeypatch):
        out = tmp_path / "BENCH_analysis.json"
        # Tiny sample so the test stays fast.
        assert main(["--scale", "0.01", "--limit", "4", "--repeat", "1",
                     "--out", str(out)]) == 0
        payload = out.read_text()
        data = json.loads(payload)
        assert set(data["workloads"]) \
            == {"samate", "corpus", "pointer_stress"}
        assert data["pointsto_speedup_x"] is not None
        # sort_keys: re-serialising must reproduce the file byte for byte.
        assert json.dumps(data, indent=2, sort_keys=True) + "\n" == payload
