"""Tests for SLR's replacement profiles (Table I alternative families).

The default ``glib`` profile truncates oversized operations; the ``c11``
profile (ISO/IEC TR 24731 / Annex K) *rejects* them — empty destination,
nonzero errno_t — which is the other safe-function family Table I lists.
"""

import pytest

from repro.core.slr import (
    C11_ALTERNATIVES, SAFE_ALTERNATIVES, SafeLibraryReplacement,
)

from .helpers import pp, run

PRELUDE = ("#include <stdio.h>\n#include <string.h>\n"
           "#include <stdlib.h>\n#include <stdarg.h>\n")


def slr(src: str, profile: str):
    return SafeLibraryReplacement(pp(src), "t.c", profile=profile).run()


class TestProfileSelection:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            SafeLibraryReplacement(pp(PRELUDE), "t.c", profile="win32")

    def test_families_cover_same_functions(self):
        assert set(C11_ALTERNATIVES) == set(SAFE_ALTERNATIVES)


class TestC11Rewrites:
    def test_strcpy_s_signature(self):
        result = slr(PRELUDE + """
        void f(const char *s) { char b[16]; strcpy(b, s); }""", "c11")
        assert "strcpy_s(b, sizeof(b), s)" in result.new_text

    def test_strcat_s_signature(self):
        result = slr(PRELUDE + """
        void f(void) { char b[16]; b[0]='\\0'; strcat(b, "x"); }""",
                     "c11")
        assert 'strcat_s(b, sizeof(b), "x")' in result.new_text

    def test_sprintf_s_signature(self):
        result = slr(PRELUDE + """
        void f(int v) { char b[16]; sprintf(b, "%d", v); }""", "c11")
        assert 'sprintf_s(b, sizeof(b), "%d", v)' in result.new_text

    def test_vsprintf_s_signature(self):
        result = slr(PRELUDE + """
        void logit(const char *fmt, ...) {
            char b[64];
            va_list ap;
            va_start(ap, fmt);
            vsprintf(b, fmt, ap);
            va_end(ap);
        }""", "c11")
        assert "vsprintf_s(b, sizeof(b), fmt, ap)" in result.new_text

    def test_memcpy_s_signature(self):
        result = slr(PRELUDE + """
        void f(const char *s, unsigned long n) {
            char b[16];
            memcpy(b, s, n);
        }""", "c11")
        assert "memcpy_s(b, sizeof(b), s, n)" in result.new_text

    def test_gets_s_no_epilogue(self):
        result = slr(PRELUDE + """
        void f(void) { char b[16]; gets(b); }""", "c11")
        assert "gets_s(b, sizeof(b))" in result.new_text
        # Unlike the fgets rewrite, no newline-strip epilogue is needed
        # (string.h's strchr *declaration* is still present, of course).
        assert "strchr(b" not in result.new_text
        assert "check" not in result.new_text

    def test_declarations_injected(self):
        result = slr(PRELUDE + """
        void f(const char *s) { char b[16]; strcpy(b, s); }""", "c11")
        assert "int strcpy_s(char *dest" in result.new_text


class TestC11RuntimeSemantics:
    def test_fitting_copy_succeeds(self):
        source = PRELUDE + """
        int main(void) {
            char b[16];
            strcpy(b, "short");
            printf("%s\\n", b);
            return 0;
        }"""
        result = slr(source, "c11")
        out = run(result.new_text, preprocess=False)
        assert out.ok
        assert out.stdout_text == "short\n"

    def test_oversized_copy_rejected_not_truncated(self):
        source = PRELUDE + """
        int main(void) {
            char b[4];
            strcpy(b, "much too long");
            printf("[%s]\\n", b);
            return 0;
        }"""
        result = slr(source, "c11")
        out = run(result.new_text, preprocess=False)
        assert out.ok
        # Annex K constraint handling: empty destination, no truncation.
        assert out.stdout_text == "[]\n"

    def test_glib_truncates_where_c11_rejects(self):
        source = PRELUDE + """
        int main(void) {
            char b[4];
            strcpy(b, "abcdef");
            printf("[%s]\\n", b);
            return 0;
        }"""
        glib_out = run(slr(source, "glib").new_text, preprocess=False)
        c11_out = run(slr(source, "c11").new_text, preprocess=False)
        assert glib_out.stdout_text == "[abc]\n"
        assert c11_out.stdout_text == "[]\n"

    def test_memcpy_s_zeroes_on_violation(self):
        source = PRELUDE + """
        int main(void) {
            char b[8];
            char big[64];
            memset(b, 'x', 7);
            b[7] = '\\0';
            memset(big, 'B', 63);
            big[63] = '\\0';
            memcpy(b, big, 64);
            printf("%d\\n", b[0]);
            return 0;
        }"""
        result = slr(source, "c11")
        out = run(result.new_text, preprocess=False)
        assert out.ok
        assert out.stdout_text == "0\n"     # destination zeroed

    def test_gets_s_discards_long_line(self):
        source = PRELUDE + """
        int main(void) {
            char b[8];
            b[0] = '?';
            b[1] = '\\0';
            gets(b);
            printf("[%s]\\n", b);
            return 0;
        }"""
        result = slr(source, "c11")
        out = run(result.new_text, preprocess=False,
                  stdin=b"waytoolongforthebuffer\n")
        assert out.ok
        assert out.stdout_text == "[]\n"

    def test_gets_s_reads_fitting_line(self):
        source = PRELUDE + """
        int main(void) {
            char b[16];
            gets(b);
            printf("[%s]\\n", b);
            return 0;
        }"""
        result = slr(source, "c11")
        out = run(result.new_text, preprocess=False, stdin=b"ok\n")
        assert out.ok
        assert out.stdout_text == "[ok]\n"

    def test_sprintf_s_rejects_overflow(self):
        source = PRELUDE + """
        int main(void) {
            char b[4];
            int n = sprintf(b, "%d", 123456);
            printf("%d [%s]\\n", n, b);
            return 0;
        }"""
        result = slr(source, "c11")
        out = run(result.new_text, preprocess=False)
        assert out.ok
        assert out.stdout_text == "-1 []\n"

    def test_both_profiles_fix_every_overflow(self):
        source = PRELUDE + """
        int main(void) {
            char a[4], b[4], c[4];
            strcpy(a, "overflowing");
            sprintf(b, "%d", 1234567);
            memcpy(c, "0123456789", 10);
            return 0;
        }"""
        before = run(source)
        assert before.fault == "buffer-overflow"
        for profile in ("glib", "c11"):
            fixed = slr(source, profile)
            assert fixed.transformed_count == 3
            out = run(fixed.new_text, preprocess=False)
            assert out.ok, (profile, out.fault_detail)
