"""Robustness and failure-injection tests.

The toolchain must fail *cleanly* — typed exceptions or recorded
precondition failures, never corrupted output — on pathological input at
every stage.
"""

import pytest

from repro.cfront.parser import parse_translation_unit
from repro.cfront.preprocessor import Preprocessor
from repro.cfront.source import LexError, ParseError, PreprocessorError
from repro.core.slr import SafeLibraryReplacement
from repro.core.strtransform import SafeTypeReplacement
from repro.vm import run_source

from .helpers import pp, run


class TestParserResilience:
    GARBAGE = [
        "int int int;",
        "}{",
        "int f( { }",
        "return 0;",
        "int x = = 3;",
        "struct { int",
        "void f(void) { if }",
        "int a[];",        # incomplete array at file scope: we accept or reject cleanly
        "((((",
        "int 9x;",
    ]

    @pytest.mark.parametrize("source", GARBAGE)
    def test_garbage_raises_typed_error(self, source):
        try:
            parse_translation_unit(source)
        except (ParseError, LexError):
            pass        # clean, typed rejection

    def test_empty_file(self):
        unit = parse_translation_unit("")
        assert unit.items == []

    def test_only_comments(self):
        text = Preprocessor().preprocess("/* nothing */\n// here\n",
                                         "t.c").text
        unit = parse_translation_unit(text)
        assert unit.items == []

    def test_deeply_nested_expressions(self):
        depth = 200
        expr = "(" * depth + "1" + ")" * depth
        unit = parse_translation_unit(
            f"int main(void) {{ return {expr}; }}")
        assert unit.function("main") is not None

    def test_very_long_identifier(self):
        name = "x" * 5000
        unit = parse_translation_unit(f"int {name};")
        assert unit.items[0].declarators[0].name == name


class TestPreprocessorResilience:
    def test_macro_expansion_depth_guard(self):
        # Mutually recursive function-like macros terminate via hide sets.
        src = "#define A(x) B(x)\n#define B(x) A(x)\nint v = A(1);\n"
        out = Preprocessor().preprocess(src, "t.c").text
        assert "int v" in out

    def test_unterminated_macro_args(self):
        with pytest.raises(PreprocessorError):
            Preprocessor().preprocess("#define F(a) a\nint x = F(1;\n",
                                      "t.c")

    def test_hash_alone(self):
        out = Preprocessor().preprocess("#\nint x;\n", "t.c").text
        assert "int x;" in out

    def test_include_depth_is_bounded_by_cycle_guard(self):
        headers = {f"h{i}.h": f'#include "h{i + 1}.h"\nint v{i};\n'
                   for i in range(50)}
        headers["h50.h"] = "int v50;\n"
        out = Preprocessor(headers).preprocess('#include "h0.h"\n',
                                               "t.c").text
        assert "int v0;" in out and "int v50;" in out


class TestTransformationsOnOddInput:
    def test_slr_on_empty_unit(self):
        result = SafeLibraryReplacement("", "empty.c").run()
        assert result.candidates == 0
        assert not result.changed

    def test_str_on_empty_unit(self):
        result = SafeTypeReplacement("", "empty.c").run()
        assert result.candidates == 0

    def test_slr_unsafe_name_as_variable(self):
        # A local variable named strcpy must not confuse SLR.
        text = pp("""
        int main(void) {
            int strcpy = 3;
            return strcpy;
        }""")
        result = SafeLibraryReplacement(text, "t.c").run()
        assert result.candidates == 0

    def test_slr_wrong_arity_call(self):
        text = pp("""
        #include <string.h>
        char *strcpy(char *, const char *);
        int main(void) { char b[4]; strcpy(b, "x", 1, 2); return 0; }
        """)
        result = SafeLibraryReplacement(text, "t.c").run()
        assert result.outcomes[0].reason == "bad-arity"

    def test_str_buffer_never_used(self):
        text = pp("int main(void) { char idle[16]; return 0; }")
        result = SafeTypeReplacement(text, "t.c").run()
        outcome = result.outcomes[0]
        assert outcome.transformed        # declaration-only is fine
        from repro.cfront.parser import parse_translation_unit as p2
        p2(result.new_text)

    def test_transformations_never_raise_on_corpus_shuffle(self):
        # Applying STR to already-STR'd text: stralloc uses are left
        # alone (stralloc* is not char*), nothing breaks.
        text = pp("""
        #include <string.h>
        int main(void) { char b[8]; strcpy(b, "x"); return 0; }""")
        once = SafeTypeReplacement(text, "t.c").run()
        twice = SafeTypeReplacement(once.new_text, "t.c").run()
        assert twice.candidates == 0
        assert twice.new_text == once.new_text


class TestVMResilience:
    def test_missing_main(self):
        result = run_source("int helper(void) { return 1; }")
        assert result.fault == "vm-error"
        assert "main" in result.fault_detail

    def test_wild_jump_goto_unknown_label_is_clean_error(self):
        result = run("int main(void) { goto nowhere; return 0; }")
        assert result.fault == "vm-error"
        assert "nowhere" in result.fault_detail

    def test_huge_allocation_request(self):
        result = run("#include <stdlib.h>\n"
                     "int main(void){ char *p = malloc(1 << 20); "
                     "p[1048575] = 'x'; return 0; }")
        assert result.ok

    def test_step_budget_enforced_in_nested_loops(self):
        result = run("""
        int main(void) {
            int i, j, k, total = 0;
            for (i = 0; i < 1000; i++)
                for (j = 0; j < 1000; j++)
                    for (k = 0; k < 1000; k++)
                        total++;
            return total;
        }""", step_limit=50_000)
        assert result.fault == "step-limit"

    def test_stack_overflow_fault(self):
        result = run("""
        int spin(int n) { return spin(n + 1); }
        int main(void) { return spin(0); }
        """, step_limit=5_000_000)
        assert result.fault in ("stack-overflow", "step-limit")

    def test_uninitialized_pointer_is_null(self):
        result = run("int main(void){ char *p; *p = 'x'; return 0; }")
        assert result.fault == "null-dereference"

    def test_scribbling_over_freed_memory(self):
        result = run("""
        #include <stdlib.h>
        int main(void) {
            char *p = malloc(8);
            free(p);
            p[0] = 'x';
            return 0;
        }""")
        assert result.fault == "use-after-free"

    def test_program_with_zero_statements(self):
        result = run("int main(void) { }")
        assert result.ok
        assert result.exit_code == 0


class TestRewriterCheckpoint:
    def test_rollback_drops_later_edits(self):
        from repro.cfront.rewriter import Rewriter
        rw = Rewriter("abcdef")
        rw.replace_range(0, 1, "X")
        mark = rw.checkpoint()
        rw.replace_range(2, 3, "Y")
        rw.replace_range(4, 5, "Z")
        rw.rollback(mark)
        assert rw.edit_count == 1
        assert rw.apply() == "Xbcdef"

    def test_rollback_to_zero(self):
        from repro.cfront.rewriter import Rewriter
        rw = Rewriter("abc")
        rw.replace_range(0, 1, "X")
        rw.rollback(0)
        assert not rw.has_edits
        assert rw.apply() == "abc"

    def test_bad_mark_raises(self):
        from repro.cfront.rewriter import Rewriter
        rw = Rewriter("abc")
        with pytest.raises(ValueError):
            rw.rollback(5)
        with pytest.raises(ValueError):
            rw.rollback(-1)


class TestPerSiteContainment:
    """A site handler that raises is contained as a ``site-error``
    outcome with its queued edits rolled back; sibling sites still
    transform."""

    SOURCE = (
        "#include <string.h>\n"
        "void f(void) {\n"
        "    char a[8];\n"
        "    char b[8];\n"
        "    strcpy(a, \"one\");\n"
        "    strcat(b, \"two\");\n"
        "}\n")

    def test_one_bad_site_does_not_kill_the_file(self, monkeypatch):
        from repro.core.transform import SITE_ERROR

        original_apply = SafeLibraryReplacement.apply_to

        def exploding_apply(self, target):
            if getattr(target, "callee_name", "") == "strcat":
                self.rewriter.insert_before(0, "/* half-applied */")
                raise RuntimeError("handler exploded mid-edit")
            return original_apply(self, target)

        monkeypatch.setattr(SafeLibraryReplacement, "apply_to",
                            exploding_apply)
        result = SafeLibraryReplacement(pp(self.SOURCE)).run()
        by_target = {o.target: o for o in result.outcomes}
        assert by_target["strcpy"].transformed
        bad = by_target["strcat"]
        assert bad.status == SITE_ERROR
        assert bad.reason == "internal-error"
        assert "handler exploded" in bad.detail
        # The rolled-back edit never reaches the output.
        assert "half-applied" not in result.new_text
        assert "g_strlcpy" in result.new_text


class TestVMMemoryBudget:
    def test_mem_limit_trips_runaway_allocation(self):
        source = pp(
            "#include <stdlib.h>\n"
            "int main(void) {\n"
            "    long i;\n"
            "    for (i = 0; i < 1000000; i++) { malloc(4096); }\n"
            "    return 0;\n"
            "}\n")
        result = run_source(source, mem_limit=1 << 20)
        assert result.fault == "mem-limit"
        # A resource fault, not a memory-safety trap.
        assert not result.memory_trapped

    def test_mem_limit_counts_cumulatively(self):
        # free() does not refund the budget: a free-as-you-go loop
        # still trips it (that is what bounds worker RSS).
        source = pp(
            "#include <stdlib.h>\n"
            "int main(void) {\n"
            "    long i;\n"
            "    for (i = 0; i < 1000000; i++) {\n"
            "        void *p = malloc(4096);\n"
            "        free(p);\n"
            "    }\n"
            "    return 0;\n"
            "}\n")
        result = run_source(source, mem_limit=1 << 20)
        assert result.fault == "mem-limit"

    def test_normal_program_unaffected(self):
        source = pp(
            "#include <stdlib.h>\n"
            "int main(void) {\n"
            "    char *p = malloc(64);\n"
            "    free(p);\n"
            "    return 5;\n"
            "}\n")
        result = run_source(source, mem_limit=1 << 20)
        assert result.ok and result.exit_code == 5

    def test_oracle_budget_knobs(self, monkeypatch):
        from repro.core.validate import (
            DEFAULT_MEM_LIMIT, DEFAULT_STEP_LIMIT, oracle_mem_limit,
            oracle_step_limit,
        )
        monkeypatch.delenv("REPRO_VALIDATE_STEPS", raising=False)
        monkeypatch.delenv("REPRO_VALIDATE_MEM", raising=False)
        assert oracle_step_limit() == DEFAULT_STEP_LIMIT
        assert oracle_mem_limit() == DEFAULT_MEM_LIMIT
        monkeypatch.setenv("REPRO_VALIDATE_STEPS", "1234")
        monkeypatch.setenv("REPRO_VALIDATE_MEM", "0")
        assert oracle_step_limit() == 1234
        assert oracle_mem_limit() is None
        monkeypatch.setenv("REPRO_VALIDATE_STEPS", "soon")
        monkeypatch.setenv("REPRO_VALIDATE_MEM", "big")
        assert oracle_step_limit() == DEFAULT_STEP_LIMIT
        assert oracle_mem_limit() == DEFAULT_MEM_LIMIT
