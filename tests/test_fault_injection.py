"""Chaos suite: prove the pipeline's fault-containment claims.

Uses :mod:`repro.core.faults` (``REPRO_FAULTS``) to plant deterministic
failures at stage boundaries and asserts the documented degradation:
N files with K injected faults produce exactly N reports, K of them
carrying diagnostics, N−K transformed exactly as a fault-free run would
— and the whole outcome is identical at ``jobs=1`` and ``jobs=4``.
"""

import os

import pytest

from repro.core import faults
from repro.core.batch import SourceProgram, apply_batch
from repro.core.diagnostics import (
    KIND_TIMEOUT, KIND_WORKER_DIED, STATUS_DEGRADED, STATUS_FAILED,
    STATUS_OK,
)


def chaos_program(count: int = 8) -> SourceProgram:
    """``count`` distinct files, each with one SLR-transformable site."""
    files = {}
    for i in range(count):
        files[f"file{i:02d}.c"] = (
            "#include <string.h>\n"
            f"void f{i}(void) {{\n"
            f"    char buf{i}[{16 + i}];\n"
            f"    strcpy(buf{i}, \"value-{i}\");\n"
            "}\n")
    return SourceProgram(f"chaos-{count}", files)


def outcome_shape(batch):
    """The cross-jobs comparison key: per-file status, diagnostic
    (stage, kind) pairs, and final text."""
    return [(r.filename, r.status,
             sorted((d.stage, d.kind) for d in r.diagnostics),
             r.final_text)
            for r in batch.reports]


@pytest.fixture(autouse=True)
def _fault_env(monkeypatch):
    """Every test starts fault-free; REPRO_FAULTS set per test."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_FAULT_HANG_S", raising=False)
    yield


class TestSpecParsing:
    def test_parse_clauses(self):
        rules = faults.parse_spec("slr:exception:0.5, store:corrupt:1")
        assert rules == [faults.FaultRule("slr", "exception", 0.5),
                         faults.FaultRule("store", "corrupt", 1.0)]

    def test_malformed_clause_raises(self):
        with pytest.raises(ValueError):
            faults.parse_spec("slr:exception")
        with pytest.raises(ValueError):
            faults.parse_spec("slr:meteor:0.5")
        with pytest.raises(ValueError):
            faults.parse_spec("slr:exception:1.5")
        with pytest.raises(ValueError):
            faults.parse_spec("slr:exception:lots")

    def test_deterministic_subject_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "slr:exception:0.5")
        names = [f"file{i:02d}.c" for i in range(40)]
        first = faults.faulted_subjects("slr", "exception", names)
        second = faults.faulted_subjects("slr", "exception", names)
        assert first == second
        assert 0 < len(first) < len(names)   # a real split, both sides


class TestExceptionFaults:
    def test_counts_and_determinism_across_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "slr:exception:0.5")
        program = chaos_program(8)
        names = sorted(program.files)
        faulted = set(faults.faulted_subjects("slr", "exception", names))
        assert 0 < len(faulted) < len(names)

        serial = apply_batch(chaos_program(8), jobs=1)
        pooled = apply_batch(chaos_program(8), jobs=4)

        for batch in (serial, pooled):
            assert len(batch.reports) == len(names)
            with_diags = {r.filename for r in batch.reports
                          if r.diagnostics}
            assert with_diags == faulted
            for report in batch.reports:
                if report.filename in faulted:
                    # SLR died but STR still produced: degraded.
                    assert report.status == STATUS_DEGRADED
                    assert report.diagnostics[0].stage == "slr"
                    assert report.diagnostics[0].kind == "InjectedFault"
                else:
                    assert report.status == STATUS_OK
                    # Clean siblings transformed exactly as normal.
                    assert report.slr.transformed_count == 1
        assert outcome_shape(serial) == outcome_shape(pooled)

    def test_clean_files_match_fault_free_run(self, monkeypatch):
        baseline = apply_batch(chaos_program(8), jobs=1)
        by_name = {r.filename: r.final_text for r in baseline.reports}
        monkeypatch.setenv("REPRO_FAULTS", "str:exception:0.5")
        chaotic = apply_batch(chaos_program(8), jobs=1)
        clean = [r for r in chaotic.reports if not r.diagnostics]
        assert clean
        for report in clean:
            assert report.final_text == by_name[report.filename]

    def test_validate_fault_keeps_transform(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "validate:exception:1.0")
        batch = apply_batch(chaos_program(2), jobs=1, validate=True)
        for report in batch.reports:
            assert report.status == STATUS_DEGRADED
            assert report.validation is None
            assert report.slr is not None       # transform survived
            stages = {d.stage for d in report.diagnostics}
            assert stages == {"validate"}

    def test_preprocess_fault_ships_original_text(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "preprocess:exception:1.0")
        program = chaos_program(3)
        originals = dict(program.files)
        batch = apply_batch(program, jobs=1)
        assert len(batch.reports) == 3
        for report in batch.reports:
            assert report.status == STATUS_FAILED
            assert report.final_text == originals[report.filename]
            assert report.diagnostics[0].stage == "preprocess"


class TestWorkerFaults:
    def test_kill_detected_serial_and_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "str:kill:0.5")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "0")
        names = sorted(chaos_program(4).files)
        killed = set(faults.faulted_subjects("str", "kill", names))
        assert 0 < len(killed) < len(names)

        preprocessed = chaos_program(4).preprocess().files
        serial = apply_batch(chaos_program(4), jobs=1)
        pooled = apply_batch(chaos_program(4), jobs=4)
        assert outcome_shape(serial) == outcome_shape(pooled)
        for batch in (serial, pooled):
            for report in batch.reports:
                if report.filename in killed:
                    assert report.status == STATUS_FAILED
                    assert [(d.stage, d.kind)
                            for d in report.diagnostics] == \
                        [("worker", KIND_WORKER_DIED)]
                    # Never made worse: the (preprocessed) input ships
                    # verbatim — no half-applied rewrite.
                    assert report.final_text == \
                        preprocessed[report.filename]
                else:
                    assert report.status == STATUS_OK
        assert pooled.stats.supervision["worker_deaths"] == len(killed)

    def test_dead_workers_respawn_for_remaining_work(self, monkeypatch):
        # More files than workers: after a kill there is still pending
        # work, so the pool must replace the dead worker to finish.
        monkeypatch.setenv("REPRO_FAULTS", "str:kill:0.5")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "0")
        program = chaos_program(8)
        names = sorted(program.files)
        killed = set(faults.faulted_subjects("str", "kill", names))
        assert 0 < len(killed) < len(names)
        pooled = apply_batch(program, jobs=2)
        assert len(pooled.reports) == len(names)
        assert {r.filename for r in pooled.reports
                if r.status == STATUS_FAILED} == killed
        assert pooled.stats.supervision["respawns"] >= 1

    def test_hang_killed_by_watchdog(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "slr:hang:0.4")
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "30")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0.5")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "0")
        names = sorted(chaos_program(8).files)
        hung = set(faults.faulted_subjects("slr", "hang", names))
        assert 0 < len(hung) < len(names)

        pooled = apply_batch(chaos_program(8), jobs=4)
        for report in pooled.reports:
            if report.filename in hung:
                assert report.status == STATUS_FAILED
                assert [(d.stage, d.kind)
                        for d in report.diagnostics] == \
                    [("worker", KIND_TIMEOUT)]
            else:
                assert report.status == STATUS_OK
        assert pooled.stats.supervision["timeouts"] == len(hung)

        # Serial runs stall cooperatively but reach the same shape.
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "0.01")
        serial = apply_batch(chaos_program(8), jobs=1)
        assert [(r.filename, r.status,
                 sorted((d.stage, d.kind) for d in r.diagnostics))
                for r in serial.reports] == \
            [(r.filename, r.status,
              sorted((d.stage, d.kind) for d in r.diagnostics))
             for r in pooled.reports]

    def test_retry_recovers_from_transient_timeout(self, monkeypatch):
        # Watchdog generous enough that the retry (which hangs again,
        # briefly) completes: the file must come through clean.
        monkeypatch.setenv("REPRO_FAULTS", "slr:hang:1.0")
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "0.01")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "30")
        serial = apply_batch(chaos_program(2), jobs=1)
        # Cooperative hangs raise InjectedHang → timeout diagnostics.
        assert all(r.status == STATUS_FAILED for r in serial.reports)
        assert all(d.kind == KIND_TIMEOUT
                   for r in serial.reports for d in r.diagnostics)


class TestCorruptStoreFaults:
    def test_corrupt_entries_self_heal(self, monkeypatch, fresh_store):
        # Warm the store, then corrupt every read: results must be
        # byte-identical and diagnostic-free — corruption is a miss,
        # never an error or a wrong value.
        baseline = apply_batch(chaos_program(4), jobs=1)
        monkeypatch.setenv("REPRO_FAULTS", "store:corrupt:1.0")
        chaotic = apply_batch(chaos_program(4), jobs=1)
        assert not chaotic.diagnostics()
        assert [r.final_text for r in chaotic.reports] == \
            [r.final_text for r in baseline.reports]
        assert all(r.status == STATUS_OK for r in chaotic.reports)


class TestDedupUnderFaults:
    def test_identical_content_not_shared_when_faults_armed(
            self, monkeypatch):
        # Faults fire per file name: two files with identical bytes must
        # not share one report while injection is armed.
        text = ("#include <string.h>\n"
                "void f(void) { char b[8]; strcpy(b, \"x\"); }\n")
        program = SourceProgram("twins", {"a.c": text, "b.c": text})
        monkeypatch.setenv("REPRO_FAULTS", "slr:exception:0.5")
        faulted = set(faults.faulted_subjects("slr", "exception",
                                              ["a.c", "b.c"]))
        batch = apply_batch(program, jobs=1)
        assert batch.stats.deduplicated == 0
        assert {r.filename for r in batch.reports
                if r.diagnostics} == faulted
