"""Native differential validation: the VM against a real C compiler.

When a host C compiler is available, the corpus programs — and their
STR-transformed versions linked against the reference stralloc.c — are
compiled natively and executed; their output must match the VM
byte-for-byte.  This pins the whole substitution chain (VM semantics,
transformation output, stralloc runtime) to ground truth.
"""

import pathlib
import shutil
import subprocess

import pytest

from repro.core.batch import apply_batch
from repro.core.stralloc import STRALLOC_C_SOURCE, STRALLOC_DECLARATIONS
from repro.corpus import build_all
from repro.vm.interp import run_program_files

CC = shutil.which("cc") or shutil.which("gcc")

pytestmark = pytest.mark.skipif(CC is None,
                                reason="no native C compiler available")


def _compile_and_run(workdir: pathlib.Path, sources: dict[str, str],
                     extra_sources: dict[str, str] | None = None) -> bytes:
    workdir.mkdir(parents=True, exist_ok=True)
    all_sources = dict(sources)
    all_sources.update(extra_sources or {})
    paths = []
    for name, text in all_sources.items():
        path = workdir / name
        path.write_text(text, encoding="utf-8")
        if name.endswith(".c"):
            paths.append(str(path))
    binary = workdir / "prog"
    compile_result = subprocess.run(
        [CC, "-O0", "-w", "-o", str(binary), *paths],
        capture_output=True, text=True, timeout=120)
    assert compile_result.returncode == 0, compile_result.stderr[-3000:]
    run_result = subprocess.run([str(binary)], capture_output=True,
                                timeout=120)
    assert run_result.returncode == 0, run_result.stderr[-1000:]
    return run_result.stdout


@pytest.fixture(scope="module")
def corpus():
    return build_all()


class TestOriginalCorpusNative:
    """As-authored corpus sources: native output == VM output."""

    @pytest.mark.parametrize("name", ["zlib", "libpng", "GMP", "libtiff"])
    def test_native_matches_vm(self, name, corpus, tmp_path):
        program = corpus[name]
        vm = run_program_files(program.preprocess().files)
        assert vm.ok, vm.fault_detail
        sources = dict(program.files)
        sources.update(program.headers)
        native = _compile_and_run(tmp_path / name, sources)
        assert native == vm.stdout


class TestTransformedCorpusNative:
    """STR-transformed corpus, linked against the reference stralloc.c,
    must also run natively with identical output."""

    @pytest.mark.parametrize("name", ["zlib", "libpng", "GMP", "libtiff"])
    def test_str_transformed_native_matches_vm(self, name, corpus,
                                               tmp_path):
        program = corpus[name]
        batch = apply_batch(program, run_slr=False, run_str=True)
        transformed = batch.transformed_program
        vm = run_program_files(transformed.files)
        assert vm.ok, vm.fault_detail

        stralloc_c = STRALLOC_C_SOURCE.replace(
            '#include "stralloc.h"',
            STRALLOC_DECLARATIONS)
        native = _compile_and_run(
            tmp_path / name, transformed.files,
            extra_sources={"stralloc_impl.c": stralloc_c})
        assert native == vm.stdout


class TestSLRTransformedNative:
    """SLR-transformed corpus, linked against the glib shim, compiles
    natively and matches the VM."""

    @pytest.mark.parametrize("name", ["zlib", "libpng", "GMP", "libtiff"])
    def test_slr_transformed_native_matches_vm(self, name, corpus,
                                               tmp_path):
        from repro.core.glib_shim import GLIB_SHIM_C_SOURCE
        program = corpus[name]
        batch = apply_batch(program, run_slr=True, run_str=False)
        transformed = batch.transformed_program
        vm = run_program_files(transformed.files)
        assert vm.ok, vm.fault_detail
        native = _compile_and_run(
            tmp_path / name, transformed.files,
            extra_sources={"glib_shim.c": GLIB_SHIM_C_SOURCE})
        assert native == vm.stdout


class TestFullyTransformedNative:
    """SLR + STR combined, with both support libraries linked."""

    @pytest.mark.parametrize("name", ["zlib", "GMP"])
    def test_combined_native_matches_vm(self, name, corpus, tmp_path):
        from repro.core.glib_shim import GLIB_SHIM_C_SOURCE
        program = corpus[name]
        batch = apply_batch(program)
        transformed = batch.transformed_program
        vm = run_program_files(transformed.files)
        assert vm.ok, vm.fault_detail
        stralloc_c = STRALLOC_C_SOURCE.replace(
            '#include "stralloc.h"', STRALLOC_DECLARATIONS)
        native = _compile_and_run(
            tmp_path / name, transformed.files,
            extra_sources={"glib_shim.c": GLIB_SHIM_C_SOURCE,
                           "stralloc_impl.c": stralloc_c})
        assert native == vm.stdout


# ---------------------------------------------------------------- SAMATE

_GETS_SHIM = r"""
#include <stdio.h>
/* glibc removed gets from its headers; provide the classic unbounded
 * semantics so AddressSanitizer can observe the overflow. */
char *gets(char *dst)
{
    int c = getchar();
    unsigned long i = 0;
    if (c == EOF) {
        return 0;
    }
    while (c != EOF && c != '\n') {
        dst[i] = (char)c;
        i = i + 1;
        c = getchar();
    }
    dst[i] = 0;
    return dst;
}
"""


def _asan_available() -> bool:
    if CC is None:
        return False
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        probe = pathlib.Path(tmp) / "probe.c"
        probe.write_text("int main(void){return 0;}\n")
        result = subprocess.run(
            [CC, "-fsanitize=address", "-o", str(pathlib.Path(tmp) / "p"),
             str(probe)], capture_output=True)
        return result.returncode == 0


_HAS_ASAN = _asan_available()


def _compile_asan(workdir: pathlib.Path, sources: dict[str, str]) -> \
        pathlib.Path:
    workdir.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, text in sources.items():
        path = workdir / name
        path.write_text(text, encoding="utf-8")
        if name.endswith(".c"):
            paths.append(str(path))
    binary = workdir / "prog"
    result = subprocess.run(
        [CC, "-fsanitize=address", "-O0", "-w", "-o", str(binary),
         *paths],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr[-3000:]
    return binary


@pytest.mark.skipif(not _HAS_ASAN, reason="AddressSanitizer unavailable")
class TestSamateNative:
    """Sampled SAMATE programs under AddressSanitizer: the bad function
    overflows natively before the transformations and not after —
    ground-truth confirmation of RQ1 outside our own VM."""

    @pytest.mark.parametrize("cwe", [121, 122, 124, 126, 127, 242])
    def test_native_asan_before_and_after(self, cwe, tmp_path):
        from repro.cfront.preprocessor import Preprocessor
        from repro.core.glib_shim import GLIB_SHIM_C_SOURCE
        from repro.core.slr import SafeLibraryReplacement
        from repro.core.strtransform import SafeTypeReplacement
        from repro.eval.samate_runner import stratified_sample
        from repro.samate import generate_cwe

        programs = stratified_sample(generate_cwe(cwe), 2)
        for program in programs:
            pp_text = Preprocessor().preprocess(program.source,
                                                program.name).text
            # Original under ASan: the bad function must be flagged.
            original = _compile_asan(
                tmp_path / f"{program.name}_orig",
                {"prog.c": pp_text, "gets_shim.c": _GETS_SHIM})
            env = {"ASAN_OPTIONS": "detect_leaks=0", "PATH": "/usr/bin"}
            before = subprocess.run([str(original)],
                                    input=program.stdin, env=env,
                                    capture_output=True, timeout=120)
            assert before.returncode != 0, program.name
            assert b"AddressSanitizer" in before.stderr, program.name

            # Transformed under ASan: clean exit, no sanitizer report.
            text = pp_text
            if program.slr_applicable:
                text = SafeLibraryReplacement(text, program.name) \
                    .run().new_text
            if program.str_applicable:
                text = SafeTypeReplacement(text, program.name) \
                    .run().new_text
            stralloc_c = STRALLOC_C_SOURCE.replace(
                '#include "stralloc.h"', STRALLOC_DECLARATIONS)
            fixed = _compile_asan(
                tmp_path / f"{program.name}_fixed",
                {"prog.c": text, "gets_shim.c": _GETS_SHIM,
                 "glib_shim.c": GLIB_SHIM_C_SOURCE,
                 "stralloc_impl.c": stralloc_c})
            after = subprocess.run([str(fixed)], input=program.stdin,
                                   env=env,
                                   capture_output=True, timeout=120)
            assert after.returncode == 0, \
                (program.name, after.stderr[-1500:])
            assert b"AddressSanitizer" not in after.stderr
            assert after.stdout.startswith(before.stdout), program.name
