"""Tests for CFG construction, reaching definitions, and dependence."""

from repro.analysis.cfg import build_cfg
from repro.analysis.dependence import DependenceAnalysis
from repro.analysis.reaching import ReachingDefinitions
from repro.cfront import astnodes as ast

from .helpers import find_calls, local_symbols, parse_and_analyze


def cfg_for(src: str, fn: str = "main"):
    unit, text, pa = parse_and_analyze(src)
    return unit, text, pa, pa.cfg_of(fn)


class TestCFGConstruction:
    def test_straight_line(self):
        _, _, _, cfg = cfg_for(
            "int main(void){ int a = 1; a = 2; return a; }")
        # entry -> decl -> stmt -> return -> exit
        stmt_nodes = [n for n in cfg.nodes if n.stmt is not None]
        assert len(stmt_nodes) == 3
        assert cfg.entry.succs
        assert cfg.exit.preds

    def test_if_both_branches_reach_join(self):
        src = """int main(void){
            int a = 0;
            if (a) { a = 1; } else { a = 2; }
            return a; }"""
        _, _, _, cfg = cfg_for(src)
        cond = next(n for n in cfg.nodes if n.kind == "cond")
        assert len(cond.succs) == 2

    def test_if_without_else_falls_through(self):
        src = "int main(void){ int a=0; if (a) a = 1; return a; }"
        _, _, _, cfg = cfg_for(src)
        cond = next(n for n in cfg.nodes if n.kind == "cond")
        ret = next(n for n in cfg.nodes
                   if isinstance(n.stmt, ast.ReturnStmt))
        # cond reaches return both via the then-branch and directly.
        assert cfg._reaches(cond, ret)

    def test_while_back_edge(self):
        src = "int main(void){ int i=0; while (i<3) { i++; } return i; }"
        _, _, _, cfg = cfg_for(src)
        cond = next(n for n in cfg.nodes if n.kind == "cond")
        body = next(n for n in cfg.nodes
                    if n.stmt is not None and
                    isinstance(n.stmt, ast.ExprStmt))
        assert cond in body.succs       # back edge

    def test_for_loop_structure(self):
        src = "int main(void){ for (int i=0;i<2;i++) {} return 0; }"
        _, _, _, cfg = cfg_for(src)
        conds = [n for n in cfg.nodes if n.kind == "cond"]
        assert len(conds) == 1

    def test_break_exits_loop(self):
        src = """int main(void){
            while (1) { break; }
            return 0; }"""
        _, _, _, cfg = cfg_for(src)
        ret = next(n for n in cfg.nodes
                   if isinstance(n.stmt, ast.ReturnStmt))
        brk = next(n for n in cfg.nodes
                   if isinstance(n.stmt, ast.BreakStmt))
        assert ret in brk.succs

    def test_continue_loops_back(self):
        src = """int main(void){
            int i = 0;
            while (i < 3) { i++; continue; }
            return 0; }"""
        _, _, _, cfg = cfg_for(src)
        cont = next(n for n in cfg.nodes
                    if isinstance(n.stmt, ast.ContinueStmt))
        cond = next(n for n in cfg.nodes if n.kind == "cond")
        assert cond in cont.succs

    def test_return_goes_to_exit(self):
        src = "int main(void){ return 0; int dead; }"
        _, _, _, cfg = cfg_for(src)
        ret = next(n for n in cfg.nodes
                   if isinstance(n.stmt, ast.ReturnStmt))
        assert cfg.exit in ret.succs

    def test_switch_cases_from_cond(self):
        src = """int main(void){
            int x = 1;
            switch (x) { case 1: x = 10; break;
                         case 2: x = 20; break;
                         default: x = 0; }
            return x; }"""
        _, _, _, cfg = cfg_for(src)
        cond = next(n for n in cfg.nodes if n.kind == "cond")
        assert len(cond.succs) == 3     # three labelled entries

    def test_goto_edges(self):
        src = """int main(void){
            int x = 0;
            goto skip;
            x = 99;
            skip: return x; }"""
        _, _, _, cfg = cfg_for(src)
        goto = next(n for n in cfg.nodes
                    if isinstance(n.stmt, ast.GotoStmt))
        label = next(n for n in cfg.nodes
                     if isinstance(n.stmt, ast.LabelStmt))
        assert label in goto.succs

    def test_node_for_nested_expression(self):
        src = "int main(void){ int a = 1; a = a + 2; return a; }"
        unit, _, _, cfg = cfg_for(src)
        assign = next(n for n in unit.walk()
                      if isinstance(n, ast.Assignment))
        node = cfg.node_for(assign)
        assert node is not None
        assert isinstance(node.stmt, ast.ExprStmt)


class TestReachingDefinitions:
    def test_unique_def_reaches_use(self):
        src = """
        #include <string.h>
        int main(void){
            char buf[8];
            char *p = buf;
            strcpy(p, "x");
            return 0; }"""
        unit, _, pa = parse_and_analyze(src)
        rd = pa.reaching_of("main")
        call = find_calls(unit, "strcpy")[0]
        p = local_symbols(pa, "main")["p"]
        definition = rd.unique_strong_def(call, p)
        assert definition is not None
        assert definition.kind == "decl"

    def test_two_defs_both_reach_after_branch(self):
        src = """
        int main(void){
            int cond = 1;
            char *p = 0;
            if (cond) { p = (char*)1; } else { p = (char*)2; }
            return (int)(long)p; }"""
        unit, _, pa = parse_and_analyze(src)
        rd = pa.reaching_of("main")
        ret = unit.function("main").body.items[-1]
        p = local_symbols(pa, "main")["p"]
        defs = rd.defs_reaching(ret, p)
        assigns = [d for d in defs if d.kind == "direct"]
        assert len(assigns) == 2
        assert rd.unique_strong_def(ret, p) is None

    def test_redefinition_kills_previous(self):
        src = """
        int main(void){
            char *p = (char*)1;
            p = (char*)2;
            return (int)(long)p; }"""
        unit, _, pa = parse_and_analyze(src)
        rd = pa.reaching_of("main")
        ret = unit.function("main").body.items[-1]
        p = local_symbols(pa, "main")["p"]
        definition = rd.unique_strong_def(ret, p)
        assert definition is not None
        assert definition.kind == "direct"

    def test_loop_defs_merge(self):
        src = """
        int main(void){
            int x = 0;
            while (x < 3) { x = x + 1; }
            return x; }"""
        unit, _, pa = parse_and_analyze(src)
        rd = pa.reaching_of("main")
        ret = unit.function("main").body.items[-1]
        x = local_symbols(pa, "main")["x"]
        defs = rd.defs_reaching(ret, x)
        assert len(defs) == 2       # initial decl and loop assignment

    def test_param_definition(self):
        src = "int f(char *p){ return (int)(long)p; }"
        unit, _, pa = parse_and_analyze(src)
        rd = pa.reaching_of("f")
        ret = unit.function("f").body.items[0]
        p = unit.function("f").params[0].symbol
        defs = rd.defs_reaching(ret, p)
        assert len(defs) == 1
        assert defs[0].kind == "param"
        # Param defs are not "unique strong defs" for Algorithm 1.
        assert rd.unique_strong_def(ret, p) is None

    def test_struct_member_defs(self):
        src = """
        struct holder { char *buf; int n; };
        int main(void){
            struct holder h;
            h.buf = (char*)1;
            h.n = 5;
            return h.n; }"""
        unit, _, pa = parse_and_analyze(src)
        rd = pa.reaching_of("main")
        ret = unit.function("main").body.items[-1]
        h = local_symbols(pa, "main")["h"]
        buf_defs = rd.defs_reaching(ret, h, member="buf")
        assert any(d.member == "buf" for d in buf_defs)

    def test_whole_struct_def_kills_member(self):
        src = """
        struct holder { char *buf; };
        int main(void){
            struct holder h, other;
            h.buf = (char*)1;
            h = other;
            return 0; }"""
        unit, _, pa = parse_and_analyze(src)
        rd = pa.reaching_of("main")
        ret = unit.function("main").body.items[-1]
        h = local_symbols(pa, "main")["h"]
        member_defs = rd.defs_reaching(ret, h, member="buf")
        # The whole-struct assignment supersedes (kills) the member def.
        assert all(d.member is None for d in member_defs)

    def test_address_taken_weak_def(self):
        src = """
        void fill(char **out);
        int main(void){
            char *p = (char*)1;
            fill(&p);
            return (int)(long)p; }"""
        unit, _, pa = parse_and_analyze(src)
        rd = pa.reaching_of("main")
        ret = unit.function("main").body.items[-1]
        p = local_symbols(pa, "main")["p"]
        # The weak def through &p spoils uniqueness.
        assert rd.unique_strong_def(ret, p) is None


class TestDependence:
    def test_data_dependence(self):
        src = """
        int main(void){
            int a = 1;
            int b = a + 2;
            return b; }"""
        unit, _, pa = parse_and_analyze(src)
        dep = pa.dependence_of("main")
        cfg = pa.cfg_of("main")
        b_decl = next(n for n in cfg.nodes
                      if n.stmt is not None and
                      isinstance(n.stmt, ast.Declaration) and
                      n.stmt.declarators[0].name == "b")
        deps = dep.data_dependences(b_decl)
        assert any(d.symbol.name == "a" for d in deps)

    def test_control_dependence_on_if(self):
        src = """
        int main(void){
            int c = 1;
            int x = 0;
            if (c) { x = 1; }
            return x; }"""
        unit, _, pa = parse_and_analyze(src)
        dep = pa.dependence_of("main")
        cfg = pa.cfg_of("main")
        cond = next(n for n in cfg.nodes if n.kind == "cond")
        then_stmt = next(n for n in cfg.nodes
                         if n.stmt is not None and
                         isinstance(n.stmt, ast.ExprStmt))
        assert dep.is_control_dependent(then_stmt, cond)

    def test_no_control_dependence_for_straight_line(self):
        src = "int main(void){ int a = 1; return a; }"
        unit, _, pa = parse_and_analyze(src)
        dep = pa.dependence_of("main")
        cfg = pa.cfg_of("main")
        for node in cfg.nodes:
            if node.stmt is not None:
                assert not dep.control_dependencies(node)

    def test_def_use_chains(self):
        src = """
        int main(void){
            int a = 5;
            int b = a;
            int c = a;
            return b + c; }"""
        unit, _, pa = parse_and_analyze(src)
        dep = pa.dependence_of("main")
        chains = dep.def_use_chains()
        a_def = next(d for d in pa.reaching_of("main").definitions
                     if d.symbol.name == "a")
        assert len(chains[a_def]) >= 2
