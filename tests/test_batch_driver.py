"""Tests for the batch driver (SourceProgram / apply_batch) and the
literal/headers plumbing they rest on."""

import pytest

from repro.cfront.headers import BUILTIN_HEADERS
from repro.cfront.literals import (
    LiteralError, decode_escapes, parse_char_constant, parse_number,
    parse_string_literal,
)
from repro.core.batch import SourceProgram, apply_batch
from repro.core.transform import SiteOutcome, TransformResult


class TestSourceProgram:
    def test_kloc_excludes_blank_lines(self):
        program = SourceProgram("p", {"a.c": "int x;\n\n\nint y;\n"})
        assert program.kloc() == 0.002

    def test_preprocess_uses_private_headers(self):
        program = SourceProgram(
            "p", {"a.c": '#include "mine.h"\nint v = MINE;\n'},
            headers={"mine.h": "#define MINE 9\n"})
        pp = program.preprocess()
        assert "int v = 9;" in pp.files["a.c"]
        assert pp.preprocessed

    def test_preprocess_idempotent(self):
        program = SourceProgram("p", {"a.c": "int x;\n"},
                                preprocessed=True)
        assert program.preprocess() is program

    def test_predefined_macros(self):
        program = SourceProgram(
            "p", {"a.c": "#ifdef FEATURE\nint on;\n#endif\n"},
            predefined={"FEATURE": "1"})
        assert "int on;" in program.preprocess().files["a.c"]

    def test_pp_kloc_larger_with_includes(self):
        program = SourceProgram(
            "p", {"a.c": "#include <stdio.h>\nint x;\n"})
        assert program.pp_kloc() > program.kloc()


class TestApplyBatch:
    PROGRAM = SourceProgram("demo", {
        "lib.c": "#include <string.h>\n#include <stdio.h>\n"
                 "void greet(void) {\n"
                 "    char msg[32];\n"
                 "    strcpy(msg, \"hello\");\n"
                 "    strcat(msg, \" world\");\n"
                 "    printf(\"%s\\n\", msg);\n"
                 "}\n",
        "main.c": "void greet(void);\n"
                  "int main(void) { greet(); return 0; }\n",
    })

    def test_slr_only(self):
        batch = apply_batch(self.PROGRAM, run_slr=True, run_str=False)
        assert batch.candidates("SLR") == 2
        assert batch.transformed("SLR") == 2
        assert batch.candidates("STR") == 0

    def test_str_only(self):
        batch = apply_batch(self.PROGRAM, run_slr=False, run_str=True)
        assert batch.candidates("SLR") == 0
        assert batch.candidates("STR") == 1     # msg

    def test_transformed_program_round_trips(self):
        from repro.vm.interp import run_program_files
        batch = apply_batch(self.PROGRAM)
        result = run_program_files(batch.transformed_program.files)
        assert result.ok
        assert result.stdout_text == "hello world\n"

    def test_percent_and_reasons(self):
        batch = apply_batch(self.PROGRAM, run_str=False)
        assert batch.percent("SLR") == 100.0
        assert batch.failures_by_reason("SLR") == {}

    def test_by_target(self):
        batch = apply_batch(self.PROGRAM, run_str=False)
        assert batch.by_target("SLR") == {"strcpy": (1, 1),
                                          "strcat": (1, 1)}

    def test_transformed_program_is_marked_preprocessed(self):
        batch = apply_batch(self.PROGRAM)
        assert batch.transformed_program.preprocessed
        assert batch.transformed_program.name == "demo+fixed"


class TestTransformResultAccounting:
    def _result(self, outcomes):
        return TransformResult("SLR", "orig", "new", outcomes)

    def _outcome(self, target, ok, reason=""):
        return SiteOutcome("SLR", target, "f", 1,
                           "transformed" if ok else "precondition-failed",
                           reason)

    def test_counts(self):
        result = self._result([self._outcome("strcpy", True),
                               self._outcome("strcpy", False, "aliased")])
        assert result.candidates == 2
        assert result.transformed_count == 1
        assert result.failed_count == 1
        assert result.percent_transformed == 50.0

    def test_empty(self):
        result = self._result([])
        assert result.percent_transformed == 0.0
        assert result.failures_by_reason() == {}

    def test_changed_flag(self):
        assert self._result([]).changed      # orig != new
        same = TransformResult("SLR", "t", "t", [])
        assert not same.changed


class TestLiterals:
    def test_decode_simple_escapes(self):
        assert decode_escapes(r"a\nb\t") == b"a\nb\t"

    def test_decode_hex_and_octal(self):
        assert decode_escapes(r"\x41\102\0") == b"AB\x00"

    def test_char_constants(self):
        assert parse_char_constant("'A'") == 65
        assert parse_char_constant(r"'\n'") == 10
        assert parse_char_constant(r"'\xff'") == 255
        assert parse_char_constant("L'a'") == 97

    def test_multichar_constant_folds(self):
        assert parse_char_constant("'ab'") == (ord("a") << 8) | ord("b")

    def test_bad_char_constant(self):
        with pytest.raises(LiteralError):
            parse_char_constant("''")

    def test_string_literal(self):
        assert parse_string_literal('"hi\\n"') == b"hi\n"

    def test_parse_number_integers(self):
        assert parse_number("42") == (42, False, False, 0)
        assert parse_number("0x1F") == (31, False, False, 0)
        assert parse_number("0755") == (493, False, False, 0)
        assert parse_number("7U")[2] is True
        assert parse_number("7UL")[3] == 1
        assert parse_number("7LL")[3] == 2

    def test_parse_number_hex_f_digits(self):
        # 'f' is a digit here, not a float suffix.
        assert parse_number("0xffffffffUL")[0] == 0xFFFFFFFF

    def test_parse_number_floats(self):
        value, is_float, _, _ = parse_number("3.5")
        assert is_float and value == 3.5
        assert parse_number("1e3")[0] == 1000.0
        assert parse_number("2.5f")[1] is True

    def test_parse_number_octal_zero(self):
        assert parse_number("0")[0] == 0


class TestBuiltinHeaders:
    def test_core_headers_present(self):
        for name in ("stdio.h", "stdlib.h", "string.h", "stddef.h",
                     "stdarg.h", "glib.h", "stralloc.h", "assert.h",
                     "limits.h", "ctype.h"):
            assert name in BUILTIN_HEADERS

    def test_all_headers_preprocess_and_parse(self):
        from repro.cfront.parser import preprocess_and_parse
        for name in BUILTIN_HEADERS:
            unit, _ = preprocess_and_parse(f"#include <{name}>\nint x;\n")
            assert unit.items      # at least the trailing declaration

    def test_stralloc_header_matches_runtime_layout(self):
        from repro.cfront.parser import preprocess_and_parse
        from repro.vm.stralloc_rt import STRALLOC_SIZE
        unit, _ = preprocess_and_parse(
            "#include <stralloc.h>\nstralloc sa;\n")
        decl = [i for i in unit.items
                if hasattr(i, "declarators") and i.declarators
                and i.declarators[0].name == "sa"][0]
        assert decl.declarators[0].ctype.sizeof() == STRALLOC_SIZE


class TestJobKnobs:
    def test_default_jobs_reads_env(self, monkeypatch):
        from repro.core.batch import default_jobs
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert default_jobs() == min(2, __import__("os").cpu_count() or 1)

    def test_default_jobs_capped_at_cpu_count(self, monkeypatch):
        import os

        from repro.core.batch import default_jobs
        monkeypatch.setenv("REPRO_JOBS", "100000")
        assert default_jobs() == (os.cpu_count() or 1)

    def test_default_jobs_rejects_non_integer(self, monkeypatch):
        from repro.core.batch import default_jobs
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="non-integer REPRO_JOBS"):
            assert default_jobs() == 1

    def test_default_jobs_rejects_non_positive(self, monkeypatch):
        from repro.core.batch import default_jobs
        for bad in ("0", "-3"):
            monkeypatch.setenv("REPRO_JOBS", bad)
            with pytest.warns(RuntimeWarning, match="must be >= 1"):
                assert default_jobs() == 1

    def test_task_timeout_knob(self, monkeypatch):
        from repro.core.batch import task_timeout
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert task_timeout() is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "120")
        assert task_timeout() == 120.0
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert task_timeout() is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        with pytest.warns(RuntimeWarning):
            assert task_timeout() is None

    def test_task_retries_knob(self, monkeypatch):
        from repro.core.batch import task_retries
        monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
        assert task_retries() == 1
        monkeypatch.setenv("REPRO_TASK_RETRIES", "3")
        assert task_retries() == 3
        monkeypatch.setenv("REPRO_TASK_RETRIES", "-2")
        assert task_retries() == 0
        monkeypatch.setenv("REPRO_TASK_RETRIES", "lots")
        with pytest.warns(RuntimeWarning):
            assert task_retries() == 1
