"""Tests for the VM memory model."""

import pytest

from repro.vm.memory import (
    Memory, MemoryFault, NULL, Pointer, decode_pointer, encode_pointer,
    usable_size,
)


@pytest.fixture
def mem():
    return Memory()


class TestAllocation:
    def test_alloc_returns_distinct_blocks(self, mem):
        a = mem.alloc(8, "stack", "a")
        b = mem.alloc(8, "stack", "b")
        assert a.block != b.block

    def test_block_zero_reserved_for_null(self, mem):
        a = mem.alloc(1, "stack", "a")
        assert a.block != 0
        assert NULL.is_null

    def test_alloc_bytes(self, mem):
        p = mem.alloc_bytes(b"hello", "string", "s")
        assert mem.read_bytes(p, 5) == b"hello"

    def test_heap_rounds_to_usable_size(self, mem):
        p = mem.alloc_heap(10)
        assert mem.usable_size_of(p) == 16

    def test_usable_size_function(self):
        assert usable_size(1) == 8
        assert usable_size(8) == 8
        assert usable_size(9) == 16
        assert usable_size(0) == 8

    def test_negative_size_rejected(self, mem):
        with pytest.raises(MemoryFault):
            mem.alloc(-1, "stack", "bad")

    def test_zero_initialized(self, mem):
        p = mem.alloc(16, "stack", "z")
        assert mem.read_bytes(p, 16) == bytes(16)


class TestBoundsChecking:
    def test_in_bounds_write_read(self, mem):
        p = mem.alloc(4, "stack", "b")
        mem.write_bytes(p.moved(3), b"X")
        assert mem.read_bytes(p.moved(3), 1) == b"X"

    def test_overflow_write(self, mem):
        p = mem.alloc(4, "stack", "b")
        with pytest.raises(MemoryFault) as exc:
            mem.write_bytes(p.moved(4), b"X")
        assert exc.value.kind == "buffer-overflow"

    def test_overread(self, mem):
        p = mem.alloc(4, "stack", "b")
        with pytest.raises(MemoryFault) as exc:
            mem.read_bytes(p.moved(4), 1)
        assert exc.value.kind == "buffer-overread"

    def test_underwrite(self, mem):
        p = mem.alloc(4, "stack", "b")
        with pytest.raises(MemoryFault) as exc:
            mem.write_bytes(p.moved(-1), b"X")
        assert exc.value.kind == "buffer-underwrite"

    def test_underread(self, mem):
        p = mem.alloc(4, "stack", "b")
        with pytest.raises(MemoryFault) as exc:
            mem.read_bytes(p.moved(-1), 1)
        assert exc.value.kind == "buffer-underread"

    def test_straddling_write(self, mem):
        p = mem.alloc(4, "stack", "b")
        with pytest.raises(MemoryFault):
            mem.write_bytes(p.moved(2), b"abc")

    def test_null_dereference(self, mem):
        with pytest.raises(MemoryFault) as exc:
            mem.read_bytes(NULL, 1)
        assert exc.value.kind == "null-dereference"

    def test_wild_pointer(self, mem):
        with pytest.raises(MemoryFault) as exc:
            mem.read_bytes(Pointer(9999, 0), 1)
        assert exc.value.kind == "wild-pointer"


class TestFree:
    def test_use_after_free(self, mem):
        p = mem.alloc_heap(8)
        mem.free(p)
        with pytest.raises(MemoryFault) as exc:
            mem.read_bytes(p, 1)
        assert exc.value.kind == "use-after-free"

    def test_double_free(self, mem):
        p = mem.alloc_heap(8)
        mem.free(p)
        with pytest.raises(MemoryFault) as exc:
            mem.free(p)
        assert exc.value.kind == "double-free"

    def test_free_of_stack_block(self, mem):
        p = mem.alloc(8, "stack", "s")
        with pytest.raises(MemoryFault) as exc:
            mem.free(p)
        assert exc.value.kind == "invalid-free"

    def test_free_of_interior_pointer(self, mem):
        p = mem.alloc_heap(8)
        with pytest.raises(MemoryFault):
            mem.free(p.moved(2))

    def test_free_null_is_noop(self, mem):
        mem.free(NULL)

    def test_live_heap_counter(self, mem):
        a = mem.alloc_heap(8)
        b = mem.alloc_heap(8)
        assert mem.live_heap_blocks == 2
        mem.free(a)
        assert mem.live_heap_blocks == 1


class TestUsableSizeQueries:
    def test_usable_size_of_heap(self, mem):
        p = mem.alloc_heap(20)
        assert mem.usable_size_of(p) == 24

    def test_usable_size_of_stack_faults(self, mem):
        # The paper: malloc_usable_size on a static buffer segfaults.
        p = mem.alloc(8, "stack", "s")
        with pytest.raises(MemoryFault) as exc:
            mem.usable_size_of(p)
        assert exc.value.kind == "invalid-usable-size"


class TestIntAccess:
    def test_roundtrip_unsigned(self, mem):
        p = mem.alloc(8, "stack", "v")
        mem.write_int(p, 0xDEADBEEF, 4)
        assert mem.read_int(p, 4, signed=False) == 0xDEADBEEF

    def test_roundtrip_signed(self, mem):
        p = mem.alloc(4, "stack", "v")
        mem.write_int(p, -42, 4)
        assert mem.read_int(p, 4, signed=True) == -42

    def test_truncation_on_store(self, mem):
        p = mem.alloc(1, "stack", "c")
        mem.write_int(p, 0x1FF, 1)
        assert mem.read_int(p, 1, signed=False) == 0xFF

    def test_little_endian(self, mem):
        p = mem.alloc(4, "stack", "v")
        mem.write_int(p, 0x01020304, 4)
        assert mem.read_bytes(p, 4) == b"\x04\x03\x02\x01"


class TestCString:
    def test_read_terminated(self, mem):
        p = mem.alloc_bytes(b"abc\x00xyz", "string", "s")
        assert mem.read_cstring(p) == b"abc"

    def test_read_from_offset(self, mem):
        p = mem.alloc_bytes(b"abc\x00", "string", "s")
        assert mem.read_cstring(p.moved(1)) == b"bc"

    def test_unterminated_faults(self, mem):
        p = mem.alloc_bytes(b"abcd", "string", "s")
        with pytest.raises(MemoryFault) as exc:
            mem.read_cstring(p)
        assert exc.value.kind == "buffer-overread"


class TestPointerEncoding:
    def test_roundtrip(self):
        p = Pointer(42, 17)
        assert decode_pointer(encode_pointer(p)) == p

    def test_null_roundtrip(self):
        assert encode_pointer(NULL) == 0
        assert decode_pointer(0) == NULL

    def test_negative_offset_roundtrip(self):
        p = Pointer(7, -3)
        assert decode_pointer(encode_pointer(p)) == p

    def test_plain_int_not_decoded(self):
        assert decode_pointer(12345) is None

    def test_memcopy_and_memset(self, mem):
        a = mem.alloc_bytes(b"12345678", "stack", "a")
        b = mem.alloc(8, "stack", "b")
        mem.memcopy(b, a, 8)
        assert mem.read_bytes(b, 8) == b"12345678"
        mem.memset(b, ord("z"), 4)
        assert mem.read_bytes(b, 8) == b"zzzz5678"
