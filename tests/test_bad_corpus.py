"""End-to-end: the malformed corpus under ``examples/c/bad`` flows
through ``repro batch`` producing diagnostics, not tracebacks, while the
well-formed sibling still transforms."""

import json
import os

import pytest

from repro.cli import main

BAD_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                       "examples", "c", "bad")

#: filename -> (expected status, expected failing stage or None)
EXPECTED = {
    "good_sibling.c": ("ok", None),
    "syntax_error.c": ("failed", "parse"),
    "missing_header.c": ("failed", "preprocess"),
    "garbage.c": ("failed", "preprocess"),
    "unsupported.c": ("failed", "parse"),
}


@pytest.fixture()
def run_batch(tmp_path, capsys):
    def run(*extra_args):
        diag_path = tmp_path / "diagnostics.json"
        code = main(["batch", BAD_DIR, "--jobs", "2",
                     "--diagnostics-json", str(diag_path), *extra_args])
        captured = capsys.readouterr()
        with open(diag_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        return code, captured, payload
    return run


class TestBadCorpus:
    def test_corpus_files_exist(self):
        assert sorted(os.listdir(BAD_DIR)) == sorted(EXPECTED)

    def test_batch_contains_failures(self, run_batch):
        code, captured, payload = run_batch()
        # Non-strict: contained failures do not fail the run.
        assert code == 0
        # No traceback ever reaches the user-facing output.
        assert "Traceback" not in captured.out
        assert "Traceback" not in captured.err
        assert payload["statuses"] == {
            name: status for name, (status, _stage) in EXPECTED.items()}
        by_file = {d["filename"]: d for d in payload["diagnostics"]}
        for name, (_status, stage) in EXPECTED.items():
            if stage is None:
                assert name not in by_file
            else:
                assert by_file[name]["stage"] == stage
                assert by_file[name]["message"]
                assert by_file[name]["location"].startswith(name)

    def test_good_sibling_still_transforms(self, run_batch):
        _code, captured, _payload = run_batch()
        # The well-formed sibling's unsafe calls were rewritten.
        assert "[FIXED] SLR good_sibling.c" in captured.err

    def test_strict_flag_fails_the_run(self, run_batch):
        code, _captured, payload = run_batch("--strict")
        assert code == 1
        assert payload["status_counts"]["failed"] == 4
        assert payload["status_counts"]["ok"] == 1

    def test_diagnostics_table_rendered(self, run_batch):
        _code, captured, _payload = run_batch()
        assert "failures by stage:" in captured.out
        assert "ParseError" in captured.out
        assert "PreprocessorError" in captured.out
