"""Tests for the SAFE TYPE REPLACEMENT transformation (Table II patterns)."""

from repro.cfront.parser import parse_translation_unit
from repro.core.strtransform import (
    REPLACEMENT_PATTERNS, SafeTypeReplacement,
)

from .helpers import pp, run


def strx(src: str):
    return SafeTypeReplacement(pp(src), "test.c").run()


PRELUDE = ("#include <stdio.h>\n#include <string.h>\n"
           "#include <stdlib.h>\n")


class TestPreconditions:
    def test_global_not_candidate(self):
        result = strx(PRELUDE + """
        char global_buf[64];
        int main(void){ global_buf[0] = 'x'; return 0; }""")
        assert all(o.target != "global_buf" for o in result.outcomes)

    def test_parameter_not_candidate(self):
        result = strx(PRELUDE + """
        void f(char *param){ param[0] = 'x'; }""")
        assert all(o.target != "param" for o in result.outcomes)

    def test_local_pointer_is_candidate(self):
        result = strx(PRELUDE + """
        int main(void){ char *p = "abc"; return 0; }""")
        assert any(o.target == "p" for o in result.outcomes)

    def test_local_array_is_candidate(self):
        result = strx(PRELUDE + """
        int main(void){ char buf[16]; buf[0] = 'x'; return 0; }""")
        assert any(o.target == "buf" and o.transformed
                   for o in result.outcomes)

    def test_non_char_pointer_not_candidate(self):
        result = strx(PRELUDE + """
        int main(void){ int *ip = 0; return 0; }""")
        assert all(o.target != "ip" for o in result.outcomes)

    def test_unsupported_libfn_fails(self):
        result = strx(PRELUDE + """
        int main(void){
            char buf[16];
            fgets(buf, 16, stdin);
            return 0; }""")
        outcome = next(o for o in result.outcomes if o.target == "buf")
        assert not outcome.transformed
        assert outcome.reason == "unsupported-libfn"

    def test_callee_may_write_fails(self):
        result = strx(PRELUDE + """
        void fill(char *p){ p[0] = 'x'; }
        int main(void){
            char buf[16];
            fill(buf);
            return 0; }""")
        outcome = next(o for o in result.outcomes if o.target == "buf")
        assert outcome.reason == "callee-may-write"

    def test_readonly_callee_passes(self):
        result = strx(PRELUDE + """
        int peek(const char *p){ return p[0]; }
        int main(void){
            char buf[16];
            buf[0] = 'q';
            peek(buf);
            return 0; }""")
        outcome = next(o for o in result.outcomes if o.target == "buf")
        assert outcome.transformed
        assert "peek(buf->s)" in result.new_text

    def test_address_taken_fails(self):
        result = strx(PRELUDE + """
        int main(void){
            char buf[16];
            char **pp = &buf;
            return 0; }""")
        outcome = next(o for o in result.outcomes if o.target == "buf")
        assert outcome.reason == "address-taken"

    def test_returned_buffer_fails(self):
        result = strx(PRELUDE + """
        char *make(void){
            char *p = malloc(8);
            return p; }""")
        outcome = next(o for o in result.outcomes if o.target == "p")
        assert outcome.reason == "returned"

    def test_group_fails_together(self):
        # q is fine alone, but is assigned from p which escapes.
        result = strx(PRELUDE + """
        void writeit(char *x) { x[0] = 'w'; }
        int main(void){
            char *p = malloc(8);
            char *q;
            q = p;
            writeit(p);
            return 0; }""")
        p_out = next(o for o in result.outcomes if o.target == "p")
        q_out = next(o for o in result.outcomes if o.target == "q")
        assert p_out.reason == "callee-may-write"
        assert q_out.reason in ("group-member-failed", "callee-may-write")


class TestDeclarationRewrite:
    def test_pattern2_simple_pointer(self):
        result = strx(PRELUDE + """
        int main(void){ char *data; data = "x"; return 0; }""")
        assert "stralloc *data;" in result.new_text
        assert "stralloc ssss_data = {0,0,0};" in result.new_text
        assert "data = &ssss_data;" in result.new_text

    def test_array_capacity_recorded(self):
        result = strx(PRELUDE + """
        int main(void){ char buf[1024]; buf[0] = 'a'; return 0; }""")
        assert "buf->a = 1024;" in result.new_text

    def test_multi_declarator_zlib_example(self):
        result = strx(PRELUDE + """
        int main(void){
            char buf[1024];
            char *infile;
            infile = buf;
            strcat(infile, ".gz");
            printf("%s\\n", infile->s ? "" : "");
            return 0; }""")
        # both declared as stralloc pointers, assignment unchanged
        assert "infile = buf;" in result.new_text
        assert 'stralloc_cats(infile, ".gz")' in result.new_text

    def test_string_initializer(self):
        result = strx(PRELUDE + """
        int main(void){ char *s = "hello"; return 0; }""")
        assert 'stralloc_copybuf(s, "hello", strlen("hello"));' in \
            result.new_text

    def test_malloc_initializer(self):
        result = strx(PRELUDE + """
        int main(void){ char *p = malloc(64); p[0] = 'a'; return 0; }""")
        assert "p->s = malloc(64);" in result.new_text
        assert "p->f = p->s;" in result.new_text
        assert "p->a = 64;" in result.new_text


class TestUsePatterns:
    def test_pattern3_allocation_statement(self):
        result = strx(PRELUDE + """
        int main(void){ char *p; p = malloc(128); p[0] = 'x';
            return 0; }""")
        assert "p->s = malloc(128)" in result.new_text

    def test_pattern4_null_assignment_unchanged(self):
        result = strx(PRELUDE + """
        int main(void){ char *p; p = NULL; return 0; }""")
        assert "p = ((void*)0)" in result.new_text or \
            "p = NULL" in result.new_text

    def test_pattern8_increment(self):
        result = strx(PRELUDE + """
        int main(void){ char *p = "ab"; p++; return 0; }""")
        assert "stralloc_increment_by(p, 1)" in result.new_text

    def test_pattern9_decrement_compound(self):
        result = strx(PRELUDE + """
        int main(void){ char *p = "abcd"; p += 2; p -= 1; return 0; }""")
        assert "stralloc_increment_by(p, 2)" in result.new_text
        assert "stralloc_decrement_by(p, 1)" in result.new_text

    def test_pattern10_sizeof(self):
        result = strx(PRELUDE + """
        int main(void){
            char buf[8];
            buf[0] = 'x';
            if (sizeof(buf) < 3) return 1;
            return 0; }""")
        assert "buf->a < 3" in result.new_text

    def test_pattern11_array_read(self):
        result = strx(PRELUDE + """
        int main(void){ char *p = "abc"; char c; c = p[1]; return c; }""")
        assert "stralloc_get_dereferenced_char_at(p, 1)" in result.new_text

    def test_pattern12_array_write(self):
        result = strx(PRELUDE + """
        int main(void){ char buf[4]; buf[1] = 'b'; return 0; }""")
        assert "stralloc_dereference_replace_by(buf, 1, 'b')" in \
            result.new_text

    def test_pattern13_element_to_element(self):
        result = strx(PRELUDE + """
        int main(void){
            char a[4], b[4];
            b[0] = 'q';
            a[0] = b[0];
            return 0; }""")
        assert "stralloc_dereference_replace_by(a, 0, " \
               "stralloc_get_dereferenced_char_at(b, 0))" in result.new_text

    def test_pattern14_deref_write(self):
        result = strx(PRELUDE + """
        int main(void){ char buf[8]; *(buf+4) = 'a'; return 0; }""")
        assert "stralloc_dereference_replace_by(buf, 4, 'a')" in \
            result.new_text

    def test_pattern15_deref_write_binary_rhs(self):
        result = strx(PRELUDE + """
        int main(void){
            char buf[8];
            int a = 1, b = 2;
            *(buf+1) = a + b;
            return 0; }""")
        assert "stralloc_dereference_replace_by(buf, 1, a + b)" in \
            result.new_text

    def test_pattern16_strlen(self):
        result = strx(PRELUDE + """
        int main(void){
            char *s = "abc";
            return (int)strlen(s); }""")
        assert "s->len" in result.new_text

    def test_pattern16_memset(self):
        result = strx(PRELUDE + """
        int main(void){ char d[100]; memset(d, 'C', 100); return 0; }""")
        assert "stralloc_memset(d, 'C', 100)" in result.new_text

    def test_pattern17_user_function(self):
        result = strx(PRELUDE + """
        int use(const char *p){ return p[0]; }
        int main(void){ char *s = "abc"; return use(s); }""")
        assert "use(s->s)" in result.new_text

    def test_pattern18_condition(self):
        result = strx(PRELUDE + """
        int main(void){
            char buf[4];
            buf[0] = 'a';
            if (buf[0] == 'a') return 1;
            return 0; }""")
        assert "if (stralloc_get_dereferenced_char_at(buf, 0) == 'a')" in \
            result.new_text

    def test_deref_read(self):
        result = strx(PRELUDE + """
        int main(void){ char *p = "xy"; return *p; }""")
        assert "stralloc_get_dereferenced_char_at(p, 0)" in result.new_text

    def test_strcpy_between_candidates(self):
        result = strx(PRELUDE + """
        int main(void){
            char a[8], b[8];
            b[0] = 'k'; b[1] = '\\0';
            strcpy(a, b);
            return 0; }""")
        assert "stralloc_copybuf(a, b->s, b->len)" in result.new_text

    def test_printf_passes_data_pointer(self):
        result = strx(PRELUDE + """
        int main(void){
            char *msg = "hi";
            printf("%s\\n", msg);
            return 0; }""")
        assert 'printf("%s\\n", msg->s)' in result.new_text


class TestBehaviour:
    def test_output_reparses(self):
        result = strx(PRELUDE + """
        int main(void){
            char buf[16];
            char *p = "seed";
            strcpy(buf, p);
            buf[2] = 'X';
            printf("%s\\n", buf);
            return 0; }""")
        parse_translation_unit(result.new_text)

    def test_normal_behaviour_preserved(self):
        src = PRELUDE + """
        int main(void){
            char buf[16];
            strcpy(buf, "hello");
            buf[0] = 'H';
            printf("%s %d\\n", buf, (int)strlen(buf));
            return 0; }"""
        before = run(src)
        result = strx(src)
        after = run(result.new_text, preprocess=False)
        assert before.ok and after.ok
        assert before.stdout == after.stdout == b"Hello 5\n"

    def test_overread_fixed(self):
        src = PRELUDE + """
        int main(void){
            char data[50];
            char dest[100];
            memset(dest, 'C', 100);
            data[0] = dest[100];
            printf("ok\\n");
            return 0; }"""
        before = run(src)
        assert before.fault == "buffer-overread"
        result = strx(src)
        after = run(result.new_text, preprocess=False)
        assert after.ok
        assert after.stdout == b"ok\n"

    def test_overwrite_fixed(self):
        src = PRELUDE + """
        int main(void){
            char small[4];
            int i;
            for (i = 0; i < 10; i++) {
                small[i] = 'A';
            }
            printf("done\\n");
            return 0; }"""
        before = run(src)
        assert before.fault == "buffer-overflow"
        result = strx(src)
        after = run(result.new_text, preprocess=False)
        assert after.ok

    def test_underwrite_fixed(self):
        src = PRELUDE + """
        int main(void){
            char buf[8];
            char *p = buf;
            p--;
            *p = 'x';
            printf("done\\n");
            return 0; }"""
        before = run(src)
        assert before.fault in ("buffer-underwrite", "buffer-underread")
        result = strx(src)
        after = run(result.new_text, preprocess=False)
        # The checked decrement refuses to move before the base: the
        # overflow is gone (the operation reports failure instead).
        assert after.fault in (None, "stralloc-bounds")

    def test_table2_has_18_patterns(self):
        assert len(REPLACEMENT_PATTERNS) == 18


class TestSiteAccounting:
    def test_percent_of_passed_preconditions_is_100(self):
        # Paper Table VI: 100% of buffers that pass preconditions are
        # replaced (transformation either fully applies or fully declines).
        result = strx(PRELUDE + """
        void writer(char *w){ w[0] = 'w'; }
        int main(void){
            char good[8];
            char *bad = malloc(4);
            good[0] = 'g';
            writer(bad);
            return 0; }""")
        passed = [o for o in result.outcomes if o.transformed]
        failed = [o for o in result.outcomes if not o.transformed]
        assert len(passed) == 1 and passed[0].target == "good"
        assert len(failed) == 1 and failed[0].target == "bad"


class TestPattern7Casts:
    def test_assignment_from_cast_string_literal(self):
        result = strx(PRELUDE + """
        int main(void){
            char *p;
            p = (char *)"cast text";
            printf("%s\\n", p);
            return 0; }""")
        outcome = next(o for o in result.outcomes if o.target == "p")
        assert outcome.transformed
        assert 'stralloc_copybuf(p, "cast text", strlen("cast text"))' in \
            result.new_text

    def test_declaration_with_cast_malloc(self):
        result = strx(PRELUDE + """
        int main(void){
            char *p = (char *)malloc(48);
            p[0] = 'k';
            printf("%c\\n", p[0]);
            return 0; }""")
        outcome = next(o for o in result.outcomes if o.target == "p")
        assert outcome.transformed
        assert "p->s = malloc(48);" in result.new_text

    def test_cast_behaviour_preserved(self):
        src = PRELUDE + """
        int main(void){
            char *p;
            p = (char *)"hello";
            printf("%s %d\\n", p, (int)strlen(p));
            return 0; }"""
        before = run(src)
        result = strx(src)
        after = run(result.new_text, preprocess=False)
        assert before.ok and after.ok
        assert before.stdout == after.stdout
