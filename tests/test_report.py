"""Smoke tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.eval.report import generate_report


@pytest.fixture(scope="module")
def report():
    # Small scale for speed; all sections still render.
    return generate_report(table3_scale=0.02, table3_execute_limit=2)


class TestReportGeneration:
    def test_all_sections_present(self, report):
        for heading in ("Table III", "Table IV", "Table V", "Figure 2",
                        "Table VI", "performance overhead",
                        "LibTIFF tiff2pdf case study"):
            assert heading in report

    def test_paper_values_quoted(self, report):
        assert "28/39" in report        # Figure 2 strcpy
        assert "317" in report          # Table V sites
        assert "296" in report          # Table VI candidates

    def test_exact_matches_asserted(self, report):
        assert "matched exactly" in report

    def test_case_study_outcome(self, report):
        assert "buffer-overflow" in report
        assert "g_snprintf(buffer, sizeof(buffer)" in report

    def test_markdown_tables_well_formed(self, report):
        for line in report.splitlines():
            if line.startswith("|") and line.endswith("|"):
                assert line.count("|") >= 3
