"""Tests for the VM's native libc: unsafe semantics, safe alternatives,
printf formatting, stdio, and the stralloc runtime."""

from .helpers import run

P = "#include <stdio.h>\n#include <string.h>\n#include <stdlib.h>\n"


def out(src: str, **kwargs) -> str:
    result = run(P + src, **kwargs)
    assert result.ok, f"unexpected fault: {result.fault_detail}"
    return result.stdout_text


class TestPrintfFormatting:
    def test_widths_and_flags(self):
        assert out("""int main(void){
            printf("[%5d][%-5d][%05d]\\n", 42, 42, 42);
            return 0; }""") == "[   42][42   ][00042]\n"

    def test_precision_on_strings(self):
        assert out("""int main(void){
            printf("%.3s\\n", "abcdef");
            return 0; }""") == "abc\n"

    def test_hex_octal_unsigned(self):
        assert out("""int main(void){
            printf("%x %X %#x %o %u\\n", 255, 255, 255, 8, 7);
            return 0; }""") == "ff FF 0xff 10 7\n"

    def test_precision_pads_integers(self):
        # %.3o prints at least 3 octal digits — the LibTIFF CVE idiom.
        assert out("""int main(void){
            printf("\\\\%.3o\\n", 7);
            return 0; }""") == "\\007\n"

    def test_sign_extended_octal_is_eleven_digits(self):
        # (char)0x80 sign-extends to int -128 -> unsigned 0xFFFFFF80.
        assert out("""int main(void){
            char c = (char)0x80;
            printf("%.3o\\n", c);
            return 0; }""") == "37777777600\n"

    def test_long_conversions(self):
        assert out("""int main(void){
            unsigned long big = 4294967296UL;
            printf("%lu %ld\\n", big, (long)-5);
            return 0; }""") == "4294967296 -5\n"

    def test_char_and_percent(self):
        assert out("""int main(void){
            printf("%c%c 100%%\\n", 'o', 'k');
            return 0; }""") == "ok 100%\n"

    def test_star_width(self):
        assert out("""int main(void){
            printf("[%*d]\\n", 6, 42);
            return 0; }""") == "[    42]\n"

    def test_float_formats(self):
        assert out("""int main(void){
            printf("%f %.2f %e\\n", 1.5, 3.14159, 0.5);
            return 0; }""") == "1.500000 3.14 5.000000e-01\n"

    def test_null_string(self):
        assert out("""int main(void){
            char *p = NULL;
            printf("%s\\n", p);
            return 0; }""") == "(null)\n"

    def test_sprintf_returns_length(self):
        assert out("""int main(void){
            char b[32];
            int n = sprintf(b, "%d-%d", 12, 34);
            printf("%d %s\\n", n, b);
            return 0; }""") == "5 12-34\n"

    def test_snprintf_truncates(self):
        assert out("""int main(void){
            char b[5];
            snprintf(b, sizeof(b), "abcdefgh");
            printf("%s\\n", b);
            return 0; }""") == "abcd\n"

    def test_sprintf_overflow_faults(self):
        result = run(P + """int main(void){
            char b[4];
            sprintf(b, "%d", 123456);
            return 0; }""")
        assert result.fault == "buffer-overflow"


class TestUnsafeStringFunctions:
    def test_strcpy_copies(self):
        assert out("""int main(void){
            char b[8];
            strcpy(b, "abc");
            printf("%s\\n", b);
            return 0; }""") == "abc\n"

    def test_strcpy_overflow_faults_at_exact_byte(self):
        result = run(P + """int main(void){
            char b[4];
            strcpy(b, "abcd");
            return 0; }""")
        assert result.fault == "buffer-overflow"
        assert "offset 4" in result.fault_detail

    def test_strcat_appends(self):
        assert out("""int main(void){
            char b[16] = "foo";
            strcat(b, "bar");
            printf("%s\\n", b);
            return 0; }""") == "foobar\n"

    def test_strcat_overflow(self):
        result = run(P + """int main(void){
            char b[6] = "foo";
            strcat(b, "bar");
            return 0; }""")
        assert result.fault == "buffer-overflow"

    def test_strncpy_pads_with_nul(self):
        assert out("""int main(void){
            char b[6];
            strncpy(b, "ab", 5);
            printf("%d %d %s\\n", b[3], b[4], b);
            return 0; }""") == "0 0 ab\n"

    def test_strcmp_and_strncmp(self):
        assert out("""int main(void){
            printf("%d %d %d %d\\n",
                   strcmp("a", "a"), strcmp("a", "b") < 0,
                   strcmp("b", "a") > 0, strncmp("abc", "abd", 2));
            return 0; }""") == "0 1 1 0\n"

    def test_strchr_strrchr_strstr(self):
        assert out("""int main(void){
            const char *s = "hello world";
            printf("%s|%s|%s\\n", strchr(s, 'o'), strrchr(s, 'o'),
                   strstr(s, "lo w"));
            return 0; }""") == "o world|orld|lo world\n"

    def test_strcspn(self):
        assert out("""int main(void){
            printf("%d %d %d\\n",
                   (int)strcspn("hello\\n", "\\n"),
                   (int)strcspn("no newline", "\\n"),
                   (int)strcspn("", "abc"));
            return 0; }""") == "5 10 0\n"

    def test_strdup(self):
        assert out("""int main(void){
            char *d = strdup("copy me");
            d[0] = 'C';
            printf("%s\\n", d);
            free(d);
            return 0; }""") == "Copy me\n"

    def test_memcmp_memchr(self):
        assert out("""int main(void){
            const char *s = "xyzzy";
            printf("%d %s\\n", memcmp("ab", "ab", 2),
                   (char*)memchr(s, 'z', 5));
            return 0; }""") == "0 zzy\n"


class TestSafeAlternatives:
    def test_g_strlcpy_truncates_and_terminates(self):
        assert out("""#include <glib.h>
        int main(void){
            char b[4];
            unsigned long want = g_strlcpy(b, "abcdef", sizeof(b));
            printf("%s %lu\\n", b, want);
            return 0; }""") == "abc 6\n"

    def test_g_strlcat_respects_limit(self):
        assert out("""#include <glib.h>
        int main(void){
            char b[8] = "one";
            g_strlcat(b, "twothree", sizeof(b));
            printf("%s\\n", b);
            return 0; }""") == "onetwot\n"

    def test_g_snprintf_bounds(self):
        assert out("""#include <glib.h>
        int main(void){
            char b[6];
            g_snprintf(b, sizeof(b), "%d%d%d", 111, 222, 333);
            printf("%s\\n", b);
            return 0; }""") == "11122\n"


class TestStdinStdout:
    def test_gets_reads_line(self):
        assert out("""int main(void){
            char b[32];
            gets(b);
            printf("got:%s\\n", b);
            return 0; }""", stdin=b"typed\n") == "got:typed\n"

    def test_gets_overflow(self):
        result = run(P + """int main(void){
            char b[4];
            gets(b);
            return 0; }""", stdin=b"waytoolong\n")
        assert result.fault == "buffer-overflow"

    def test_fgets_bounded_keeps_newline(self):
        assert out("""int main(void){
            char b[32];
            fgets(b, sizeof(b), stdin);
            printf("[%s]", b);
            return 0; }""", stdin=b"line\n") == "[line\n]"

    def test_fgets_truncates(self):
        assert out("""int main(void){
            char b[4];
            fgets(b, sizeof(b), stdin);
            printf("[%s]", b);
            return 0; }""", stdin=b"abcdef\n") == "[abc]"

    def test_fgets_eof_returns_null(self):
        assert out("""int main(void){
            char b[8];
            if (fgets(b, 8, stdin) == NULL) puts("eof");
            return 0; }""", stdin=b"") == "eof\n"

    def test_getchar(self):
        assert out("""int main(void){
            int a = getchar(), b = getchar();
            printf("%c%c\\n", a, b);
            return 0; }""", stdin=b"xy") == "xy\n"


class TestHeap:
    def test_malloc_free_cycle(self):
        assert out("""int main(void){
            for (int i = 0; i < 10; i++) {
                char *p = malloc(100);
                p[99] = 'x';
                free(p);
            }
            puts("ok");
            return 0; }""") == "ok\n"

    def test_malloc_usable_size_rounding(self):
        assert out("""#include <malloc.h>
        int main(void){
            char *p = malloc(10);
            printf("%lu\\n", malloc_usable_size(p));
            return 0; }""") == "16\n"

    def test_write_into_usable_slack_is_fine(self):
        assert out("""int main(void){
            char *p = malloc(10);
            p[15] = 'x';
            puts("ok");
            return 0; }""") == "ok\n"

    def test_write_past_usable_size_faults(self):
        result = run(P + """int main(void){
            char *p = malloc(10);
            p[16] = 'x';
            return 0; }""")
        assert result.fault == "buffer-overflow"

    def test_calloc_zeroes(self):
        assert out("""int main(void){
            int *arr = calloc(4, sizeof(int));
            printf("%d%d%d%d\\n", arr[0], arr[1], arr[2], arr[3]);
            return 0; }""") == "0000\n"

    def test_realloc_preserves_data(self):
        assert out("""int main(void){
            char *p = malloc(4);
            strcpy(p, "abc");
            p = realloc(p, 64);
            strcat(p, "def");
            printf("%s\\n", p);
            return 0; }""") == "abcdef\n"

    def test_double_free_detected(self):
        result = run(P + """int main(void){
            char *p = malloc(4);
            free(p);
            free(p);
            return 0; }""")
        assert result.fault == "double-free"


class TestStrallocRuntime:
    HDR = "#include <stralloc.h>\n"

    def test_copys_and_length(self):
        assert out(self.HDR + """int main(void){
            stralloc sa = {0,0,0,0};
            stralloc_copys(&sa, "hello");
            printf("%u %s\\n", stralloc_length(&sa), sa.s);
            return 0; }""") == "5 hello\n"

    def test_cat_and_append(self):
        assert out(self.HDR + """int main(void){
            stralloc sa = {0,0,0,0};
            stralloc_copys(&sa, "ab");
            stralloc_cats(&sa, "cd");
            stralloc_append(&sa, '!');
            printf("%s\\n", sa.s);
            return 0; }""") == "abcd!\n"

    def test_growth_beyond_initial_capacity(self):
        assert out(self.HDR + """int main(void){
            stralloc sa = {0,0,0,0};
            for (int i = 0; i < 100; i++) stralloc_append(&sa, 'x');
            printf("%u\\n", sa.len);
            return 0; }""") == "100\n"

    def test_replace_and_get(self):
        assert out(self.HDR + """int main(void){
            stralloc sa = {0,0,0,0};
            stralloc_copys(&sa, "abc");
            stralloc_dereference_replace_by(&sa, 1, 'X');
            printf("%c\\n", stralloc_get_dereferenced_char_at(&sa, 1));
            return 0; }""") == "X\n"

    def test_get_out_of_bounds_returns_zero(self):
        assert out(self.HDR + """int main(void){
            stralloc sa = {0,0,0,0};
            stralloc_copys(&sa, "abc");
            printf("%d\\n",
                   stralloc_get_dereferenced_char_at(&sa, 1000));
            return 0; }""") == "0\n"

    def test_replace_grows(self):
        # Writing past the logical end grows the *allocation*; strlen (and
        # hence len) is unchanged because the terminator at index len
        # still precedes the written byte — exactly C's semantics.
        assert out(self.HDR + """int main(void){
            stralloc sa = {0,0,0,0};
            stralloc_dereference_replace_by(&sa, 50, 'q');
            printf("%c %u\\n",
                   stralloc_get_dereferenced_char_at(&sa, 50), sa.len);
            return 0; }""") == "q 0\n"

    def test_increment_decrement_bounded(self):
        result = run(P + self.HDR + """int main(void){
            stralloc sa = {0,0,0,0};
            stralloc_copys(&sa, "abcdef");
            stralloc_increment_by(&sa, 2);
            printf("%s\\n", sa.s);
            int ok = stralloc_decrement_by(&sa, 10);
            printf("%d %d\\n", ok, sa.s == sa.f);
            return 0; }""")
        # The out-of-range decrement is refused (clamped to the base) and
        # reported via the return value — never an out-of-bounds access.
        assert result.ok
        assert result.stdout_text == "cdef\n0 1\n"

    def test_compare_and_equals(self):
        assert out(self.HDR + """int main(void){
            stralloc a = {0,0,0,0}, b = {0,0,0,0};
            stralloc_copys(&a, "same");
            stralloc_copys(&b, "same");
            printf("%d %d\\n", stralloc_compare(&a, &b),
                   stralloc_equals(&a, &b));
            return 0; }""") == "0 1\n"

    def test_find_char_and_substring(self):
        assert out(self.HDR + """int main(void){
            stralloc a = {0,0,0,0}, n = {0,0,0,0};
            stralloc_copys(&a, "hello world");
            stralloc_copys(&n, "wor");
            printf("%d %d %d\\n", stralloc_find_char(&a, 'o'),
                   stralloc_find_char(&a, 'z'),
                   stralloc_substring_at(&a, &n));
            return 0; }""") == "4 -1 6\n"

    def test_memset_sets_len(self):
        assert out(self.HDR + """int main(void){
            stralloc a = {0,0,0,0};
            stralloc_memset(&a, 'z', 5);
            printf("%s %u\\n", a.s, a.len);
            return 0; }""") == "zzzzz 5\n"

    def test_free_resets(self):
        assert out(self.HDR + """int main(void){
            stralloc a = {0,0,0,0};
            stralloc_copys(&a, "data");
            stralloc_free(&a);
            printf("%u %u %d\\n", a.len, a.a, a.s == NULL);
            return 0; }""") == "0 0 1\n"

    def test_declared_capacity_used_on_first_alloc(self):
        # STR records char buf[1024] as a = 1024 before first use.
        assert out(self.HDR + """int main(void){
            stralloc a = {0,0,0,0};
            a.a = 1024;
            stralloc_copys(&a, "x");
            printf("%d\\n", a.a >= 1024);
            return 0; }""") == "1\n"


class TestMisc:
    def test_atoi_strtol(self):
        assert out("""int main(void){
            printf("%d %d %ld\\n", atoi("42"), atoi("-7x"),
                   strtol("0x1f", NULL, 0));
            return 0; }""") == "42 -7 31\n"

    def test_sscanf_basic(self):
        assert out("""int main(void){
            int a, b;
            char word[16];
            int n = sscanf("10 hats 20", "%d %s %d", &a, word, &b);
            printf("%d %d %s %d\\n", n, a, word, b);
            return 0; }""") == "3 10 hats 20\n"

    def test_ctype_functions(self):
        assert out("""#include <ctype.h>
        int main(void){
            printf("%d%d%d %c\\n", isalpha('a'), isdigit('5'),
                   isspace(' '), toupper('q'));
            return 0; }""") == "111 Q\n"

    def test_abs_and_rand_deterministic(self):
        text = out("""int main(void){
            srand(1);
            int a = rand();
            srand(1);
            int b = rand();
            printf("%d %d\\n", abs(-9), a == b);
            return 0; }""")
        assert text == "9 1\n"

    def test_assert_failure(self):
        result = run(P + """#include <assert.h>
        int main(void){ assert(1 == 2); return 0; }""")
        assert result.fault == "assertion-failure"

    def test_virtual_file_roundtrip(self):
        assert out("""int main(void){
            FILE *f = fopen("data.txt", "w");
            fwrite("payload", 1, 7, f);
            fclose(f);
            FILE *g = fopen("data.txt", "r");
            char buf[16];
            int n = (int)fread(buf, 1, 7, g);
            buf[n] = '\\0';
            fclose(g);
            printf("%s\\n", buf);
            return 0; }""") == "payload\n"

    def test_fopen_missing_file_null(self):
        assert out("""int main(void){
            FILE *f = fopen("missing.bin", "r");
            if (f == NULL) puts("no file");
            return 0; }""") == "no file\n"
