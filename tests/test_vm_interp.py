"""Tests for the C interpreter: language semantics."""

from .helpers import run

P = "#include <stdio.h>\n#include <string.h>\n#include <stdlib.h>\n"


def out(src: str, **kwargs) -> str:
    result = run(P + src, **kwargs)
    assert result.ok, f"unexpected fault: {result.fault_detail}"
    return result.stdout_text


class TestArithmetic:
    def test_integer_ops(self):
        text = out("""int main(void){
            printf("%d %d %d %d %d\\n", 7+3, 7-3, 7*3, 7/3, 7%3);
            return 0; }""")
        assert text == "10 4 21 2 1\n"

    def test_c_division_truncates_toward_zero(self):
        text = out("""int main(void){
            printf("%d %d\\n", -7 / 2, -7 %% 2);
            return 0; }""".replace("%%", "%"))
        assert text == "-3 -1\n"

    def test_unsigned_wraparound(self):
        text = out("""int main(void){
            unsigned int x = 0;
            x = x - 1;
            printf("%u\\n", x);
            return 0; }""")
        assert text == "4294967295\n"

    def test_signed_char_overflow_wraps(self):
        text = out("""int main(void){
            char c = 127;
            c = c + 1;
            printf("%d\\n", c);
            return 0; }""")
        assert text == "-128\n"

    def test_bitwise(self):
        text = out("""int main(void){
            printf("%d %d %d %d %d\\n", 6 & 3, 6 | 3, 6 ^ 3, 1 << 4,
                   32 >> 2);
            return 0; }""")
        assert text == "2 7 5 16 8\n"

    def test_division_by_zero_faults(self):
        result = run(P + "int main(void){ int z = 0; return 1 / z; }")
        assert result.fault == "divide-by-zero"

    def test_float_arithmetic(self):
        text = out("""int main(void){
            double d = 1.5 * 4.0;
            printf("%.1f\\n", d);
            return 0; }""")
        assert text == "6.0\n"

    def test_ternary_and_logical(self):
        text = out("""int main(void){
            int a = 5;
            printf("%d %d %d\\n", a > 3 ? 1 : 2, a && 0, a || 0);
            return 0; }""")
        assert text == "1 0 1\n"

    def test_short_circuit_no_side_effect(self):
        text = out("""int main(void){
            int calls = 0;
            int r = 0 && (calls = 1);
            printf("%d %d\\n", r, calls);
            return 0; }""")
        assert text == "0 0\n"


class TestControlFlow:
    def test_if_else_chain(self):
        text = out("""int main(void){
            int x = 2;
            if (x == 1) puts("one");
            else if (x == 2) puts("two");
            else puts("other");
            return 0; }""")
        assert text == "two\n"

    def test_while_loop(self):
        text = out("""int main(void){
            int i = 0, total = 0;
            while (i < 5) { total += i; i++; }
            printf("%d\\n", total);
            return 0; }""")
        assert text == "10\n"

    def test_do_while_runs_once(self):
        text = out("""int main(void){
            int n = 0;
            do { n++; } while (0);
            printf("%d\\n", n);
            return 0; }""")
        assert text == "1\n"

    def test_for_with_break_continue(self):
        text = out("""int main(void){
            int total = 0;
            for (int i = 0; i < 10; i++) {
                if (i == 7) break;
                if (i % 2) continue;
                total += i;
            }
            printf("%d\\n", total);
            return 0; }""")
        assert text == "12\n"

    def test_nested_loops(self):
        text = out("""int main(void){
            int count = 0;
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    count++;
            printf("%d\\n", count);
            return 0; }""")
        assert text == "12\n"

    def test_switch_with_fallthrough(self):
        text = out("""int main(void){
            int x = 1, r = 0;
            switch (x) {
                case 0: r += 1;
                case 1: r += 10;
                case 2: r += 100; break;
                case 3: r += 1000;
            }
            printf("%d\\n", r);
            return 0; }""")
        assert text == "110\n"

    def test_switch_default(self):
        text = out("""int main(void){
            switch (42) { case 1: puts("a"); break;
                          default: puts("dflt"); }
            return 0; }""")
        assert text == "dflt\n"

    def test_switch_no_match_no_default(self):
        text = out("""int main(void){
            switch (42) { case 1: puts("a"); }
            puts("after");
            return 0; }""")
        assert text == "after\n"

    def test_goto_forward(self):
        text = out("""int main(void){
            goto skip;
            puts("not printed");
            skip:
            puts("here");
            return 0; }""")
        assert text == "here\n"

    def test_goto_backward_loop(self):
        text = out("""int main(void){
            int i = 0;
            again:
            i++;
            if (i < 3) goto again;
            printf("%d\\n", i);
            return 0; }""")
        assert text == "3\n"

    def test_infinite_loop_hits_step_limit(self):
        result = run(P + "int main(void){ while (1) { } return 0; }",
                     step_limit=10_000)
        assert result.fault == "step-limit"


class TestFunctions:
    def test_recursion(self):
        text = out("""
        int fib(int n){ return n < 2 ? n : fib(n-1) + fib(n-2); }
        int main(void){ printf("%d\\n", fib(10)); return 0; }""")
        assert text == "55\n"

    def test_pass_by_value(self):
        text = out("""
        void bump(int x){ x = 99; }
        int main(void){ int v = 1; bump(v); printf("%d\\n", v);
            return 0; }""")
        assert text == "1\n"

    def test_pointer_out_param(self):
        text = out("""
        void bump(int *x){ *x = 99; }
        int main(void){ int v = 1; bump(&v); printf("%d\\n", v);
            return 0; }""")
        assert text == "99\n"

    def test_function_pointer_call(self):
        text = out("""
        int twice(int x){ return 2 * x; }
        int main(void){
            int (*fp)(int) = twice;
            printf("%d\\n", fp(21));
            return 0; }""")
        assert text == "42\n"

    def test_variadic_user_function(self):
        text = out("""
        #include <stdarg.h>
        int sum(int n, ...) {
            va_list ap;
            va_start(ap, n);
            int total = 0;
            for (int i = 0; i < n; i++) total += va_arg(ap, int);
            va_end(ap);
            return total;
        }
        int main(void){ printf("%d\\n", sum(3, 10, 20, 12)); return 0; }""")
        assert text == "42\n"

    def test_exit_stops_program(self):
        result = run(P + """
        int main(void){ puts("before"); exit(3); puts("after");
            return 0; }""")
        assert result.exit_code == 3
        assert result.stdout_text == "before\n"

    def test_stack_locals_released_on_return(self):
        # Returning a pointer to a local and using it is a use-after-free.
        result = run(P + """
        char *bad(void){ char local[4]; return local; }
        int main(void){ char *p = bad(); *p = 'x'; return 0; }""")
        assert result.fault == "use-after-free"


class TestDataStructures:
    def test_struct_members(self):
        text = out("""
        struct point { int x; int y; };
        int main(void){
            struct point p;
            p.x = 3; p.y = 4;
            printf("%d\\n", p.x * p.x + p.y * p.y);
            return 0; }""")
        assert text == "25\n"

    def test_struct_pointer_arrow(self):
        text = out("""
        struct node { int v; struct node *next; };
        int main(void){
            struct node a, b;
            a.v = 1; b.v = 2;
            a.next = &b;
            printf("%d\\n", a.next->v);
            return 0; }""")
        assert text == "2\n"

    def test_struct_assignment_copies(self):
        text = out("""
        struct pair { int a; int b; };
        int main(void){
            struct pair x; x.a = 1; x.b = 2;
            struct pair y; y = x;
            x.a = 99;
            printf("%d %d\\n", y.a, y.b);
            return 0; }""")
        assert text == "1 2\n"

    def test_array_iteration(self):
        text = out("""int main(void){
            int arr[5] = {5, 4, 3, 2, 1};
            int total = 0;
            for (int i = 0; i < 5; i++) total += arr[i];
            printf("%d\\n", total);
            return 0; }""")
        assert text == "15\n"

    def test_2d_array(self):
        text = out("""int main(void){
            int g[2][3] = {{1, 2, 3}, {4, 5, 6}};
            printf("%d\\n", g[1][2]);
            return 0; }""")
        assert text == "6\n"

    def test_pointer_arithmetic_scaled(self):
        text = out("""int main(void){
            int arr[4] = {10, 20, 30, 40};
            int *p = arr;
            p = p + 2;
            printf("%d\\n", *p);
            return 0; }""")
        assert text == "30\n"

    def test_pointer_difference(self):
        text = out("""int main(void){
            int arr[8];
            int *a = arr + 1;
            int *b = arr + 6;
            printf("%d\\n", (int)(b - a));
            return 0; }""")
        assert text == "5\n"

    def test_string_literal_access(self):
        text = out("""int main(void){
            const char *s = "hello";
            printf("%c%c\\n", s[0], s[4]);
            return 0; }""")
        assert text == "ho\n"

    def test_global_variables(self):
        text = out("""
        int counter = 10;
        char tag[4] = "hi";
        void bump(void){ counter += 5; }
        int main(void){
            bump(); bump();
            printf("%d %s\\n", counter, tag);
            return 0; }""")
        assert text == "20 hi\n"

    def test_static_local_persists(self):
        text = out("""
        int next_id(void){ static int id = 0; id++; return id; }
        int main(void){
            next_id(); next_id();
            printf("%d\\n", next_id());
            return 0; }""")
        assert text == "3\n"

    def test_increment_decrement_semantics(self):
        text = out("""int main(void){
            int i = 5;
            printf("%d %d %d %d %d\\n", i++, i, ++i, i--, --i);
            return 0; }""")
        assert text == "5 6 7 7 5\n"

    def test_compound_assignment_on_pointer(self):
        text = out("""int main(void){
            char buf[8] = "abcdefg";
            char *p = buf;
            p += 3;
            printf("%c\\n", *p);
            return 0; }""")
        assert text == "d\n"

    def test_casts(self):
        text = out("""int main(void){
            double d = 3.99;
            int i = (int)d;
            unsigned char c = (unsigned char)300;
            printf("%d %d\\n", i, c);
            return 0; }""")
        assert text == "3 44\n"

    def test_enum_values(self):
        text = out("""
        enum level { LOW = 1, MID = 5, HIGH };
        int main(void){
            enum level v = HIGH;
            printf("%d\\n", v);
            return 0; }""")
        assert text == "6\n"

    def test_sizeof_at_runtime(self):
        text = out("""int main(void){
            char buf[12];
            long p_size = sizeof(char*);
            printf("%lu %ld %lu\\n", sizeof(buf), p_size, sizeof(int));
            return 0; }""")
        assert text == "12 8 4\n"
