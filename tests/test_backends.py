"""Tests for the pluggable fix-backend registry and oracle-arbitrated
per-file best-fix selection (PR 6).

Covers: the registry surface (register/resolve/env), the two new
backends (tr24731 with its runtime-constraint handler, s3lib's
signature-preserving wrappers) as transforms *and* under the VM,
arbitration's verdict ordering and fault containment, determinism
across worker counts and cache states, and the batch/report/CLI
integration.
"""

from __future__ import annotations

import os

import pytest

from repro.core.backends import (
    ARBITRATION_VERSION, CANDIDATE_ERROR, CANDIDATE_REJECTED,
    CANDIDATE_SELECTED, DEFAULT_BACKENDS, FixBackend, arbitrate_file,
    backend_ids, backends_from_env, cached_backend_run, get_backend,
    register_backend, resolve_backends, scoreboard, unregister_backend,
)
from repro.core.batch import SourceProgram, apply_batch
from repro.core.s3lib import apply_s3lib
from repro.core.session import get_session, reset_session
from repro.core.slr import apply_tr24731
from repro.core.transform import TransformResult

from .helpers import pp, run

OVERFLOW_SRC = """\
#include <stdio.h>
#include <string.h>
int main(void) {
    char buf[8];
    char line[64];
    if (fgets(line, 64, stdin)) {
        strcpy(buf, line);
        printf("got:%s", buf);
    }
    return 0;
}
"""

#: SLR's Algorithm 1 cannot size ``d`` (pointer parameter, no local
#: declaration) — the s3lib backend has no such precondition.
UNSIZABLE_SRC = """\
#include <stdio.h>
#include <string.h>
void copy(char *d, const char *s) {
    strcpy(d, s);
}
int main(void) {
    char buf[8];
    copy(buf, "0123456789abcdef");
    printf("%s\\n", buf);
    return 0;
}
"""


@pytest.fixture(autouse=True)
def _no_backend_env(monkeypatch):
    """Backend selection comes from each test, never the outer env."""
    monkeypatch.delenv("REPRO_BACKENDS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


class TestRegistry:
    def test_standard_backends_registered(self):
        assert set(DEFAULT_BACKENDS) <= set(backend_ids())
        assert {"slr", "str", "tr24731", "s3lib"} <= set(backend_ids())

    def test_backend_metadata(self):
        for backend_id in ("slr", "str", "tr24731", "s3lib"):
            backend = get_backend(backend_id)
            assert backend.id == backend_id
            assert backend.title
            assert backend.description

    def test_register_duplicate_raises(self):
        with pytest.raises(ValueError):
            register_backend(get_backend("slr"))

    def test_register_replace_and_unregister(self):
        class Stub(FixBackend):
            id = "stub-reg"
            title = "stub"

            def build(self, text, filename, session):
                raise NotImplementedError

        register_backend(Stub())
        try:
            register_backend(Stub(), replace=True)   # no raise
            assert "stub-reg" in backend_ids()
        finally:
            unregister_backend("stub-reg")
        assert "stub-reg" not in backend_ids()

    def test_register_empty_id_raises(self):
        with pytest.raises(ValueError):
            register_backend(FixBackend())

    def test_resolve_comma_string(self):
        assert resolve_backends("slr, tr24731") == ("slr", "tr24731")

    def test_resolve_iterable_and_dedup_preserves_order(self):
        assert resolve_backends(["s3lib", "slr", "s3lib"]) \
            == ("s3lib", "slr")

    def test_resolve_all(self):
        assert resolve_backends("all") == backend_ids()

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_backends("slr,nope")

    def test_resolve_empty_raises(self):
        with pytest.raises(ValueError):
            resolve_backends("")

    def test_backends_from_env(self, monkeypatch):
        assert backends_from_env() is None
        monkeypatch.setenv("REPRO_BACKENDS", "tr24731, s3lib")
        assert backends_from_env() == ("tr24731", "s3lib")


class TestTR24731Backend:
    def test_rewrites_to_s_family_and_installs_handler(self):
        result = apply_tr24731(pp(OVERFLOW_SRC), "t.c")
        assert result.transformed_count >= 1
        assert "strcpy_s(" in result.new_text
        assert "set_constraint_handler_s(" in result.new_text
        # The emitted handler is defined before it is installed.
        import re
        install = re.search(r"set_constraint_handler_s\((\w+)\);",
                            result.new_text)
        assert install, "no handler install call in main"
        assert f"void {install.group(1)}(" in result.new_text

    def test_overflow_prevented_under_vm(self):
        result = apply_tr24731(pp(OVERFLOW_SRC), "t.c")
        before = run(OVERFLOW_SRC, stdin=b"0123456789abcdef\n")
        after = run(result.new_text, stdin=b"0123456789abcdef\n",
                    preprocess=False)
        assert before.fault is not None
        assert after.fault is None
        # The constraint handler reports on stderr; stdout (the oracle's
        # observable) shows the operation was rejected, not a smash.
        assert b"0123456789abcdef" not in after.stdout

    def test_benign_input_identical(self):
        result = apply_tr24731(pp(OVERFLOW_SRC), "t.c")
        before = run(OVERFLOW_SRC, stdin=b"ok\n")
        after = run(result.new_text, stdin=b"ok\n", preprocess=False)
        assert before.fault is None and after.fault is None
        assert after.stdout == before.stdout

    def test_user_constraint_handler_is_invoked(self):
        src = """\
int printf(const char *format, ...);
int strcpy_s(char *dest, unsigned long n, const char *src);
void set_constraint_handler_s(
    void (*h)(const char *msg, void *ptr, int error));
void mine(const char *msg, void *ptr, int error) {
    printf("handler:%d\\n", error);
}
int main(void) {
    char buf[4];
    set_constraint_handler_s(mine);
    strcpy_s(buf, 4, "far too long");
    printf("after\\n");
    return 0;
}
"""
        result = run(src, preprocess=False)
        assert result.fault is None
        assert b"handler:" in result.stdout
        assert b"after" in result.stdout


class TestS3LibBackend:
    def test_renames_calls_and_declares_wrappers(self):
        result = apply_s3lib(pp(OVERFLOW_SRC), "t.c")
        assert result.transformed_count == 1      # the strcpy site
        assert "s3_strcpy(" in result.new_text
        assert "char *s3_strcpy(" in result.new_text

    def test_no_buffer_length_precondition(self):
        """The pointer-parameter destination SLR cannot size is still
        transformable: s3lib never computes a length expression."""
        from repro.core.slr import apply_slr
        text = pp(UNSIZABLE_SRC)
        slr = apply_slr(text, "u.c")
        assert slr.transformed_count == 0         # Algorithm 1 fails
        s3 = apply_s3lib(text, "u.c")
        assert s3.transformed_count == 1

    def test_truncates_at_block_capacity_under_vm(self):
        text = pp(UNSIZABLE_SRC)
        s3 = apply_s3lib(text, "u.c")
        before = run(text, preprocess=False)
        after = run(s3.new_text, preprocess=False)
        assert before.fault is not None
        assert after.fault is None
        assert after.stdout == b"0123456\n"       # 8-byte buf, NUL kept

    def test_s3_gets_and_sprintf_natives(self):
        src = """\
int printf(const char *format, ...);
char *s3_gets(char *dest);
int s3_sprintf(char *dest, const char *format, ...);
int main(void) {
    char buf[6];
    char out[8];
    if (s3_gets(buf)) printf("g:%s\\n", buf);
    int n = s3_sprintf(out, "%s!", "0123456789");
    printf("s:%s:%d\\n", out, n);
    return 0;
}
"""
        result = run(src, stdin=b"abcdefghij\n", preprocess=False)
        assert result.fault is None
        assert b"g:abcde\n" in result.stdout      # capped at 6 - NUL
        assert b"s:0123456:7\n" in result.stdout  # capped at 8 - NUL


def _stub_backend(backend_id, rewrite):
    """A FixBackend whose run() fabricates a TransformResult by applying
    ``rewrite`` to the text (no Transformation machinery)."""
    from repro.core.transform import SiteOutcome, TRANSFORMED

    class Stub(FixBackend):
        id = backend_id
        title = backend_id

        def build(self, text, filename, session):
            raise NotImplementedError

        def run(self, text, filename, session=None):
            new_text = rewrite(text)
            outcome = SiteOutcome(transformation=backend_id.upper(),
                                  target="stub", function="main", line=1,
                                  status=TRANSFORMED)
            result = TransformResult(backend_id.upper(), text, new_text,
                                     [outcome] if new_text != text else [])
            result.backend = backend_id
            return result

    return Stub()


@pytest.fixture
def stub_backends():
    registered = []

    def add(backend):
        register_backend(backend, replace=True)
        registered.append(backend.id)
        return backend

    yield add
    for backend_id in registered:
        unregister_backend(backend_id)


class TestArbitration:
    def test_winner_prevents_overflow_and_is_judged(self):
        text = pp(OVERFLOW_SRC)
        final, parses, validation, report = arbitrate_file(
            text, "o.c", ("slr", "tr24731", "s3lib"))
        assert parses
        assert report.winner is not None
        winning = report.winning_candidate
        assert winning.status == CANDIDATE_SELECTED
        assert final == winning.result.new_text
        assert validation is winning.validation
        assert validation.semantics_changed == 0
        assert validation.overflows_prevented > 0

    def test_order_is_the_tie_break(self, stub_backends):
        same = lambda text: text + "/* fixed */\n"
        stub_backends(_stub_backend("stub-a", same))
        stub_backends(_stub_backend("stub-b", same))
        text = pp("int main(void) { return 0; }\n")
        *_, report_ab = arbitrate_file(text, "t.c", ("stub-a", "stub-b"))
        *_, report_ba = arbitrate_file(text, "t.c", ("stub-b", "stub-a"))
        assert report_ab.winner == "stub-a"
        assert report_ba.winner == "stub-b"

    def test_semantics_changed_candidate_never_selected(
            self, stub_backends):
        """A backend whose rewrite changes observable behaviour is
        disqualified; the honest backend wins instead."""
        stub_backends(_stub_backend(
            "breaker", lambda text: text.replace("got:", "BAD:")))
        text = pp(OVERFLOW_SRC)
        final, _, _, report = arbitrate_file(
            text, "o.c", ("breaker", "slr"))
        breaker = report.candidate_for("breaker")
        assert breaker.status == CANDIDATE_REJECTED
        assert "semantics-changed" in breaker.reason
        assert report.winner == "slr"
        assert "BAD:" not in final

    def test_no_eligible_candidate_ships_input_verbatim(
            self, stub_backends):
        stub_backends(_stub_backend(
            "breaker", lambda text: text.replace("got:", "BAD:")))
        text = pp(OVERFLOW_SRC)
        final, parses, validation, report = arbitrate_file(
            text, "o.c", ("breaker",))
        assert final == text
        assert parses
        assert validation is None
        assert report.winner is None

    def test_backend_failure_degrades_to_next_best(self, monkeypatch):
        """An injected backend crash is contained as a candidate error
        (with a diagnostic) and a surviving backend's fix ships — never
        a worse file."""
        monkeypatch.setenv("REPRO_FAULTS", "s3lib:exception:1.0")
        text = pp(OVERFLOW_SRC)
        diagnostics = []
        final, _, _, report = arbitrate_file(
            text, "o.c", ("s3lib", "slr"), diagnostics=diagnostics)
        failed = report.candidate_for("s3lib")
        assert failed.status == CANDIDATE_ERROR
        assert report.winner == "slr"
        assert final == report.winning_candidate.result.new_text
        assert [d.stage for d in diagnostics] == ["s3lib"]

    def test_all_backends_failed_ships_input_verbatim(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "s3lib:exception:1.0,tr24731:exception:1.0")
        text = pp(OVERFLOW_SRC)
        final, parses, validation, report = arbitrate_file(
            text, "o.c", ("s3lib", "tr24731"))
        assert final == text
        assert parses and validation is None and report.winner is None
        assert all(c.status == CANDIDATE_ERROR
                   for c in report.candidates)

    def test_scoreboard_aggregation(self):
        text = pp(OVERFLOW_SRC)
        *_, report = arbitrate_file(text, "o.c", ("slr", "s3lib"))
        board = scoreboard([report])
        assert board["slr"]["attempted"] == 1
        assert board["slr"]["selected"] + board["s3lib"]["selected"] == 1
        total = sum(row["selected"] + row["runner_up"] + row["rejected"]
                    + row["no_change"] + row["not_applicable"]
                    + row["errors"] for row in board.values())
        assert total == 2

    def test_backend_cache_shares_results(self, monkeypatch):
        from repro.core.backends import _BACKEND_CACHE
        text = pp(OVERFLOW_SRC)
        base = _BACKEND_CACHE.stats
        cached_backend_run("s3lib", text, "c.c")
        misses = base.misses
        again = cached_backend_run("s3lib", text, "c.c")
        assert base.misses == misses              # second call is a hit
        assert again.backend == "s3lib"


def _program(n=3):
    files = {f"f{i}.c": OVERFLOW_SRC.replace("got:", f"got{i}:")
             for i in range(n)}
    return SourceProgram("arbtest", files)


class TestBatchArbitration:
    def test_batch_selects_validated_fixes(self):
        batch = apply_batch(_program(), backends="slr,str,tr24731,s3lib",
                            validate=True)
        assert batch.all_parse and batch.semantics_preserved
        for report in batch.reports:
            assert report.arbitration is not None
            assert report.slr is None and report.str_ is None
            winning = report.arbitration.winning_candidate
            assert winning is not None
            assert report.validation is winning.validation
            assert report.validation.semantics_changed == 0
        assert batch.stats.backends_attempted == 3 * 4
        assert batch.stats.backends_rejected == batch.backends_rejected
        board = batch.backend_scoreboard()
        assert sum(row["selected"] for row in board.values()) == 3

    def test_oracle_always_judges_even_without_validate(self):
        batch = apply_batch(_program(1), backends="slr")
        report = batch.reports[0]
        assert report.validation is not None
        assert report.validation.overflows_prevented > 0

    def test_env_default_enables_arbitration(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKENDS", "s3lib")
        batch = apply_batch(_program(1))
        assert batch.reports[0].arbitration is not None
        assert batch.reports[0].arbitration.winner == "s3lib"

    def test_legacy_mode_untouched_without_backends(self):
        batch = apply_batch(_program(1))
        report = batch.reports[0]
        assert report.arbitration is None
        assert report.slr is not None

    def test_diagnostics_payload_backends_section(self):
        from repro.core.report import diagnostics_payload
        batch = apply_batch(_program(2), backends="slr,s3lib")
        payload = diagnostics_payload(batch)
        section = payload["backends"]
        assert section["requested"] == ["slr", "s3lib"]
        assert section["attempted"] == 4
        assert set(section["winners"]) == {"f0.c", "f1.c"}
        assert set(section["scoreboard"]) == {"slr", "s3lib"}
        assert len(section["arbitrations"]) == 2

    def test_render_surfaces_winner_and_scoreboard(self):
        from repro.core.report import (
            render_backend_scoreboard, render_batch_stats,
        )
        batch = apply_batch(_program(1), backends="slr,s3lib",
                            validate=True)
        stats_text = render_batch_stats(batch)
        winner = batch.reports[0].arbitration.winner
        assert "winner" in stats_text
        assert f"ok ({winner})" in stats_text
        board_text = render_backend_scoreboard(batch)
        assert "slr" in board_text and "s3lib" in board_text
        assert "candidate(s) attempted" in board_text


class TestArbitrationDeterminism:
    """PR 6 satellite: identical winners and scoreboards at any worker
    count and any cache state."""

    def _outcome(self, **kwargs):
        batch = apply_batch(_program(4),
                            backends="slr,str,tr24731,s3lib",
                            validate=True, **kwargs)
        return batch.winners(), batch.backend_scoreboard()

    def test_jobs_1_vs_jobs_4_identical(self):
        assert self._outcome(jobs=1) == self._outcome(jobs=4)

    def test_cache_off_vs_warm_store_identical(self, fresh_store,
                                               monkeypatch):
        warm_1 = self._outcome(jobs=1)            # populates the store
        warm_2 = self._outcome(jobs=1)            # replays from it
        monkeypatch.setenv("REPRO_CACHE", "0")
        reset_session()
        cold = self._outcome(jobs=1)
        assert warm_1 == warm_2 == cold

    def test_faulted_run_is_deterministic_and_never_worse(
            self, monkeypatch):
        """With one backend failing on every file, both worker counts
        pick the same (next-best) winners and every shipped file is a
        validated fix or the input verbatim."""
        monkeypatch.setenv("REPRO_FAULTS", "tr24731:exception:1.0")
        batch_1 = apply_batch(_program(3),
                              backends="tr24731,slr,s3lib", jobs=1)
        batch_4 = apply_batch(_program(3),
                              backends="tr24731,slr,s3lib", jobs=4)
        assert batch_1.winners() == batch_4.winners()
        assert batch_1.backend_scoreboard() \
            == batch_4.backend_scoreboard()
        board = batch_1.backend_scoreboard()
        assert board["tr24731"]["errors"] == 3
        for report in batch_1.reports:
            winning = report.arbitration.winning_candidate
            if winning is None:
                assert report.final_text == report.original_text
            else:
                assert winning.validation.semantics_changed == 0


class TestBackendsCLI:
    def test_backends_subcommand_lists_registry(self, capsys):
        from repro.cli import main
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for backend_id in ("slr", "str", "tr24731", "s3lib"):
            assert backend_id in out

    def test_batch_backends_flag(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "a.c").write_text(OVERFLOW_SRC, encoding="utf-8")
        code = main(["batch", str(tmp_path), "--backends",
                     "slr,s3lib", "--validate"])
        captured = capsys.readouterr()
        assert code == 0
        assert "winner" in captured.out
        assert "arbitration:" in captured.out + captured.err

    def test_batch_unknown_backend_errors(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "a.c").write_text(OVERFLOW_SRC, encoding="utf-8")
        code = main(["batch", str(tmp_path), "--backends", "bogus"])
        assert code == 1
        assert "unknown fix backend" in capsys.readouterr().err


class TestCircuitBreaker:
    """PR 10: per-backend circuit breakers in ``arbitrate_file`` —
    consecutive operational failures open a backend's breaker, open
    breakers skip it (cheaply, with a skipped candidate on the report),
    and a half-open trial after the cooldown closes or reopens it."""

    CHAIN = ("s3lib", "slr")

    @pytest.fixture(autouse=True)
    def _fresh_breakers(self):
        from repro.core.backends import reset_breakers
        reset_breakers()
        yield
        reset_breakers()

    def _arbitrate(self, name):
        text = pp(OVERFLOW_SRC)
        return arbitrate_file(text, name, self.CHAIN)[3]

    def test_trips_after_threshold_then_skips(self, monkeypatch):
        from repro.core.backends import CANDIDATE_SKIPPED
        monkeypatch.setenv("REPRO_FAULTS", "s3lib:exception:1.0")
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "2")
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN", "2")
        with pytest.warns(RuntimeWarning, match="circuit breaker opened"):
            for i in range(2):
                report = self._arbitrate(f"f{i}.c")
                assert report.candidate_for("s3lib").status \
                    == CANDIDATE_ERROR
        # Open: the next files skip s3lib without running it; the
        # surviving backend still wins, and skips are not "attempted".
        for i in range(2, 4):
            report = self._arbitrate(f"f{i}.c")
            skipped = report.candidate_for("s3lib")
            assert skipped.status == CANDIDATE_SKIPPED
            assert "circuit breaker open" in skipped.reason
            assert report.winner == "slr"
            assert report.attempted == 1
        # Cooldown elapsed: one half-open trial — still faulted, so the
        # breaker reopens and the next file skips again.
        report = self._arbitrate("f4.c")
        assert report.candidate_for("s3lib").status == CANDIDATE_ERROR
        report = self._arbitrate("f5.c")
        assert report.candidate_for("s3lib").status == CANDIDATE_SKIPPED

    def test_half_open_success_closes(self, monkeypatch):
        from repro.core.backends import CANDIDATE_SKIPPED
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "1")
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN", "1")
        monkeypatch.setenv("REPRO_FAULTS", "s3lib:exception:1.0")
        with pytest.warns(RuntimeWarning, match="circuit breaker opened"):
            self._arbitrate("f0.c")                 # trips
        assert self._arbitrate("f1.c").candidate_for("s3lib").status \
            == CANDIDATE_SKIPPED                    # cooldown skip
        monkeypatch.delenv("REPRO_FAULTS")          # backend healthy again
        for name in ("f2.c", "f3.c"):               # trial + closed state
            status = self._arbitrate(name).candidate_for("s3lib").status
            assert status not in (CANDIDATE_SKIPPED, CANDIDATE_ERROR)

    def test_zero_threshold_disables_breakers(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "s3lib:exception:1.0")
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "0")
        for i in range(4):
            report = self._arbitrate(f"f{i}.c")
            assert report.candidate_for("s3lib").status == CANDIDATE_ERROR

    def test_semantic_rejection_does_not_feed_breaker(self, monkeypatch):
        """A judge-rejected (semantics-changed) candidate is the oracle
        working, not a backend malfunction — it must reset, not grow,
        the failure streak."""
        from repro.core.backends import _breaker_for
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "2")
        self._arbitrate("f0.c")
        assert _breaker_for("s3lib").failures == 0
        assert _breaker_for("s3lib").state == "closed"

    def test_scoreboard_counts_breaker_skips(self, monkeypatch):
        from repro.core.report import render_backend_scoreboard
        monkeypatch.setenv("REPRO_FAULTS", "s3lib:exception:1.0")
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "2")
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN", "10")
        with pytest.warns(RuntimeWarning, match="circuit breaker opened"):
            batch = apply_batch(_program(5), backends="s3lib,slr", jobs=1)
        board = batch.backend_scoreboard()
        assert board["s3lib"]["breaker_skips"] == 3     # files 3..5
        assert board["s3lib"]["attempted"] == 2
        rendered = render_backend_scoreboard(batch)
        assert "breaker-skips" in rendered
        assert "circuit breakers:" in rendered

    def test_healthy_scoreboard_hides_breaker_column(self):
        from repro.core.report import render_backend_scoreboard
        batch = apply_batch(_program(2), backends="s3lib,slr", jobs=1)
        rendered = render_backend_scoreboard(batch)
        assert "breaker-skips" not in rendered
