"""Tests for the evaluation harness (tables and figure)."""

import pytest

from repro.eval.common import (
    PAPER_FIGURE2, PAPER_TABLE3, pct, render_table,
)
from repro.eval.figure2 import compute_figure2
from repro.eval.perf import compute_perf
from repro.eval.table3 import compute_table3
from repro.eval.table4 import compute_table4
from repro.eval.table5 import compute_table5
from repro.eval.table6 import compute_table6


class TestRendering:
    def test_render_table_shape(self):
        text = render_table(["A", "Bee"], [[1, 22], [333, 4]], "Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "| A " in text and "| Bee |" in text
        assert "333" in text

    def test_pct(self):
        assert pct(1, 2) == "50.00%"
        assert pct(0, 0) == "-"


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return compute_table3(scale=0.02, execute_limit=3)

    def test_all_cwes_present(self, result):
        assert {r.cwe for r in result.rows} == set(PAPER_TABLE3)

    def test_executed_programs_all_fixed(self, result):
        assert result.all_fixed
        assert result.all_preserved

    def test_slr_only_on_applicable_cwes(self, result):
        by_cwe = {r.cwe: r for r in result.rows}
        assert by_cwe[124].slr_applied == 0
        assert by_cwe[126].slr_applied == 0
        assert by_cwe[127].slr_applied == 0
        assert by_cwe[121].slr_applied > 0
        assert by_cwe[242].slr_applied > 0

    def test_str_not_applied_to_cwe242(self, result):
        by_cwe = {r.cwe: r for r in result.rows}
        assert by_cwe[242].str_applied == 0

    def test_kloc_positive(self, result):
        for row in result.rows:
            assert row.pp_kloc > row.kloc > 0

    def test_render_mentions_paper(self, result):
        text = result.render()
        assert "4505/1758/4487" in text


class TestTable4:
    def test_rows_and_render(self):
        result = compute_table4()
        assert len(result.rows) == 4
        text = result.render()
        assert "Table IV" in text
        assert "zlib" in text


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return compute_table5(execute=False)

    def test_paper_totals(self, result):
        assert result.total_sites == 317
        assert result.total_transformed == 259

    def test_percentage_matches_paper(self, result):
        rate = 100.0 * result.total_transformed / result.total_sites
        assert abs(rate - 81.7) < 0.1

    def test_by_function_matches_figure2(self, result):
        for fn, expected in PAPER_FIGURE2.items():
            done, total = result.by_function[fn]
            assert (done, total) == expected, fn

    def test_no_parse_failures(self, result):
        assert all(r.parses for r in result.rows)


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return compute_table6(execute=False)

    def test_paper_totals(self, result):
        assert result.totals == (296, 237, 59)

    def test_hundred_percent_of_passed(self, result):
        for row in result.rows:
            assert row.replaced == row.identified - row.failed_precondition

    def test_render(self, result):
        assert "296" in result.render()


class TestFigure2:
    def test_exact_series(self):
        result = compute_figure2()
        assert result.by_function["strcpy"] == (28, 39)
        assert result.by_function["memcpy"] == (72, 115)

    def test_gets_absent(self):
        result = compute_figure2()
        assert result.by_function.get("gets", (0, 0))[1] == 0

    def test_render_has_bars(self):
        text = compute_figure2().render()
        assert "#" in text
        assert "Figure 2" in text


class TestPerf:
    def test_output_identical_and_overhead_small(self):
        result = compute_perf(("zlib",), repeat=1)
        row = result.rows[0]
        assert row.output_identical
        assert 0 <= row.step_overhead_pct < 50
        assert row.steps_after >= row.steps_before
