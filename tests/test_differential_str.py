"""Differential testing of STR: for generated in-bounds programs, the
transformed program must produce byte-identical output.

This is the strongest correctness property the paper claims ("preserve
expected behavior"): we generate random straight-line programs over char
buffers using only Table II-shaped operations with in-bounds indices, run
them, transform them, and run them again.
"""

from hypothesis import given, settings, strategies as st

from repro.core.strtransform import SafeTypeReplacement
from repro.samate.generator import PAPER_COUNTS, generate_suite

from .helpers import pp, run

_BUF = 12       # capacity of each generated buffer


@st.composite
def _programs(draw):
    """A straight-line program over two buffers, all accesses in bounds."""
    lines = [
        f"char a[{_BUF}];",
        f"char b[{_BUF}];",
        "int i;",
        f'memset(a, \'x\', {_BUF - 1});',
        f"a[{_BUF - 1}] = '\\0';",
        f'memset(b, \'y\', {_BUF - 1});',
        f"b[{_BUF - 1}] = '\\0';",
    ]
    count = draw(st.integers(1, 10))
    for _ in range(count):
        kind = draw(st.integers(0, 6))
        idx = draw(st.integers(0, _BUF - 2))
        ch = draw(st.sampled_from("mnpq"))
        if kind == 0:
            lines.append(f"a[{idx}] = '{ch}';")
        elif kind == 1:
            lines.append(f"b[{idx}] = a[{idx}];")
        elif kind == 2:
            lines.append(f"*(a + {idx}) = '{ch}';")
        elif kind == 3:
            src = draw(st.sampled_from(["abc", "hello", "zz"]))
            lines.append(f'strcpy(a, "{src}");')
        elif kind == 4:
            suffix = draw(st.sampled_from(["!", "xy"]))
            # keep total length within capacity: reset first
            lines.append(f'strcpy(b, "s");')
            lines.append(f'strcat(b, "{suffix}");')
        elif kind == 5:
            n = draw(st.integers(1, _BUF - 1))
            lines.append(f"memset(a, '{ch}', {n});")
            lines.append(f"a[{_BUF - 1}] = '\\0';")
        else:
            lines.append(
                f"if (a[{idx}] == '{ch}') {{ b[0] = 'H'; }}")
    lines.append('printf("%s|%s|%d|%d\\n", a, b, (int)strlen(a), '
                 "(int)strlen(b));")
    body = "\n    ".join(lines)
    return ("#include <stdio.h>\n#include <string.h>\n"
            f"int main(void) {{\n    {body}\n    return 0;\n}}\n")


class TestDifferentialSTR:
    @settings(deadline=None, max_examples=40)
    @given(_programs())
    def test_transformed_program_behaves_identically(self, source):
        text = pp(source)
        before = run(text, preprocess=False)
        assert before.ok, before.fault_detail

        result = SafeTypeReplacement(text, "gen.c").run()
        # Both buffers use only supported patterns: must transform.
        assert result.transformed_count == 2, \
            [(o.target, o.reason) for o in result.outcomes]
        after = run(result.new_text, preprocess=False)
        assert after.ok, after.fault_detail
        assert after.stdout == before.stdout


class TestSuiteScalingProperty:
    @settings(deadline=None, max_examples=10)
    @given(st.floats(0.01, 0.25))
    def test_scaled_suites_consistent(self, scale):
        suite = generate_suite(scale=scale)
        for cwe, programs in suite.items():
            total, slr = PAPER_COUNTS[cwe]
            assert len(programs) == max(1, round(total * scale))
            slr_count = sum(p.slr_applicable for p in programs)
            expected = min(len(programs),
                           max(1 if slr else 0, round(slr * scale)))
            assert slr_count == expected
            names = {p.name for p in programs}
            assert len(names) == len(programs)


@st.composite
def _safe_slr_programs(draw):
    """Programs whose unsafe calls all *fit* — SLR must not change
    observable behaviour on them."""
    dst = draw(st.integers(8, 32))
    text = draw(st.text(alphabet="abcz", min_size=0, max_size=dst - 2))
    fmt_value = draw(st.integers(-999, 999))
    lines = [
        f"char dst[{dst}];",
        f'strcpy(dst, "{text}");',
    ]
    if draw(st.booleans()):
        extra = draw(st.text(alphabet="xy", min_size=0,
                             max_size=dst - 2 - len(text)))
        lines.append(f'strcat(dst, "{extra}");')
    lines.append(f"char num[{max(dst, 12)}];")
    lines.append(f'sprintf(num, "%d", {fmt_value});')
    lines.append('printf("%s/%s\\n", dst, num);')
    body = "\n    ".join(lines)
    return ("#include <stdio.h>\n#include <string.h>\n"
            f"int main(void) {{\n    {body}\n    return 0;\n}}\n")


class TestDifferentialSLR:
    @settings(deadline=None, max_examples=40)
    @given(_safe_slr_programs())
    def test_fitting_operations_unchanged_by_slr(self, source):
        from repro.core.slr import SafeLibraryReplacement
        text = pp(source)
        before = run(text, preprocess=False)
        assert before.ok, before.fault_detail
        result = SafeLibraryReplacement(text, "gen.c").run()
        assert result.transformed_count == result.candidates
        after = run(result.new_text, preprocess=False)
        assert after.ok, after.fault_detail
        assert after.stdout == before.stdout

    @settings(deadline=None, max_examples=25)
    @given(_safe_slr_programs())
    def test_c11_profile_also_behaviour_preserving_when_fitting(
            self, source):
        from repro.core.slr import SafeLibraryReplacement
        text = pp(source)
        before = run(text, preprocess=False)
        result = SafeLibraryReplacement(text, "gen.c",
                                        profile="c11").run()
        after = run(result.new_text, preprocess=False)
        assert after.ok, after.fault_detail
        assert after.stdout == before.stdout
