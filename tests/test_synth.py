"""Tests for the mutational corpus synthesizer (PR 9).

The synthesizer's whole value is trustworthy ground truth at scale:
every planted label must agree with the bounds-checked VM, and the
same (count, seed) pair must be byte-for-byte reproducible — including
through the ``repro synth`` CLI.
"""

import filecmp
import json

import pytest

from repro.corpus.synth import (
    MUTANT_KINDS, build_program, manifest, oracle_agrees, synthesize,
    write_corpus,
)


class TestGroundTruth:
    def test_every_label_agrees_with_vm_oracle(self):
        """Unvalidated generation (no filtering) must already agree —
        the parameter derivations are proofs, not heuristics."""
        mutants = synthesize(60, 17, validate=False)
        disagreements = [m.name for m in mutants
                         if not oracle_agrees(m)]
        assert disagreements == []

    def test_population_covers_kinds_and_labels(self):
        mutants = synthesize(60, 17, validate=False)
        kinds = {m.kind for m in mutants}
        labels = {m.label for m in mutants}
        assert kinds == set(MUTANT_KINDS)
        assert labels == {"overflow", "safe"}

    def test_validated_generation_keeps_labels(self):
        mutants = synthesize(10, 2, validate=True)
        assert len(mutants) == 10
        assert all(m.label in ("overflow", "safe") for m in mutants)

    def test_write_len_matches_label(self):
        """The planted geometry is self-consistent: forward overflow
        mutants write past dst, safe forward writes fit."""
        for m in synthesize(60, 23, validate=False):
            if m.kind == "off_by_one":
                continue  # single store; geometry is the index, not len
            if m.expected_overflow:
                assert m.write_len > m.dst_size, m.name
            else:
                assert m.write_len <= m.dst_size, m.name


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = synthesize(20, 5, validate=False)
        second = synthesize(20, 5, validate=False)
        assert [m.source for m in first] == [m.source for m in second]
        assert [m.name for m in first] == [m.name for m in second]

    def test_different_seeds_differ(self):
        a = [m.source for m in synthesize(10, 1, validate=False)]
        b = [m.source for m in synthesize(10, 2, validate=False)]
        assert a != b

    def test_manifest_is_deterministic(self):
        ms = synthesize(8, 9, validate=False)
        assert manifest(ms, 9, validated=False) \
            == manifest(synthesize(8, 9, validate=False), 9,
                        validated=False)

    def test_filenames_are_unique_and_flow_stamped(self):
        mutants = synthesize(40, 4, validate=False)
        names = [m.filename for m in mutants]
        assert len(set(names)) == len(names)
        for m in mutants:
            assert m.filename == \
                f"synth_4_{mutants.index(m):05d}_{m.kind}" \
                f"_f{m.flow_vid:02d}.c"


class TestPackaging:
    def test_build_program_shape(self):
        program = build_program(12, 6)
        assert program.file_count == 12
        assert all(name.endswith(".c") for name in program.files)

    def test_write_corpus_round_trip(self, tmp_path):
        mutants = synthesize(6, 8, validate=False)
        a = tmp_path / "a"
        b = tmp_path / "b"
        write_corpus(mutants, str(a), 8, validated=False)
        write_corpus(synthesize(6, 8, validate=False), str(b), 8,
                     validated=False)
        match, mismatch, errors = filecmp.cmpfiles(
            a, b, [p.name for p in a.iterdir()], shallow=False)
        assert not mismatch and not errors
        payload = json.loads((a / "manifest.json").read_text())
        assert payload["seed"] == 8
        assert payload["count"] == 6
        assert len(payload["mutants"]) == 6

    def test_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "corpus"
        assert main(["synth", "--count", "5", "--seed", "3",
                     "--out", str(out)]) == 0
        err = capsys.readouterr().err
        assert "wrote 5 file(s)" in err
        assert "VM-validated" in err
        written = sorted(p.name for p in out.iterdir())
        assert "manifest.json" in written
        assert sum(1 for n in written if n.endswith(".c")) == 5

    def test_synth_batch_transforms_cleanly(self, fresh_store):
        """The synthesized population actually flows through the batch
        pipeline: every file parses and lands ok."""
        from repro.core.batch import stream_batch
        program = build_program(10, 14)
        reports = list(stream_batch(program, jobs=1, validate=False))
        assert len(reports) == 10
        assert all(r.status == "ok" and r.parses for r in reports)


class TestValidationCap:
    def test_disagreement_raises_after_cap(self, monkeypatch):
        import repro.corpus.synth as synth_mod
        monkeypatch.setattr(synth_mod, "oracle_agrees",
                            lambda mutant: False)
        with pytest.raises(RuntimeError, match="disagreed"):
            synthesize(2, 0, validate=True)
