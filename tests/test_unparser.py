"""Tests for the AST unparser: shape-preserving round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import astnodes as ast
from repro.cfront.ctypes_model import (
    ArrayType, CHAR, FunctionType, INT, PointerType,
)
from repro.cfront.parser import parse_translation_unit
from repro.cfront.unparser import type_text, unparse

from .helpers import pp, run


def roundtrip(source: str) -> tuple[ast.TranslationUnit,
                                    ast.TranslationUnit, str]:
    first = parse_translation_unit(source)
    text = unparse(first)
    second = parse_translation_unit(text)
    return first, second, text


def shapes(unit: ast.TranslationUnit) -> list[str]:
    out = []
    for node in unit.walk():
        entry = type(node).__name__
        for attr in ("name", "op", "value", "member", "label"):
            extra = getattr(node, attr, None)
            if extra is not None and not isinstance(extra, ast.Node):
                entry += f":{extra}"
                break
        out.append(entry)
    return out


class TestTypeText:
    def test_simple(self):
        assert type_text(INT, "x") == "int x"
        assert type_text(CHAR) == "char"

    def test_pointer(self):
        assert type_text(PointerType(CHAR), "p") == "char *p"

    def test_array(self):
        assert type_text(ArrayType(CHAR, 10), "b") == "char b[10]"

    def test_array_of_pointers(self):
        assert type_text(ArrayType(PointerType(CHAR), 4),
                         "names") == "char *names[4]"

    def test_pointer_to_array(self):
        assert type_text(PointerType(ArrayType(INT, 3)),
                         "row") == "int (*row)[3]"

    def test_function_pointer(self):
        fn = FunctionType(INT, [("a", INT), (None, PointerType(CHAR))])
        assert type_text(PointerType(fn), "fp") == \
            "int (*fp)(int a, char *)"

    def test_function_no_params(self):
        fn = FunctionType(INT, [])
        assert type_text(fn, "f") == "int f(void)"

    def test_variadic(self):
        fn = FunctionType(INT, [(None, PointerType(CHAR))],
                          variadic=True)
        assert type_text(fn, "printf_like") == \
            "int printf_like(char *, ...)"


class TestStatementRoundTrip:
    CASES = [
        "int main(void) { return 0; }",
        "int main(void) { int a = 1; int b = a + 2; return a * b; }",
        "int f(int n) { if (n > 0) { return 1; } else { return -1; } }",
        "int f(void) { int i; for (i = 0; i < 4; i++) { } return i; }",
        "int f(void) { int i = 0; while (i < 3) i++; return i; }",
        "int f(void) { int i = 0; do { i++; } while (i < 3); return i; }",
        "int f(int x) { switch (x) { case 1: return 1; default: break; } "
        "return 0; }",
        "int f(void) { goto end; end: return 0; }",
        "struct p { int x; int y; }; int g(void) { struct p v; v.x = 1; "
        "return v.x; }",
        "int f(char *s) { return s[0] == 'a' ? 1 : 0; }",
        "int f(void) { char b[4] = {1, 2, 3, 4}; return b[2]; }",
        "void f(void) { ; }",
        "int f(int a, int b) { a += b; a <<= 2; return a; }",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_shape_preserved(self, source):
        first, second, _ = roundtrip(source)
        assert shapes(first) == shapes(second)

    def test_precedence_forced_parens(self):
        source = "int f(int a, int b) { return (a + b) * 2; }"
        first, second, text = roundtrip(source)
        assert shapes(first) == shapes(second)
        assert "(a + b) * 2" in text

    def test_nested_conditional(self):
        source = "int f(int a) { return a ? a : (a ? 1 : 2); }"
        first, second, _ = roundtrip(source)
        assert shapes(first) == shapes(second)

    def test_pointer_declarations_roundtrip(self):
        source = ("int main(void) { char *p; char **pp = &p; "
                  "int (*fp)(void); return 0; }")
        first, second, _ = roundtrip(source)
        assert shapes(first) == shapes(second)


class TestBehaviouralRoundTrip:
    """Unparsed programs must *run* identically, not just parse."""

    PROGRAMS = [
        """
        #include <stdio.h>
        int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
        int main(void) { printf("%d\\n", fib(12)); return 0; }
        """,
        """
        #include <stdio.h>
        #include <string.h>
        int main(void) {
            char buf[32];
            strcpy(buf, "round");
            strcat(buf, "trip");
            printf("%s %d\\n", buf, (int)strlen(buf));
            return 0;
        }
        """,
        """
        #include <stdio.h>
        int main(void) {
            int total = 0;
            for (int i = 0; i < 10; i++) {
                if (i % 3 == 0) continue;
                if (i == 8) break;
                total += i;
            }
            printf("%d\\n", total);
            return 0;
        }
        """,
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_same_output(self, source):
        text = pp(source)
        original = run(text, preprocess=False)
        regenerated = unparse(parse_translation_unit(text))
        rerun = run(regenerated, preprocess=False)
        assert original.ok and rerun.ok
        assert original.stdout == rerun.stdout


_EXPR_LEAVES = st.sampled_from(["a", "b", "c", "1", "2", "40"])
_BIN_OPS = st.sampled_from(["+", "-", "*", "/", "%", "<<", ">>",
                            "<", ">", "==", "!=", "&", "^", "|",
                            "&&", "||"])


@st.composite
def _expressions(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return draw(_EXPR_LEAVES)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        lhs = draw(_expressions(depth + 1))
        rhs = draw(_expressions(depth + 1))
        op = draw(_BIN_OPS)
        return f"({lhs}) {op} ({rhs})"
    if kind == 1:
        inner = draw(_expressions(depth + 1))
        op = draw(st.sampled_from(["-", "!", "~"]))
        return f"{op}({inner})"
    if kind == 2:
        cond = draw(_expressions(depth + 1))
        then = draw(_expressions(depth + 1))
        other = draw(_expressions(depth + 1))
        return f"({cond}) ? ({then}) : ({other})"
    inner = draw(_expressions(depth + 1))
    return f"({inner})"


class TestPropertyRoundTrip:
    @settings(deadline=None, max_examples=60)
    @given(_expressions())
    def test_random_expression_shapes_survive(self, expr_text):
        source = f"int f(int a, int b, int c) {{ return {expr_text}; }}"
        first, second, _ = roundtrip(source)
        assert shapes(first) == shapes(second)
