"""Property-based tests (hypothesis) on core data structures and
invariants."""

from hypothesis import given, settings, strategies as st

from repro.cfront.lexer import tokenize
from repro.cfront.preprocessor import Preprocessor
from repro.cfront.rewriter import Rewriter
from repro.cfront.source import SourceExtent, SourceFile
from repro.cfront.tokens import EOF
from repro.cfront.ctypes_model import IntType
from repro.vm.memory import (
    Memory, MemoryFault, Pointer, decode_pointer, encode_pointer,
    usable_size,
)

import pytest


# --------------------------------------------------------------- lexer

_ident = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True)
_number = st.integers(min_value=0, max_value=10**9).map(str)
_punct = st.sampled_from(["+", "-", "*", "/", "(", ")", "{", "}", ";",
                          ",", "==", "<=", "->", "<<", "&&"])
_token_text = st.one_of(_ident, _number, _punct)


@given(st.lists(_token_text, min_size=1, max_size=30))
def test_lexer_roundtrip_with_spaces(texts):
    """Tokens joined by single spaces tokenize back to the same texts."""
    source = " ".join(texts)
    tokens = [t for t in tokenize(source) if t.kind != EOF]
    assert [t.text for t in tokens] == texts


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                      exclude_characters='"\\'),
               max_size=20))
def test_string_literals_tokenize_whole(body):
    tokens = [t for t in tokenize(f'"{body}"') if t.kind != EOF]
    assert len(tokens) == 1
    assert tokens[0].text == f'"{body}"'


@given(st.text(alphabet="abc \n\t;(){}", max_size=200))
def test_line_col_mapping_total(text):
    """Every offset maps to a valid 1-based (line, col)."""
    source = SourceFile("t.c", text)
    for offset in range(len(text) + 1):
        line, col = source.line_col(offset)
        assert line >= 1 and col >= 1
        assert line <= source.line_count + 1


# ------------------------------------------------------------ integers

_int_kinds = st.sampled_from(["char", "short", "int", "long"])


@given(_int_kinds, st.booleans(), st.integers(-2**70, 2**70))
def test_int_wrap_in_range(kind, signed, value):
    ctype = IntType(kind, signed=signed)
    wrapped = ctype.wrap(value)
    assert ctype.min_value() <= wrapped <= ctype.max_value()


@given(_int_kinds, st.booleans(), st.integers(-2**70, 2**70))
def test_int_wrap_idempotent(kind, signed, value):
    ctype = IntType(kind, signed=signed)
    assert ctype.wrap(ctype.wrap(value)) == ctype.wrap(value)


@given(_int_kinds, st.booleans(), st.integers(-2**70, 2**70),
       st.integers(-2**70, 2**70))
def test_int_wrap_is_congruent_mod_2n(kind, signed, a, b):
    ctype = IntType(kind, signed=signed)
    modulus = 1 << (8 * ctype.sizeof())
    if (a - b) % modulus == 0:
        assert ctype.wrap(a) == ctype.wrap(b)


# -------------------------------------------------------------- memory

@given(st.integers(1, 4096))
def test_usable_size_bounds(requested):
    usable = usable_size(requested)
    assert usable >= requested
    assert usable % 8 == 0
    assert usable - requested < 8


@given(st.integers(1, 256), st.binary(min_size=0, max_size=256))
def test_memory_write_read_roundtrip(size, data):
    mem = Memory()
    ptr = mem.alloc(size, "stack", "b")
    payload = data[:size]
    mem.write_bytes(ptr, payload)
    assert mem.read_bytes(ptr, len(payload)) == payload


@given(st.integers(1, 64), st.integers(0, 200))
def test_memory_oob_always_faults(size, past):
    mem = Memory()
    ptr = mem.alloc(size, "stack", "b")
    with pytest.raises(MemoryFault):
        mem.read_bytes(ptr.moved(size + past), 1)
    with pytest.raises(MemoryFault):
        mem.write_bytes(ptr.moved(-1 - past), b"x")


@given(st.integers(1, 2**20), st.integers(-2**26, 2**26))
def test_pointer_encoding_roundtrip(block, offset):
    ptr = Pointer(block, offset)
    assert decode_pointer(encode_pointer(ptr)) == ptr


@given(st.integers(0, 2**53))
def test_plain_ints_never_decode_as_pointers(value):
    decoded = decode_pointer(value)
    assert decoded is None or decoded.is_null


# ------------------------------------------------------------ rewriter

@given(st.text(alphabet="abcdef", min_size=2, max_size=40),
       st.data())
def test_rewriter_disjoint_edits_apply_in_order(text, data):
    n = len(text)
    cut_a = data.draw(st.integers(0, n - 2))
    end_a = data.draw(st.integers(cut_a, n - 2))
    cut_b = data.draw(st.integers(end_a + 1, n))
    end_b = data.draw(st.integers(cut_b, n))
    r = Rewriter(text)
    r.replace(SourceExtent(cut_a, end_a), "X")
    r.replace(SourceExtent(cut_b, end_b), "Y")
    expected = text[:cut_a] + "X" + text[end_a:cut_b] + "Y" + text[end_b:]
    assert r.apply() == expected


# --------------------------------------------------------- preprocessor

@given(st.integers(-1000, 1000), st.integers(-1000, 1000),
       st.sampled_from(["+", "-", "*", "<", ">", "==", "!=", "&&", "||"]))
def test_pp_conditional_matches_python(a, b, op):
    src = f"#if ({a}) {op} ({b})\nint yes;\n#endif\nint always;\n"
    out = Preprocessor().preprocess(src, "t.c").text
    python_ops = {
        "+": lambda x, y: x + y, "-": lambda x, y: x - y,
        "*": lambda x, y: x * y,
        "<": lambda x, y: x < y, ">": lambda x, y: x > y,
        "==": lambda x, y: x == y, "!=": lambda x, y: x != y,
        "&&": lambda x, y: bool(x) and bool(y),
        "||": lambda x, y: bool(x) or bool(y),
    }
    expected = bool(python_ops[op](a, b))
    assert ("int yes;" in out) == expected
    assert "int always;" in out


@given(st.lists(st.sampled_from(["#define A 1", "#define B 2",
                                 "#undef A", "#undef B"]),
                max_size=8))
def test_pp_define_undef_sequences_never_crash(directives):
    src = "\n".join(directives) + "\nint x;\n"
    out = Preprocessor().preprocess(src, "t.c").text
    assert "int x;" in out


# -------------------------------------------------- stralloc vs a model

_SA_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("copys"),
                  st.text(alphabet="xyz", max_size=8)),
        st.tuples(st.just("cats"),
                  st.text(alphabet="pq", max_size=8)),
        st.tuples(st.just("append"),
                  st.sampled_from("abc")),
        st.tuples(st.just("replace"), st.integers(0, 30),
                  st.sampled_from("mn")),
    ),
    min_size=1, max_size=12)


@settings(deadline=None, max_examples=40)
@given(_SA_OPS)
def test_stralloc_matches_string_model(ops):
    """Drive the stralloc runtime through generated C and compare with a
    byte-level model implementing C strlen semantics (len is the offset
    of the first NUL in the backing storage)."""
    lines = []
    backing = bytearray()       # zero-filled growth, like fresh heap

    def ensure(size: int) -> None:
        if len(backing) < size:
            backing.extend(b"\x00" * (size - len(backing)))

    def model_len() -> int:
        pos = backing.find(b"\x00")
        return pos if pos != -1 else len(backing)

    for op in ops:
        if op[0] == "copys":
            lines.append(f'stralloc_copys(&sa, "{op[1]}");')
            data = op[1].encode()
            ensure(len(data) + 1)
            backing[:len(data)] = data
            backing[len(data)] = 0
        elif op[0] == "cats":
            lines.append(f'stralloc_cats(&sa, "{op[1]}");')
            data = op[1].encode()
            start = model_len()
            ensure(start + len(data) + 1)
            backing[start:start + len(data)] = data
            backing[start + len(data)] = 0
        elif op[0] == "append":
            lines.append(f"stralloc_append(&sa, '{op[1]}');")
            start = model_len()
            ensure(start + 2)
            backing[start] = ord(op[1])
            backing[start + 1] = 0
        else:
            _, index, char = op
            lines.append(
                f"stralloc_dereference_replace_by(&sa, {index}, "
                f"'{char}');")
            ensure(index + 1)
            backing[index] = ord(char)
    model = backing[:model_len()]
    source = (
        "#include <stdio.h>\n#include <stralloc.h>\n"
        "int main(void) {\n"
        "    stralloc sa = {0,0,0,0};\n"
        + "\n".join("    " + line for line in lines)
        + '\n    printf("%u", sa.len);\n'
        "    return 0;\n}"
    )
    from .helpers import run
    result = run(source)
    assert result.ok, result.fault_detail
    assert result.stdout_text == str(len(model))


# ------------------------------------------- VM arithmetic vs C model

@settings(deadline=None, max_examples=50)
@given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9),
       st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^"]))
def test_vm_int_arithmetic_matches_c(a, b, op):
    if op in ("/", "%") and b == 0:
        return
    source = (
        "#include <stdio.h>\n"
        "int main(void) {\n"
        f"    long x = {a}L;\n"
        f"    long y = {b}L;\n"
        f'    printf("%ld", x {op} y);\n'
        "    return 0;\n}"
    )
    from .helpers import run
    result = run(source)
    assert result.ok
    if op == "/":
        quotient = abs(a) // abs(b)
        expected = quotient if (a >= 0) == (b >= 0) else -quotient
    elif op == "%":
        quotient = abs(a) // abs(b)
        signed_q = quotient if (a >= 0) == (b >= 0) else -quotient
        expected = a - signed_q * b
    else:
        expected = {"+": a + b, "-": a - b, "*": a * b,
                    "&": a & b, "|": a | b, "^": a ^ b}[op]
    expected = IntType("long").wrap(expected)
    assert result.stdout_text == str(expected)


# ------------------------------------ transformation safety invariants

@settings(deadline=None, max_examples=25)
@given(st.integers(2, 64), st.integers(1, 128))
def test_slr_fix_never_overflows(dst, extra):
    """For any buffer size and any source length, the SLR-fixed copy
    neither faults nor loses NUL-termination."""
    src_len = dst + extra
    source = (
        "#include <stdio.h>\n#include <string.h>\n"
        "int main(void) {\n"
        f"    char dst[{dst}];\n"
        f"    char src[{src_len + 1}];\n"
        f"    memset(src, 'A', {src_len});\n"
        f"    src[{src_len}] = '\\0';\n"
        "    strcpy(dst, src);\n"
        '    printf("%d", (int)strlen(dst));\n'
        "    return 0;\n}"
    )
    from .helpers import pp, run
    from repro.core.slr import SafeLibraryReplacement
    text = pp(source)
    before = run(text, preprocess=False)
    assert before.fault == "buffer-overflow"
    fixed = SafeLibraryReplacement(text, "t.c").run()
    after = run(fixed.new_text, preprocess=False)
    assert after.ok
    assert after.stdout_text == str(dst - 1)    # truncated to capacity
