"""Tests for Algorithm 1 (GetBufferLength)."""

from repro.core.bufferlen import (
    BufferLength, BufferLengthAnalyzer, LengthFailure,
)

from .helpers import find_calls, parse_and_analyze


def length_of_dest(src: str, callee: str = "strcpy", arg: int = 0):
    unit, text, pa = parse_and_analyze(src)
    call = find_calls(unit, callee)[0]
    analyzer = BufferLengthAnalyzer(pa, text)
    return analyzer.get_buffer_length(call.args[arg])


PRELUDE = "#include <string.h>\n#include <stdlib.h>\n"


class TestStaticBuffers:
    def test_array_identifier(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char buf[10]; strcpy(buf, "x"); return 0; }""")
        assert isinstance(result, BufferLength)
        assert result.render() == "sizeof(buf)"
        assert result.kind == "static"

    def test_pointer_to_array(self):
        # The paper's running example: dst = buf; strcpy(dst, src).
        result = length_of_dest(PRELUDE + """
        int main(void){
            char buf[10]; char *dst = buf;
            strcpy(dst, "x"); return 0; }""")
        assert result.render() == "sizeof(buf)"

    def test_pointer_chain(self):
        result = length_of_dest(PRELUDE + """
        int main(void){
            char buf[10];
            char *a = buf;
            char *dst = a;
            strcpy(dst, "x"); return 0; }""")
        # a and dst alias the same object -> conservative bail, OR the
        # chain resolves; either is sound.  Our alias rule treats shared
        # targets as aliasing, so this must fail with 'aliased'.
        assert isinstance(result, LengthFailure)
        assert result.reason == "aliased"

    def test_string_literal(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ strcpy((char*)"abc", "x"); return 0; }""")
        assert isinstance(result, BufferLength)
        assert result.render() == "4"


class TestPointerArithmetic:
    def test_plus_constant(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char buf[10]; strcpy(buf + 4, "x"); return 0; }""")
        assert result.render() == "sizeof(buf) - 4"

    def test_minus_constant(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char buf[10]; char *p = buf;
            strcpy(p - 2, "x"); return 0; }""")
        assert result.render() == "sizeof(buf) + 2"

    def test_constant_on_left(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char buf[10]; strcpy(4 + buf, "x"); return 0; }""")
        assert result.render() == "sizeof(buf) - 4"

    def test_non_constant_offset_fails(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char buf[10]; int i = 1;
            strcpy(buf + i, "x"); return 0; }""")
        assert isinstance(result, LengthFailure)
        assert result.reason == "unsupported-expr"

    def test_prefix_increment(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char buf[10]; char *p = buf;
            strcpy(++p, "x"); return 0; }""")
        assert isinstance(result, BufferLength)
        assert result.render() == "sizeof(buf) - 1"

    def test_prefix_decrement(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char buf[10]; char *p = buf;
            strcpy(--p, "x"); return 0; }""")
        assert result.render() == "sizeof(buf) + 1"

    def test_nested_arithmetic(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char buf[16]; strcpy((buf + 2) + 3, "x");
            return 0; }""")
        assert result.render() == "sizeof(buf) - 5"


class TestHeapBuffers:
    def test_malloc(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char *p = malloc(32); strcpy(p, "x");
            return 0; }""")
        assert isinstance(result, BufferLength)
        assert result.render() == "malloc_usable_size(p)"
        assert result.kind == "heap"

    def test_malloc_behind_cast(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char *p = (char *)malloc(32); strcpy(p, "x");
            return 0; }""")
        assert result.render() == "malloc_usable_size(p)"

    def test_calloc(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char *p = calloc(4, 8); strcpy(p, "x");
            return 0; }""")
        assert result.render() == "malloc_usable_size(p)"

    def test_assignment_after_declaration(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char *p; p = malloc(16); strcpy(p, "x");
            return 0; }""")
        assert result.render() == "malloc_usable_size(p)"


class TestFailures:
    def test_parameter_buffer(self):
        # Paper failure 1: buffer passed as a parameter.
        result = length_of_dest(PRELUDE + """
        void f(char *dst) { strcpy(dst, "x"); }""")
        assert isinstance(result, LengthFailure)
        assert result.reason in ("no-unique-def", "no-heap-alloc")

    def test_buffer_from_unknown_function(self):
        result = length_of_dest(PRELUDE + """
        char *provide(void);
        int main(void){ char *p = provide(); strcpy(p, "x"); return 0; }""")
        assert isinstance(result, LengthFailure)
        assert result.reason in ("no-heap-alloc", "unsupported-expr")

    def test_aliased_pointer(self):
        # Paper line 27: aliased pointers bail out.
        result = length_of_dest(PRELUDE + """
        int main(void){
            char *p = malloc(8);
            char *q = p;
            strcpy(p, "x");
            return 0; }""")
        assert isinstance(result, LengthFailure)
        assert result.reason == "aliased"

    def test_array_of_buffers(self):
        # Paper failure 3: no shape analysis on arrays of pointers.
        result = length_of_dest(PRELUDE + """
        int main(void){
            char *bufs[4];
            bufs[0] = malloc(8);
            strcpy(bufs[0], "x");
            return 0; }""")
        assert isinstance(result, LengthFailure)
        assert result.reason == "array-of-buffers"

    def test_ternary_allocation(self):
        # Paper failure 4: definition via a ternary of allocations.
        result = length_of_dest(PRELUDE + """
        int main(void){
            int big = 1;
            char *p = big ? malloc(64) : malloc(8);
            strcpy(p, "x");
            return 0; }""")
        assert isinstance(result, LengthFailure)
        assert result.reason == "ternary-alloc"

    def test_multiple_reaching_defs(self):
        result = length_of_dest(PRELUDE + """
        int main(void){
            int c = 1;
            char a[4], b[8];
            char *p;
            if (c) { p = a; } else { p = b; }
            strcpy(p, "x");
            return 0; }""")
        assert isinstance(result, LengthFailure)


class TestStructMembers:
    def test_member_array(self):
        result = length_of_dest(PRELUDE + """
        struct s { char name[12]; };
        int main(void){ struct s v; strcpy(v.name, "x"); return 0; }""")
        assert isinstance(result, BufferLength)
        assert result.render() == "sizeof(v.name)"

    def test_member_heap_pointer(self):
        result = length_of_dest(PRELUDE + """
        struct s { char *data; };
        int main(void){
            struct s v;
            v.data = malloc(24);
            strcpy(v.data, "x");
            return 0; }""")
        assert isinstance(result, BufferLength)
        assert result.render() == "malloc_usable_size(v.data)"

    def test_aliased_struct_member_fails(self):
        # Paper failure 2: struct treated as aggregate; aliasing bails.
        result = length_of_dest(PRELUDE + """
        struct s { char *data; };
        int main(void){
            struct s v;
            struct s *alias = &v;
            v.data = malloc(24);
            strcpy(v.data, "x");
            return 0; }""")
        assert isinstance(result, LengthFailure)
        assert result.reason == "aliased-struct"

    def test_struct_redefined_between_fails(self):
        result = length_of_dest(PRELUDE + """
        struct s { char *data; };
        int main(void){
            struct s v, w;
            v.data = malloc(24);
            v = w;
            strcpy(v.data, "x");
            return 0; }""")
        assert isinstance(result, LengthFailure)
        # The whole-struct assignment kills the member definition; the
        # recursion lands on the struct rvalue, which is not a buffer.
        # Any of these reasons is a sound bail-out.
        assert result.reason in ("struct-redefined", "no-unique-def",
                                 "no-heap-alloc", "unsupported-expr")


class TestArrayAccessForms:
    def test_2d_array_row(self):
        result = length_of_dest(PRELUDE + """
        int main(void){
            char grid[4][16];
            strcpy(grid[2], "x");
            return 0; }""")
        assert isinstance(result, BufferLength)
        assert result.render() == "sizeof(grid[2])"

    def test_address_of_element(self):
        result = length_of_dest(PRELUDE + """
        int main(void){ char buf[10]; strcpy(&buf[3], "x"); return 0; }""")
        assert isinstance(result, BufferLength)
        assert result.render() == "sizeof(buf) - 3"


class TestRenderAdjustments:
    def test_positive_adjustment_renders_minus(self):
        length = BufferLength("sizeof(b)", "static", adjustment=2)
        assert length.render() == "sizeof(b) - 2"

    def test_negative_adjustment_renders_plus(self):
        length = BufferLength("sizeof(b)", "static", adjustment=-3)
        assert length.render() == "sizeof(b) + 3"

    def test_zero_adjustment(self):
        length = BufferLength("sizeof(b)", "static")
        assert length.render() == "sizeof(b)"

    def test_failure_is_falsy(self):
        assert not LengthFailure("aliased")
