"""Tests for the stage-level profiler and its pipeline integration."""

import time

from repro.core import profile
from repro.core.batch import FileTask, SourceProgram, apply_batch, \
    transform_file
from repro.core.session import get_session

SRC = """\
#include <stdio.h>
#include <string.h>
int main(void) {
    char buf[8];
    char line[64];
    if (fgets(line, 64, stdin)) {
        strcpy(buf, line);
        printf("profile-test:%s", buf);
    }
    return 0;
}
"""


class TestCollector:
    def test_stage_is_noop_without_collector(self):
        with profile.stage("slr"):
            pass                        # must not raise or record

    def test_collect_records_stage_times(self):
        with profile.collect("f.c") as times:
            with profile.stage("parse"):
                time.sleep(0.002)
        assert times["parse"] >= 0.002

    def test_nested_stage_times_are_exclusive(self):
        with profile.collect("f.c") as times:
            with profile.stage("slr"):
                time.sleep(0.004)
                with profile.stage("parse"):
                    time.sleep(0.004)
        # The inner parse is charged to "parse", not double-counted
        # under "slr"; both stages sum to the true wall time.
        assert times["parse"] >= 0.004
        assert times["slr"] >= 0.003
        assert times["slr"] + times["parse"] < 0.1

    def test_record_charges_innermost_collector(self):
        with profile.collect("outer.c") as outer:
            with profile.collect("inner.c") as inner:
                profile.record("preprocess", 1.5)
            profile.record("preprocess", 0.5)
        assert inner == {"preprocess": 1.5}
        assert outer == {"preprocess": 0.5}

    def test_record_without_collector_is_noop(self):
        profile.record("preprocess", 1.0)

    def test_profiling_enabled_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not profile.profiling_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not profile.profiling_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profile.profiling_enabled()


class TestAnalyzeSubStages:
    def test_lazy_analyses_record_substages(self):
        from repro.core.session import AnalysisSession
        session = AnalysisSession()
        text = session.preprocess(SRC, "profile_sub.c").text
        with profile.collect("profile_sub.c") as times:
            analysis = session.parse(text, "profile_sub.c").analysis
            analysis.aliases
            for fn_name in analysis.cfgs:
                analysis.reaching_of(fn_name)
                analysis.dependence_of(fn_name)
        for sub in ("analyze:cfg", "analyze:reaching",
                    "analyze:pointsto", "analyze:alias",
                    "analyze:dependence"):
            assert sub in times, sub
            assert times[sub] >= 0.0

    def test_substages_render_in_canonical_order(self):
        per_file = {"a.c": {"analyze": 0.01, "analyze:pointsto": 0.004,
                            "analyze:cfg": 0.002, "slr": 0.01}}
        out = profile.render_profile(per_file, per_file_rows=False)
        lines = out.splitlines()
        order = [ln.split()[0] for ln in lines[2:] if ln]
        assert order.index("analyze") < order.index("analyze:cfg") \
            < order.index("analyze:pointsto") < order.index("slr")


class TestRendering:
    def test_merge_totals(self):
        per_file = {"a.c": {"parse": 1.0, "slr": 0.5},
                    "b.c": {"parse": 2.0}}
        assert profile.merge_totals(per_file) \
            == {"parse": 3.0, "slr": 0.5}

    def test_render_profile_tables(self):
        per_file = {"a.c": {"parse": 0.010, "slr": 0.005},
                    "b.c": {"parse": 0.020, "custom": 0.001}}
        out = profile.render_profile(per_file)
        assert "stage" in out and "mean ms/file" in out
        assert "parse" in out and "slr" in out
        assert "custom" in out                  # unknown stages render
        assert "a.c" in out and "b.c" in out

    def test_render_profile_caps_per_file_rows(self):
        per_file = {f"f{i:02d}.c": {"parse": float(i)}
                    for i in range(45)}
        out = profile.render_profile(per_file, max_files=40)
        assert "(… 5 more files omitted)" in out
        # The slowest files are the ones kept.
        assert "f44.c" in out and "f00.c" not in out

    def test_render_profile_summary_only(self):
        out = profile.render_profile({"a.c": {"parse": 0.01}},
                                     per_file_rows=False)
        assert "a.c" not in out and "parse" in out


class TestPipelineIntegration:
    def test_transform_file_ships_stage_times(self):
        session = get_session()
        text = session.preprocess(SRC, "profile_t.c").text
        report = transform_file(FileTask("profile_t.c", text))
        for stage_name in ("slr", "str", "verify"):
            assert stage_name in report.stage_times, stage_name
        assert all(t >= 0.0 for t in report.stage_times.values())
        # Exclusive accounting: stages sum to no more than the wall.
        assert sum(report.stage_times.values()) \
            <= report.wall_time + 0.005

    def test_batch_stage_totals(self):
        program = SourceProgram("prof", {"profile_b.c": SRC})
        result = apply_batch(program, jobs=1, validate=True)
        totals = result.stats.stage_totals
        for stage_name in ("preprocess", "slr", "str", "verify",
                           "validate"):
            assert stage_name in totals, stage_name
        assert result.stats.stage_times["profile_b.c"]

    def test_batch_stats_as_dict_has_stage_totals(self):
        program = SourceProgram("prof2", {"profile_c.c": SRC})
        result = apply_batch(program, jobs=1, validate=False)
        payload = result.stats.as_dict()
        assert "stage_totals_s" in payload
        assert "slr_cache" in payload and "validate_cache" in payload
        assert payload["deduplicated"] == 0
