"""``repro watch`` loop (core/watch.py) and its CLI surface."""

import io
import json
import os
import warnings

import pytest

from repro.core.watch import (DEFAULT_DEBOUNCE_S, WatchLoop, watch_debounce,
                              watch_interval)


SRC = """#include <stdio.h>
#include <string.h>

void shout(const char *msg) {
    char buf[8];
    strcat(buf, msg);
    printf("%s!\\n", buf);
}

int main(void) {
    char line[24];
    fgets(line, sizeof line, stdin);
    printf("%s", line);
    return 0;
}
"""


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_loop(tmp_path, **kwargs):
    path = tmp_path / "watched.c"
    path.write_text(SRC)
    clock = FakeClock()
    out = io.StringIO()
    loop = WatchLoop(str(path), fuzz_seed=3, clock=clock, sleep=lambda s: None,
                     out=out, **kwargs)
    return loop, path, clock, out


def touch(path, mtime):
    os.utime(path, (mtime, mtime))


def test_first_scan_is_full(tmp_path):
    loop, _path, _clock, out = make_loop(tmp_path)
    reports = loop.scan_once(force=True)
    assert len(reports) == 1
    assert reports[0].mode == "full"
    assert "[watch]" in out.getvalue()
    assert "full" in out.getvalue()


def test_edit_processes_after_debounce(tmp_path):
    loop, path, clock, _out = make_loop(tmp_path, debounce_s=0.5)
    loop.scan_once(force=True)

    path.write_text(SRC.replace('printf("%s!\\n", buf);',
                                'printf("%s!!\\n", buf);'))
    touch(path, 2000.0)
    # First sight of the change starts the quiet period.
    assert loop.scan_once() == []
    # Still inside the debounce window: nothing processed.
    clock.now += 0.2
    assert loop.scan_once() == []
    # Another save restarts the window.
    touch(path, 2001.0)
    clock.now += 0.4
    assert loop.scan_once() == []
    # Quiet long enough: exactly one update, incremental.
    clock.now += 0.6
    reports = loop.scan_once()
    assert len(reports) == 1
    assert reports[0].mode == "incremental"
    assert reports[0].invalidated == frozenset({"shout"})
    # Nothing left pending.
    assert loop.scan_once() == []


def test_unchanged_file_is_not_reprocessed(tmp_path):
    loop, _path, clock, _out = make_loop(tmp_path)
    loop.scan_once(force=True)
    clock.now += 10.0
    assert loop.scan_once() == []


def test_directory_watch_picks_up_new_files(tmp_path):
    (tmp_path / "a.c").write_text(SRC)
    out = io.StringIO()
    loop = WatchLoop(str(tmp_path), validate=False, clock=FakeClock(),
                     sleep=lambda s: None, out=out)
    assert len(loop.scan_once(force=True)) == 1
    (tmp_path / "b.c").write_text(SRC)
    assert len(loop.scan_once(force=True)) == 2   # a.c no-op + b.c full
    assert sorted(os.path.basename(p) for p in loop.files) == \
        ["a.c", "b.c"]


def test_unprocessable_file_is_contained(tmp_path):
    (tmp_path / "good.c").write_text(SRC)
    (tmp_path / "garbage.c").write_text("int main() {\n\x01\x02\n}\n")
    out = io.StringIO()
    loop = WatchLoop(str(tmp_path), validate=False, clock=FakeClock(),
                     sleep=lambda s: None, out=out)
    reports = loop.scan_once(force=True)
    modes = {r.filename: r.mode for r in reports}
    assert modes["garbage.c"] == "error"
    assert modes["good.c"] == "full"
    assert "LexError" in next(r.reason for r in reports
                              if r.mode == "error")


def test_json_output_streams_records(tmp_path):
    loop, _path, _clock, out = make_loop(tmp_path, json_output=True)
    loop.scan_once(force=True)
    record = json.loads(out.getvalue().strip())
    assert record["mode"] == "full"
    assert record["path"].endswith("watched.c")
    assert "verdicts" in record and "func_cache" in record


def test_run_bounded_scans(tmp_path):
    loop, _path, _clock, _out = make_loop(tmp_path)
    sleeps = []
    loop.sleep = sleeps.append
    assert loop.run(max_scans=3) == 0
    assert sleeps == [loop.interval_s] * 3


def test_bad_debounce_knob_warns_once_and_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_WATCH_DEBOUNCE", "soon")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert watch_debounce() == DEFAULT_DEBOUNCE_S
    assert len(caught) == 1
    assert "REPRO_WATCH_DEBOUNCE" in str(caught[0].message)
    monkeypatch.setenv("REPRO_WATCH_DEBOUNCE", "-1")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert watch_debounce() == DEFAULT_DEBOUNCE_S
    assert len(caught) == 1


def test_good_knobs_parse(monkeypatch):
    monkeypatch.setenv("REPRO_WATCH_DEBOUNCE", "1.5")
    assert watch_debounce() == 1.5
    monkeypatch.setenv("REPRO_WATCH_INTERVAL", "0.05")
    assert watch_interval() == 0.05


# ----------------------------------------------------------------- CLI

def test_cli_watch_once(tmp_path, capsys):
    from repro.cli import main
    path = tmp_path / "w.c"
    path.write_text(SRC)
    assert main(["watch", str(path), "--once", "--no-validate"]) == 0
    out = capsys.readouterr().out
    assert "[watch]" in out and "full" in out


def test_cli_watch_missing_path(tmp_path, capsys):
    from repro.cli import main
    assert main(["watch", str(tmp_path / "nope.c"), "--once"]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_cache_stats_reports_func_family(tmp_path, capsys,
                                             fresh_store):
    from repro.cli import main
    from repro.core.incremental import IncrementalEngine
    engine = IncrementalEngine("stats.c", validate=False)
    engine.update(SRC)
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "func" in out
    assert "this process" in out


class TestDeletedWhileWatched:
    """PR 10 satellite: a watched file deleted under the loop — between
    polls, or in the race window between the debounce settling and the
    re-read — is treated as a removal: one ``removed`` record, engine
    state dropped, and the loop keeps watching."""

    def test_deleted_between_polls_emits_one_removal(self, tmp_path):
        loop, path, clock, out = make_loop(tmp_path, validate=False)
        loop.scan_once(force=True)
        os.remove(path)
        clock.now += 10.0
        reports = loop.scan_once()
        assert [r.mode for r in reports] == ["removed"]
        assert reports[0].reason == "watched file deleted"
        assert loop.files == {}
        assert "removed" in out.getvalue()
        # The loop keeps running; the gone file produces nothing more.
        clock.now += 10.0
        assert loop.scan_once() == []

    def test_deleted_between_debounce_and_read(self, tmp_path,
                                               monkeypatch):
        """The narrow race: stat saw the edit, the quiet period passed,
        and the file vanished before the re-read opened it."""
        loop, path, clock, _out = make_loop(tmp_path, validate=False,
                                            debounce_s=0.5)
        loop.scan_once(force=True)
        # The edit is observed (stat succeeds) but the file is gone by
        # the time the settled change is read back.
        real_stat = os.stat

        class _Stat:
            st_mtime = 2000.0
            st_mode = 0o100644          # regular file (isdir → False)

        def fake_stat(p, *args, **kwargs):
            if str(p) == str(path):
                return _Stat()
            return real_stat(p, *args, **kwargs)

        monkeypatch.setattr(os, "stat", fake_stat)
        os.remove(path)
        assert loop.scan_once() == []       # change seen, quiet begins
        clock.now += 1.0
        reports = loop.scan_once()          # settled → read → ENOENT
        assert [r.mode for r in reports] == ["removed"]
        assert loop.files == {}

    def test_recreated_file_starts_fresh(self, tmp_path):
        loop, path, clock, _out = make_loop(tmp_path, validate=False)
        loop.scan_once(force=True)
        os.remove(path)
        clock.now += 10.0
        assert [r.mode for r in loop.scan_once()] == ["removed"]
        path.write_text(SRC)
        touch(path, 3000.0)
        reports = loop.scan_once(force=True)
        assert [r.mode for r in reports] == ["full"]    # fresh session

    def test_directory_watch_sweeps_deleted_file(self, tmp_path):
        (tmp_path / "a.c").write_text(SRC)
        (tmp_path / "b.c").write_text(SRC)
        out = io.StringIO()
        loop = WatchLoop(str(tmp_path), validate=False, clock=FakeClock(),
                         sleep=lambda s: None, out=out)
        assert len(loop.scan_once(force=True)) == 2
        os.remove(tmp_path / "b.c")
        reports = loop.scan_once(force=True)
        by_file = {r.filename: r.mode for r in reports}
        assert by_file["b.c"] == "removed"
        assert sorted(os.path.basename(p) for p in loop.files) == ["a.c"]

    def test_never_read_file_vanishing_is_silent(self, tmp_path):
        """A file that appears and disappears before its first read was
        never watched content — no removal record."""
        loop, path, clock, _out = make_loop(tmp_path, validate=False)
        # No force scan: the file has never been processed.
        os.remove(path)
        assert loop.scan_once() == []
        assert loop.files == {}
