"""Unit tests for the C type model."""

import pytest

from repro.cfront.ctypes_model import (
    ArrayType, BOOL, BoolType, CHAR, DOUBLE, EnumType, FLOAT, FloatType,
    FunctionType, INT, IntType, LONG, PointerType, SHORT, StructType,
    UCHAR, UINT, ULONG, VOID, VoidType, integer_promote,
    usual_arithmetic_conversions,
)


class TestSizes:
    def test_integer_sizes_lp64(self):
        assert CHAR.sizeof() == 1
        assert SHORT.sizeof() == 2
        assert INT.sizeof() == 4
        assert LONG.sizeof() == 8
        assert IntType("long long").sizeof() == 8

    def test_float_sizes(self):
        assert FLOAT.sizeof() == 4
        assert DOUBLE.sizeof() == 8

    def test_pointer_size(self):
        assert PointerType(VOID).sizeof() == 8
        assert PointerType(CHAR).sizeof() == 8

    def test_array_size(self):
        assert ArrayType(CHAR, 10).sizeof() == 10
        assert ArrayType(INT, 4).sizeof() == 16

    def test_incomplete_array_has_no_size(self):
        with pytest.raises(TypeError):
            ArrayType(CHAR, None).sizeof()

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            VOID.sizeof()

    def test_function_has_no_size(self):
        with pytest.raises(TypeError):
            FunctionType(INT, []).sizeof()


class TestIntBehaviour:
    def test_ranges(self):
        assert CHAR.min_value() == -128
        assert CHAR.max_value() == 127
        assert UCHAR.min_value() == 0
        assert UCHAR.max_value() == 255
        assert INT.max_value() == 2**31 - 1
        assert UINT.max_value() == 2**32 - 1

    def test_wrap_signed(self):
        assert CHAR.wrap(128) == -128
        assert CHAR.wrap(-129) == 127
        assert INT.wrap(2**31) == -(2**31)

    def test_wrap_unsigned(self):
        assert UCHAR.wrap(256) == 0
        assert UCHAR.wrap(-1) == 255
        assert UINT.wrap(2**32 + 5) == 5

    def test_bool_wrap(self):
        assert BOOL.wrap(42) == 1
        assert BOOL.wrap(0) == 0


class TestStructLayout:
    def test_packed_chars(self):
        s = StructType("s")
        s.define([("a", CHAR), ("b", CHAR)])
        assert s.sizeof() == 2

    def test_alignment_padding(self):
        s = StructType("s")
        s.define([("c", CHAR), ("i", INT)])
        assert s.member_offset("i")[0] == 4
        assert s.sizeof() == 8

    def test_tail_padding(self):
        s = StructType("s")
        s.define([("i", INT), ("c", CHAR)])
        assert s.sizeof() == 8

    def test_stralloc_layout(self):
        # The layout the STR runtime depends on.
        s = StructType("stralloc")
        s.define([("s", PointerType(CHAR)), ("f", PointerType(CHAR)),
                  ("len", UINT), ("a", UINT)])
        assert s.member_offset("s")[0] == 0
        assert s.member_offset("f")[0] == 8
        assert s.member_offset("len")[0] == 16
        assert s.member_offset("a")[0] == 20
        assert s.sizeof() == 24

    def test_union_size_is_max(self):
        u = StructType("u", is_union=True)
        u.define([("i", INT), ("buf", ArrayType(CHAR, 13))])
        assert u.sizeof() >= 13
        assert u.member_offset("buf")[0] == 0

    def test_incomplete_struct(self):
        s = StructType("fwd")
        assert not s.is_complete
        with pytest.raises(TypeError):
            s.sizeof()

    def test_unknown_member(self):
        s = StructType("s")
        s.define([("a", INT)])
        with pytest.raises(KeyError):
            s.member_offset("nope")


class TestClassification:
    def test_char_pointer(self):
        assert PointerType(CHAR).is_char_pointer
        assert not PointerType(INT).is_char_pointer

    def test_char_array(self):
        assert ArrayType(CHAR, 4).is_char_array
        assert not ArrayType(INT, 4).is_char_array

    def test_scalar(self):
        assert INT.is_scalar
        assert PointerType(VOID).is_scalar
        assert not ArrayType(CHAR, 2).is_scalar

    def test_decay(self):
        decayed = ArrayType(CHAR, 10).decay()
        assert isinstance(decayed, PointerType)
        assert decayed.pointee.is_char
        fn = FunctionType(INT, [])
        assert isinstance(fn.decay(), PointerType)
        assert INT.decay() is INT


class TestConversions:
    def test_promote_small_ints(self):
        assert integer_promote(CHAR) == INT
        assert integer_promote(SHORT) == INT
        assert integer_promote(BOOL) == INT
        assert integer_promote(LONG) == LONG

    def test_usual_conversions_float_wins(self):
        assert usual_arithmetic_conversions(INT, DOUBLE) == DOUBLE
        assert usual_arithmetic_conversions(FLOAT, INT) == FLOAT

    def test_usual_conversions_rank(self):
        assert usual_arithmetic_conversions(INT, LONG) == LONG
        assert usual_arithmetic_conversions(CHAR, CHAR) == INT

    def test_usual_conversions_unsigned(self):
        assert usual_arithmetic_conversions(UINT, INT) == UINT
        assert usual_arithmetic_conversions(ULONG, LONG) == ULONG
        # unsigned int + long -> long (long can represent all uint values)
        assert usual_arithmetic_conversions(UINT, LONG) == LONG


class TestEquality:
    def test_int_types(self):
        assert IntType("int") == IntType("int")
        assert IntType("int") != IntType("int", signed=False)
        assert IntType("int") != IntType("long")

    def test_pointer_types(self):
        assert PointerType(CHAR) == PointerType(CHAR)
        assert PointerType(CHAR) != PointerType(INT)

    def test_array_types(self):
        assert ArrayType(CHAR, 3) == ArrayType(CHAR, 3)
        assert ArrayType(CHAR, 3) != ArrayType(CHAR, 4)

    def test_qualifiers_dont_break_identity(self):
        qualified = INT.with_qualifiers({"const"})
        assert qualified == INT         # equality ignores qualifiers
        assert "const" in qualified.qualifiers

    def test_enum_wraps_like_int(self):
        e = EnumType("color")
        assert e.sizeof() == 4
        assert e.wrap(2**31) == -(2**31)
