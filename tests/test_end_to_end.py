"""Integration tests across the whole pipeline, plus the public API."""

import repro
from repro.core.batch import SourceProgram, apply_batch
from repro.vm.interp import run_program_files

from .helpers import run


class TestPublicAPI:
    def test_fix_buffer_overflows_one_call(self):
        result = repro.fix_buffer_overflows("""
            #include <string.h>
            int main(void) {
                char b[4];
                strcpy(b, "much too long");
                return 0;
            }
        """)
        assert any(o.transformed for o in result.outcomes)
        assert repro.run_c(result.new_text).ok

    def test_slr_only(self):
        result = repro.fix_buffer_overflows(
            "#include <string.h>\n"
            "int main(void){ char b[4]; strcpy(b, \"xyzzy!\"); return 0; }",
            str_transform=False)
        assert all(o.transformation == "SLR" for o in result.outcomes)

    def test_str_only(self):
        result = repro.fix_buffer_overflows(
            "int main(void){ char b[4]; b[9] = 'x'; return 0; }",
            slr=False)
        assert all(o.transformation == "STR" for o in result.outcomes)
        assert repro.run_c(result.new_text).ok

    def test_preprocess_helper(self):
        text = repro.preprocess("#define N 4\nint arr[N];")
        assert "int arr[4];" in text

    def test_version(self):
        assert repro.__version__


class TestMultiFilePrograms:
    def test_cross_file_calls(self):
        program = SourceProgram(
            name="two-files",
            files={
                "lib.c": '#include "lib.h"\n'
                         "int triple(int x) { return 3 * x; }\n",
                "main.c": '#include <stdio.h>\n#include "lib.h"\n'
                          "int main(void) { "
                          'printf("%d\\n", triple(14)); return 0; }\n',
            },
            headers={"lib.h": "int triple(int x);\n"},
        )
        result = run_program_files(program.preprocess().files)
        assert result.stdout_text == "42\n"

    def test_batch_on_multifile_program(self):
        program = SourceProgram(
            name="multi",
            files={
                "a.c": "#include <string.h>\n#include <stdio.h>\n"
                       "void f(void) { char b[8]; strcpy(b, \"hi\"); "
                       'printf("%s\\n", b); }\n',
                "main.c": "void f(void);\n"
                          "int main(void) { f(); return 0; }\n",
            },
        )
        batch = apply_batch(program)
        assert batch.all_parse
        assert batch.transformed("SLR") == 1
        after = run_program_files(batch.transformed_program.files)
        assert after.stdout_text == "hi\n"


class TestCombinedTransformations:
    def test_slr_then_str_compose(self):
        source = """
        #include <stdio.h>
        #include <string.h>
        int main(void) {
            char big[32];
            char small[4];
            strcpy(big, "start");      /* SLR site */
            big[1] = 'T';              /* STR pattern 12 */
            strcpy(small, "overflowing input");  /* SLR fixes this */
            printf("%s\\n", big);
            return 0;
        }
        """
        before = run(source)
        assert before.fault == "buffer-overflow"
        result = repro.fix_buffer_overflows(source)
        after = repro.run_c(result.new_text)
        assert after.ok
        assert after.stdout_text == "sTart\n"

    def test_double_slr_is_stable(self):
        source = ("#include <string.h>\n"
                  "void f(void){ char b[8]; strcpy(b, \"x\"); }")
        first = repro.fix_buffer_overflows(source, str_transform=False)
        second = repro.apply_slr(first.new_text)
        # g_strlcpy is not an unsafe function: nothing left to transform.
        assert second.candidates == 0
        assert second.new_text == first.new_text

    def test_transformed_output_always_reparses(self):
        from repro.cfront.parser import parse_translation_unit
        source = """
        #include <stdio.h>
        #include <string.h>
        #include <stdlib.h>
        int main(void) {
            char stack[16];
            char *heap = malloc(10);
            char *walk = stack;
            strcpy(stack, "abc");
            strcat(stack, "def");
            sprintf(heap, "%d", 5);
            walk++;
            *walk = 'Z';
            printf("%s %s\\n", stack, heap);
            return 0;
        }
        """
        result = repro.fix_buffer_overflows(source)
        parse_translation_unit(result.new_text)


class TestFaultTaxonomy:
    """Every CWE category produces its distinctive fault kind in the VM."""

    def test_stack_overflow_kind(self):
        result = run("#include <string.h>\nint main(void){ char b[4]; "
                     "strcpy(b, \"overflow\"); return 0; }")
        assert result.fault == "buffer-overflow"

    def test_heap_overflow_kind(self):
        result = run("#include <string.h>\n#include <stdlib.h>\n"
                     "int main(void){ char *b = malloc(8); "
                     "b[8] = 'x'; return 0; }")
        assert result.fault == "buffer-overflow"

    def test_underwrite_kind(self):
        result = run("int main(void){ char b[4]; int i = -1; "
                     "b[i] = 'x'; return 0; }")
        assert result.fault == "buffer-underwrite"

    def test_overread_kind(self):
        result = run("int main(void){ char b[4]; char c = b[4]; "
                     "return c; }")
        assert result.fault == "buffer-overread"

    def test_underread_kind(self):
        result = run("int main(void){ char b[4]; int i = -2; "
                     "char c = b[i]; return c; }")
        assert result.fault == "buffer-underread"

    def test_dangerous_function_kind(self):
        result = run("#include <stdio.h>\nint main(void){ char b[4]; "
                     "gets(b); return 0; }", stdin=b"looooooong\n")
        assert result.fault == "buffer-overflow"
