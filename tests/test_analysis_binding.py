"""Tests for name binding (symtab) and type analysis (typecheck)."""

from repro.cfront import astnodes as ast
from repro.cfront.ctypes_model import (
    ArrayType, IntType, PointerType, LONG, ULONG,
)

from .helpers import local_symbols, parse_and_analyze


class TestBinding:
    def test_local_bound_to_declaration(self):
        unit, _, pa = parse_and_analyze(
            "int main(void) { int x = 1; return x; }")
        ret = unit.function("main").body.items[1]
        assert ret.value.symbol is not None
        assert ret.value.symbol.name == "x"
        assert ret.value.symbol.is_local

    def test_global_vs_local(self):
        unit, _, pa = parse_and_analyze(
            "int g;\nint main(void) { int l; return g + l; }")
        ret = unit.function("main").body.items[1]
        g_use, l_use = ret.value.lhs, ret.value.rhs
        assert g_use.symbol.is_global
        assert l_use.symbol.is_local

    def test_shadowing(self):
        src = """
        int x = 1;
        int main(void) {
            int x = 2;
            { int x = 3; x = 4; }
            return x;
        }
        """
        unit, _, pa = parse_and_analyze(src)
        main = unit.function("main")
        inner_assign = next(n for n in main.walk()
                            if isinstance(n, ast.Assignment))
        ret = main.body.items[-1]
        assert inner_assign.lhs.symbol is not ret.value.symbol

    def test_parameter_binding(self):
        unit, _, pa = parse_and_analyze("int f(int a) { return a; }")
        fn = unit.function("f")
        ret = fn.body.items[0]
        assert ret.value.symbol.is_param
        assert ret.value.symbol is fn.params[0].symbol

    def test_function_symbol(self):
        unit, _, pa = parse_and_analyze(
            "int helper(void) { return 1; }\n"
            "int main(void) { return helper(); }")
        call = next(n for n in unit.walk() if isinstance(n, ast.Call))
        assert call.func.symbol.is_function

    def test_locals_of_registry(self):
        unit, _, pa = parse_and_analyze(
            "void f(void) { int a; char b[4]; }")
        names = {s.name for s in pa.symbols.locals_of["f"]}
        assert names == {"a", "b"}

    def test_member_name_not_bound_as_variable(self):
        src = """
        struct p { int len; };
        int main(void) { struct p v; v.len = 3; return v.len; }
        """
        unit, _, pa = parse_and_analyze(src)
        accesses = [n for n in unit.walk()
                    if isinstance(n, ast.FieldAccess)]
        assert all(a.base.symbol is not None for a in accesses)

    def test_for_loop_scope(self):
        src = """
        int main(void) {
            for (int i = 0; i < 2; i++) { }
            for (int i = 5; i > 0; i--) { }
            return 0;
        }
        """
        unit, _, pa = parse_and_analyze(src)
        loops = [n for n in unit.walk() if isinstance(n, ast.ForStmt)]
        sym0 = loops[0].init.declarators[0].symbol
        sym1 = loops[1].init.declarators[0].symbol
        assert sym0 is not sym1


class TestTypecheck:
    def get_expr_types(self, src: str) -> dict:
        unit, _, pa = parse_and_analyze(src)
        out = {}
        for node in unit.walk():
            if isinstance(node, ast.Identifier) and node.ctype is not None:
                out[node.name] = node.ctype
        return out

    def test_identifier_types(self):
        src = "int main(void){ char *p; char a[3]; long n; " \
              "p = a; n = (long)p; return (int)n; }"
        types = self.get_expr_types(src)
        assert isinstance(types["p"], PointerType)
        assert isinstance(types["a"], ArrayType)

    def test_array_access_type(self):
        unit, _, pa = parse_and_analyze(
            "int main(void){ char b[4]; b[0] = 'x'; return 0; }")
        access = next(n for n in unit.walk()
                      if isinstance(n, ast.ArrayAccess))
        assert access.ctype.is_char

    def test_deref_type(self):
        unit, _, pa = parse_and_analyze(
            "int main(void){ int v; int *p = &v; return *p; }")
        deref = next(n for n in unit.walk()
                     if isinstance(n, ast.Unary) and n.op == "*")
        assert deref.ctype == IntType("int")

    def test_address_of_type(self):
        unit, _, pa = parse_and_analyze(
            "int main(void){ int v; int *p = &v; return 0; }")
        addr = next(n for n in unit.walk()
                    if isinstance(n, ast.Unary) and n.op == "&")
        assert isinstance(addr.ctype, PointerType)

    def test_pointer_plus_int_is_pointer(self):
        unit, _, pa = parse_and_analyze(
            "int main(void){ char b[8]; char *p = b + 2; return 0; }")
        plus = next(n for n in unit.walk()
                    if isinstance(n, ast.Binary) and n.op == "+")
        assert isinstance(plus.ctype, PointerType)

    def test_pointer_difference_is_long(self):
        unit, _, pa = parse_and_analyze(
            "int main(void){ char b[8]; long d = (b+4) - b; return 0; }")
        minus = next(n for n in unit.walk()
                     if isinstance(n, ast.Binary) and n.op == "-")
        assert minus.ctype == LONG

    def test_sizeof_is_size_t(self):
        unit, _, pa = parse_and_analyze(
            "int main(void){ char b[4]; return (int)sizeof(b); }")
        szof = next(n for n in unit.walk()
                    if isinstance(n, ast.SizeofExpr))
        assert szof.ctype == ULONG

    def test_comparison_is_int(self):
        unit, _, pa = parse_and_analyze(
            "int main(void){ long a = 1; return a < 2; }")
        cmp_node = next(n for n in unit.walk()
                        if isinstance(n, ast.Binary) and n.op == "<")
        assert cmp_node.ctype == IntType("int")

    def test_call_return_type(self):
        unit, _, pa = parse_and_analyze(
            "char *dup(void);\nint main(void){ char *p = dup(); return 0; }")
        call = next(n for n in unit.walk() if isinstance(n, ast.Call))
        assert isinstance(call.ctype, PointerType)

    def test_struct_member_type(self):
        src = """
        struct s { char name[8]; int id; };
        int main(void){ struct s v; v.id = 1; return v.id; }
        """
        unit, _, pa = parse_and_analyze(src)
        member = next(n for n in unit.walk()
                      if isinstance(n, ast.FieldAccess) and n.member == "id")
        assert member.ctype == IntType("int")

    def test_arrow_member_type(self):
        src = """
        struct s { char *data; };
        int main(void){ struct s v; struct s *p = &v; p->data = 0;
                        return 0; }
        """
        unit, _, pa = parse_and_analyze(src)
        member = next(n for n in unit.walk()
                      if isinstance(n, ast.FieldAccess) and n.arrow)
        assert isinstance(member.ctype, PointerType)

    def test_clean_program_no_diagnostics(self):
        _, _, pa = parse_and_analyze(
            "int main(void){ int a = 1; return a + 2; }")
        assert pa.type_diagnostics == []

    def test_unbound_identifier_diagnosed(self):
        _, _, pa = parse_and_analyze(
            "int main(void){ return mystery; }")
        assert any("mystery" in d.message for d in pa.type_diagnostics)
