"""Source rewriter: minimal, extent-based text edits.

Transformations queue edits against the preprocessed source text; ``apply``
materializes them in one pass.  Edits must not overlap (a nested replacement
inside an outer replacement is a transformation bug), and the rewriter
enforces this, mirroring how IDE refactoring engines guard their text-change
objects.
"""

from __future__ import annotations

from .source import SourceExtent


class RewriteConflict(Exception):
    """Two queued edits overlap."""


class Edit:
    __slots__ = ("start", "end", "replacement", "sequence")

    def __init__(self, start: int, end: int, replacement: str,
                 sequence: int):
        self.start = start
        self.end = end
        self.replacement = replacement
        self.sequence = sequence

    @property
    def is_insertion(self) -> bool:
        return self.start == self.end

    def __repr__(self) -> str:
        return f"Edit([{self.start},{self.end}) -> {self.replacement!r})"


class Rewriter:
    """Accumulates edits over one body of text."""

    def __init__(self, text: str):
        self.text = text
        self._edits: list[Edit] = []
        self._sequence = 0

    # ------------------------------------------------------------- queueing

    def replace(self, extent: SourceExtent, replacement: str) -> None:
        self._add(extent.start, extent.end, replacement)

    def replace_range(self, start: int, end: int, replacement: str) -> None:
        self._add(start, end, replacement)

    def insert_before(self, offset: int, text: str) -> None:
        self._add(offset, offset, text)

    def insert_after(self, extent: SourceExtent, text: str) -> None:
        self._add(extent.end, extent.end, text)

    def delete(self, extent: SourceExtent) -> None:
        self._add(extent.start, extent.end, "")

    def _add(self, start: int, end: int, replacement: str) -> None:
        if not 0 <= start <= end <= len(self.text):
            raise ValueError(f"edit [{start},{end}) outside text")
        edit = Edit(start, end, replacement, self._sequence)
        self._sequence += 1
        for other in self._edits:
            if _conflicts(edit, other):
                raise RewriteConflict(
                    f"edit {edit} overlaps already-queued {other}")
        self._edits.append(edit)

    @property
    def has_edits(self) -> bool:
        return bool(self._edits)

    @property
    def edit_count(self) -> int:
        return len(self._edits)

    def checkpoint(self) -> int:
        """Mark the current edit queue; pair with :meth:`rollback`."""
        return len(self._edits)

    def rollback(self, mark: int) -> None:
        """Drop every edit queued after ``mark``.

        Lets a driver contain a failing per-site transformation: edits
        the site queued before raising are discarded, so the surviving
        queue never holds a half-applied rewrite.
        """
        if not 0 <= mark <= len(self._edits):
            raise ValueError(f"bad rewriter checkpoint {mark}")
        del self._edits[mark:]

    def edits_since(self, mark: int) -> tuple[tuple[int, int, str], ...]:
        """The ``(start, end, replacement)`` triples queued after ``mark``.

        Positions are offsets into the *original* text, so a captured
        group can be replayed against a fresh :class:`Rewriter` over the
        same text (per-site composition across transformation runs).
        """
        if not 0 <= mark <= len(self._edits):
            raise ValueError(f"bad rewriter checkpoint {mark}")
        return tuple((e.start, e.end, e.replacement)
                     for e in self._edits[mark:])

    # ------------------------------------------------------------- applying

    def apply(self) -> str:
        """Apply all queued edits and return the new text."""
        # Stable order: by position; same-position insertions keep queue
        # order so a transformation can build up multi-line insertions.
        ordered = sorted(self._edits, key=lambda e: (e.start, e.end,
                                                     e.sequence))
        parts: list[str] = []
        cursor = 0
        for edit in ordered:
            parts.append(self.text[cursor:edit.start])
            parts.append(edit.replacement)
            cursor = edit.end
        parts.append(self.text[cursor:])
        return "".join(parts)

    def preview(self) -> list[tuple[str, str]]:
        """Return (old, new) snippets for each edit, for logging/UIs."""
        return [(self.text[e.start:e.end], e.replacement)
                for e in sorted(self._edits, key=lambda e: e.start)]


def _conflicts(a: Edit, b: Edit) -> bool:
    # Pure insertions at the same point are allowed (they compose in
    # sequence order); anything else that overlaps is a conflict.
    if a.is_insertion and b.is_insertion:
        return False
    if a.is_insertion:
        return b.start < a.start < b.end
    if b.is_insertion:
        return a.start < b.start < a.end
    return a.start < b.end and b.start < a.end


def line_indent(text: str, offset: int) -> str:
    """Return the leading whitespace of the line containing ``offset``."""
    line_start = text.rfind("\n", 0, offset) + 1
    end = line_start
    while end < len(text) and text[end] in " \t":
        end += 1
    return text[line_start:end]


def statement_line_start(text: str, offset: int) -> int:
    """Offset of the first character of the line containing ``offset``."""
    return text.rfind("\n", 0, offset) + 1


def end_of_line(text: str, offset: int) -> int:
    """Offset just past the newline of the line containing ``offset``."""
    idx = text.find("\n", offset)
    return len(text) if idx == -1 else idx + 1
