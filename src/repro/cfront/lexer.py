"""C99 lexer.

One master-regex tokenizer serves both the preprocessor (which needs
newline-significant token streams and ``#`` directive detection) and the
parser (which consumes a newline-free stream of preprocessed tokens).
Comments and whitespace are skipped but recorded via ``space_before`` so the
preprocessor can regenerate readable text.
"""

from __future__ import annotations

import re

from .source import LexError, SourceFile
from .tokens import (
    CHAR_CONST, EOF, HASH, ID, KEYWORD, KEYWORDS, NEWLINE, NUMBER, PUNCT,
    PUNCTUATORS, STRING, Token,
)

_PUNCT_ALTERNATION = "|".join(re.escape(p) for p in PUNCTUATORS)

# Order matters: comments and strings must win over punctuation; floats over
# ints.  Preprocessing numbers (C99 6.4.8) are matched loosely and validated
# later where it matters.
_MASTER = re.compile(
    r"""
    (?P<ws>[ \t\r\f\v]+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<unterminated_comment>/\*.*)
  | (?P<newline>\n)
  | (?P<string>L?"(?:[^"\\\n]|\\.)*")
  | (?P<char>L?'(?:[^'\\\n]|\\.)+')
  | (?P<number>\.?[0-9](?:[eEpP][+-]|[0-9a-zA-Z_.])*)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>%s)
    """ % _PUNCT_ALTERNATION,
    re.VERBOSE | re.DOTALL,
)

_LINE_SPLICE = re.compile(r"\\\r?\n")


def splice_lines(text: str) -> str:
    """Remove backslash-newline line splices (translation phase 2).

    Replaces each splice with nothing; line numbers downstream refer to the
    spliced text, which is how the rest of the pipeline sees the file.
    """
    return _LINE_SPLICE.sub("", text)


class Lexer:
    """Tokenizes a :class:`SourceFile` into :class:`Token` objects."""

    def __init__(self, source: SourceFile, *, preprocessor_mode: bool = False):
        self.source = source
        self.preprocessor_mode = preprocessor_mode

    def tokenize(self) -> list[Token]:
        src = self.source
        text = src.text
        tokens: list[Token] = []
        append = tokens.append
        pos = 0
        length = len(text)
        space_pending = False
        at_line_start = True
        pp_mode = self.preprocessor_mode

        while pos < length:
            match = _MASTER.match(text, pos)
            if match is None:
                line, col = src.line_col(pos)
                raise LexError(f"unexpected character {text[pos]!r}",
                               src.name, line, col)
            kind = match.lastgroup
            tok_text = match.group()
            start = pos
            pos = match.end()

            if kind == "ws":
                space_pending = True
                continue
            if kind in ("line_comment", "block_comment"):
                space_pending = True
                if "\n" in tok_text and pp_mode:
                    # A block comment spanning lines still ends the logical
                    # preprocessor line(s) it crosses.
                    for i, ch in enumerate(tok_text):
                        if ch == "\n":
                            off = start + i
                            ln, cl = src.line_col(off)
                            append(Token(NEWLINE, "\n", off, ln, cl))
                    at_line_start = True
                continue
            if kind == "unterminated_comment":
                line, col = src.line_col(start)
                raise LexError("unterminated block comment",
                               src.name, line, col)
            if kind == "newline":
                if pp_mode:
                    ln, cl = src.line_col(start)
                    append(Token(NEWLINE, "\n", start, ln, cl))
                at_line_start = True
                space_pending = False
                continue

            line, col = src.line_col(start)
            if kind == "id":
                tkind = KEYWORD if tok_text in KEYWORDS else ID
            elif kind == "number":
                tkind = NUMBER
            elif kind == "string":
                tkind = STRING
            elif kind == "char":
                tkind = CHAR_CONST
            else:  # punct
                if pp_mode and tok_text == "#" and at_line_start:
                    tkind = HASH
                else:
                    tkind = PUNCT
            append(Token(tkind, tok_text, start, line, col, space_pending))
            space_pending = False
            at_line_start = False

        eof_line, eof_col = src.line_col(length)
        if pp_mode and tokens and tokens[-1].kind != NEWLINE:
            append(Token(NEWLINE, "\n", length, eof_line, eof_col))
        append(Token(EOF, "", length, eof_line, eof_col))
        return tokens


def tokenize(text: str, name: str = "<string>",
             *, preprocessor_mode: bool = False) -> list[Token]:
    """Convenience wrapper: splice lines, build a SourceFile, tokenize."""
    spliced = splice_lines(text)
    return Lexer(SourceFile(name, spliced),
                 preprocessor_mode=preprocessor_mode).tokenize()
