"""C99 lexer.

One master-regex tokenizer serves both the preprocessor (which needs
newline-significant token streams and ``#`` directive detection) and the
parser (which consumes a newline-free stream of preprocessed tokens).
Comments and whitespace are skipped but recorded via ``space_before`` so the
preprocessor can regenerate readable text.

The hot loop dispatches on the master pattern's *group index* (an int
compare instead of a ``lastgroup`` string lookup), tracks line/column
incrementally instead of binary-searching the line table per token, and
replaces keyword/punctuator slices with their interned canonical
spellings (:data:`~repro.cfront.tokens.KEYWORD_SPELLINGS` /
:data:`~repro.cfront.tokens.PUNCT_SPELLINGS`).
"""

from __future__ import annotations

import re
from sys import intern as _intern

from .source import LexError, SourceFile
from .tokens import (
    CHAR_CONST, EOF, HASH, ID, KEYWORD, KEYWORD_SPELLINGS, NEWLINE, NUMBER,
    PUNCT, PUNCT_SPELLINGS, PUNCTUATORS, STRING, Token,
)

_PUNCT_ALTERNATION = "|".join(re.escape(p) for p in PUNCTUATORS)

# Order matters: comments and strings must win over punctuation; floats over
# ints.  Preprocessing numbers (C99 6.4.8) are matched loosely and validated
# later where it matters.
#
# Each mode's master pattern swallows the whitespace *preceding* a token in
# the same match (the optional ``ws`` prefix group), so the hot loop runs
# one regex match per token rather than one per whitespace run + one per
# token.  ``end`` matches only at end-of-input, so a trailing whitespace
# run still yields a successful (final) match.  The two modes differ in
# where newlines live: the preprocessor needs them as tokens, the parser
# only needs them counted, so the parser-mode pattern folds ``\n`` into
# the prefix and drops the ``newline`` group.
_CORE = r"""
    (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<unterminated_comment>/\*.*)
  %(newline)s
  | (?P<string>L?"(?:[^"\\\n]|\\.)*")
  | (?P<char>L?'(?:[^'\\\n]|\\.)+')
  | (?P<number>\.?[0-9](?:[eEpP][+-]|[0-9a-zA-Z_.])*)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>%(punct)s)
  | (?P<end>\Z)
"""

_MASTER_PP = re.compile(
    r"(?P<ws>[ \t\r\f\v]+)?(?:" +
    _CORE % {"newline": r"| (?P<newline>\n)", "punct": _PUNCT_ALTERNATION} +
    r")",
    re.VERBOSE | re.DOTALL,
)
_MASTER_CC = re.compile(
    r"(?P<ws>[ \t\r\f\v\n]+)?(?:" +
    _CORE % {"newline": "", "punct": _PUNCT_ALTERNATION} +
    r")",
    re.VERBOSE | re.DOTALL,
)

# Group indices, for integer dispatch in the loop.  Groups shared by both
# patterns sit at the same indices (the pp-only ``newline`` group is last
# before ``string`` in _MASTER_PP, shifting the groups after it, so each
# pattern gets its own index table).


def _group_table(master: re.Pattern) -> dict[str, int]:
    return {name: master.groupindex[name]
            for name in master.groupindex}


_G_PP = _group_table(_MASTER_PP)
_G_CC = _group_table(_MASTER_CC)

_LINE_SPLICE = re.compile(r"\\\r?\n")


def splice_lines(text: str) -> str:
    """Remove backslash-newline line splices (translation phase 2).

    Replaces each splice with nothing; line numbers downstream refer to the
    spliced text, which is how the rest of the pipeline sees the file.
    """
    return _LINE_SPLICE.sub("", text)


class Lexer:
    """Tokenizes a :class:`SourceFile` into :class:`Token` objects."""

    def __init__(self, source: SourceFile, *, preprocessor_mode: bool = False):
        self.source = source
        self.preprocessor_mode = preprocessor_mode

    def tokenize(self) -> list[Token]:
        src = self.source
        text = src.text
        tokens: list[Token] = []
        append = tokens.append
        keyword_of = KEYWORD_SPELLINGS.get
        punct_of = PUNCT_SPELLINGS
        pp_mode = self.preprocessor_mode
        groups = _G_PP if pp_mode else _G_CC
        match_at = (_MASTER_PP if pp_mode else _MASTER_CC).match
        g_line_comment = groups["line_comment"]
        g_block_comment = groups["block_comment"]
        g_unterminated = groups["unterminated_comment"]
        g_newline = groups.get("newline", -1)
        g_string = groups["string"]
        g_char = groups["char"]
        g_number = groups["number"]
        g_id = groups["id"]
        g_end = groups["end"]
        pos = 0
        length = len(text)
        space_pending = False
        at_line_start = True
        line = 1              # 1-based line of ``pos``
        line_begin = 0        # offset of the first character of ``line``

        while pos < length:
            match = match_at(text, pos)
            if match is None:
                # Skip the whitespace prefix so the error names the actual
                # offending character, not the space before it.
                bad = pos
                ws_chars = " \t\r\f\v" if pp_mode else " \t\r\f\v\n"
                while bad < length and text[bad] in ws_chars:
                    if text[bad] == "\n":
                        line += 1
                        line_begin = bad + 1
                    bad += 1
                raise LexError(f"unexpected character {text[bad]!r}",
                               src.name, line, bad - line_begin + 1)
            group = match.lastindex
            start = match.start(group)
            if start != pos:
                # The optional ws prefix matched.
                space_pending = True
                if not pp_mode and "\n" in (ws := text[pos:start]):
                    line += ws.count("\n")
                    line_begin = pos + ws.rfind("\n") + 1
            pos = match.end()

            if group == g_end:
                break
            if group == g_id:
                tok_text = match.group(group)
                canonical = keyword_of(tok_text)
                if canonical is None:
                    tkind = ID
                    tok_text = _intern(tok_text)
                else:
                    tkind = KEYWORD
                    tok_text = canonical
            elif group == g_number:
                tkind = NUMBER
                tok_text = match.group(group)
            elif group == g_string:
                tkind = STRING
                tok_text = match.group(group)
            elif group == g_char:
                tkind = CHAR_CONST
                tok_text = match.group(group)
            elif group == g_line_comment:
                space_pending = True
                continue
            elif group == g_block_comment:
                space_pending = True
                tok_text = match.group(group)
                if "\n" in tok_text:
                    if pp_mode:
                        # A block comment spanning lines still ends the
                        # logical preprocessor line(s) it crosses.
                        nl = tok_text.find("\n")
                        while nl != -1:
                            off = start + nl
                            append(Token(NEWLINE, "\n", off, line,
                                         off - line_begin + 1))
                            line += 1
                            line_begin = off + 1
                            nl = tok_text.find("\n", nl + 1)
                        at_line_start = True
                    else:
                        line += tok_text.count("\n")
                        line_begin = start + tok_text.rfind("\n") + 1
                continue
            elif group == g_unterminated:
                raise LexError("unterminated block comment",
                               src.name, line, start - line_begin + 1)
            elif group == g_newline:
                append(Token(NEWLINE, "\n", start, line,
                             start - line_begin + 1))
                line += 1
                line_begin = pos
                at_line_start = True
                space_pending = False
                continue
            else:  # punct
                tok_text = match.group(group)
                if pp_mode and tok_text == "#" and at_line_start:
                    tkind = HASH
                else:
                    tkind = PUNCT
                tok_text = punct_of[tok_text]
            col = start - line_begin + 1
            append(Token(tkind, tok_text, start, line, col, space_pending))
            space_pending = False
            at_line_start = False
            if (tkind is STRING or tkind is CHAR_CONST) and \
                    "\n" in tok_text:
                # Only reachable on unspliced input (a backslash-newline
                # escape inside a literal); keep the line count honest.
                line += tok_text.count("\n")
                line_begin = start + tok_text.rfind("\n") + 1

        eof_line, eof_col = line, length - line_begin + 1
        if pp_mode and tokens and tokens[-1].kind != NEWLINE:
            append(Token(NEWLINE, "\n", length, eof_line, eof_col))
        append(Token(EOF, "", length, eof_line, eof_col))
        return tokens


def tokenize(text: str, name: str = "<string>",
             *, preprocessor_mode: bool = False) -> list[Token]:
    """Convenience wrapper: splice lines, build a SourceFile, tokenize."""
    spliced = splice_lines(text)
    return Lexer(SourceFile(name, spliced),
                 preprocessor_mode=preprocessor_mode).tokenize()
