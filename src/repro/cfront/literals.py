"""Parsing of C literal tokens: integer/float constants, chars, strings."""

from __future__ import annotations

_SIMPLE_ESCAPES = {
    "a": 7, "b": 8, "f": 12, "n": 10, "r": 13, "t": 9, "v": 11,
    "\\": 92, "'": 39, '"': 34, "?": 63, "0": 0,
}


class LiteralError(ValueError):
    """Raised for malformed literal token text."""


def decode_escapes(body: str) -> bytes:
    """Decode the body (no quotes) of a C char/string literal to bytes."""
    out = bytearray()
    i = 0
    n = len(body)
    while i < n:
        ch = body[i]
        if ch != "\\":
            out.extend(ch.encode("utf-8"))
            i += 1
            continue
        i += 1
        if i >= n:
            raise LiteralError("dangling backslash in literal")
        esc = body[i]
        if esc in _SIMPLE_ESCAPES:
            out.append(_SIMPLE_ESCAPES[esc])
            i += 1
        elif esc == "x":
            i += 1
            start = i
            while i < n and body[i] in "0123456789abcdefABCDEF":
                i += 1
            if start == i:
                raise LiteralError("\\x with no hex digits")
            out.append(int(body[start:i], 16) & 0xFF)
        elif esc.isdigit():
            start = i
            while i < n and i - start < 3 and body[i] in "01234567":
                i += 1
            out.append(int(body[start:i], 8) & 0xFF)
        else:
            # Unknown escape: C says implementation-defined; keep the char.
            out.append(ord(esc) & 0xFF)
            i += 1
    return bytes(out)


def parse_char_constant(text: str) -> int:
    """Parse a character constant token (including quotes) to its int value."""
    if text.startswith("L"):
        text = text[1:]
    if len(text) < 3 or text[0] != "'" or text[-1] != "'":
        raise LiteralError(f"malformed char constant {text!r}")
    decoded = decode_escapes(text[1:-1])
    if not decoded:
        raise LiteralError(f"empty char constant {text!r}")
    # Multi-char constants are implementation defined; fold big-endian.
    value = 0
    for byte in decoded:
        value = (value << 8) | byte
    return value


def parse_string_literal(text: str) -> bytes:
    """Parse a string literal token (including quotes) to its bytes, no NUL."""
    if text.startswith("L"):
        text = text[1:]
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise LiteralError(f"malformed string literal {text!r}")
    return decode_escapes(text[1:-1])


def parse_number(text: str) -> tuple[int | float, bool, bool, int]:
    """Parse a numeric constant token.

    Returns ``(value, is_float, is_unsigned, long_count)``.
    """
    t = text
    is_float = False
    # Detect floats: a '.' not part of a hex prefix, or exponent markers.
    lower = t.lower()
    if lower.startswith("0x"):
        if "." in lower or "p" in lower:
            is_float = True
    else:
        if "." in lower or "e" in lower:
            is_float = True

    suffix = ""
    # 'f'/'F' are digits in hex constants, only suffix letters elsewhere.
    suffix_chars = "uUlL" if lower.startswith("0x") else "uUlLfF"
    while t and t[-1] in suffix_chars:
        suffix = t[-1] + suffix
        t = t[:-1]
    is_unsigned = "u" in suffix.lower()
    long_count = suffix.lower().count("l")
    if "f" in suffix.lower() and not lower.startswith("0x"):
        is_float = True

    if is_float:
        try:
            value: int | float = float.fromhex(t) if lower.startswith("0x") \
                else float(t)
        except ValueError as exc:
            raise LiteralError(f"bad float constant {text!r}") from exc
        return value, True, False, long_count

    try:
        if len(t) > 1 and t[0] == "0" and t[1] not in "xXbB":
            ivalue = int(t, 8)          # C octal: 0755
        else:
            ivalue = int(t, 0)
    except ValueError as exc:
        raise LiteralError(f"bad integer constant {text!r}") from exc
    return ivalue, False, is_unsigned, long_count
