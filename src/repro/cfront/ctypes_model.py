"""C type model: type objects, sizes, layout, and classification helpers.

The model targets an LP64 ABI (the paper's evaluation platform is Linux):
char=1, short=2, int=4, long=8, long long=8, pointers=8.
"""

from __future__ import annotations

from typing import Optional


class CType:
    """Base class for all C types."""

    qualifiers: frozenset = frozenset()

    def with_qualifiers(self, quals: set[str]) -> "CType":
        if not quals:
            return self
        clone = self._shallow_copy()
        clone.qualifiers = self.qualifiers | frozenset(quals)
        return clone

    def _shallow_copy(self) -> "CType":
        import copy
        return copy.copy(self)

    # -- classification helpers used throughout analyses and transforms ----

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, (IntType, BoolType, EnumType))

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_arithmetic(self) -> bool:
        return self.is_integer or self.is_float

    @property
    def is_scalar(self) -> bool:
        return self.is_arithmetic or self.is_pointer

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_char(self) -> bool:
        return isinstance(self, IntType) and self.kind == "char"

    @property
    def is_char_pointer(self) -> bool:
        return self.is_pointer and self.pointee.is_char

    @property
    def is_char_array(self) -> bool:
        return self.is_array and self.element.is_char

    def decay(self) -> "CType":
        """Array-to-pointer and function-to-pointer decay."""
        if isinstance(self, ArrayType):
            return PointerType(self.element)
        if isinstance(self, FunctionType):
            return PointerType(self)
        return self

    def sizeof(self) -> int:
        raise TypeError(f"sizeof on incomplete or non-object type {self}")

    def alignof(self) -> int:
        return self.sizeof()

    def __str__(self) -> str:  # pragma: no cover - subclass responsibility
        return type(self).__name__


class VoidType(CType):
    def sizeof(self) -> int:
        raise TypeError("sizeof(void)")

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("void")


_INT_SIZES = {
    "char": 1, "short": 2, "int": 4, "long": 8, "long long": 8,
}

_INT_RANKS = {"char": 1, "short": 2, "int": 3, "long": 4, "long long": 5}


class IntType(CType):
    __match_args__ = ("kind", "signed")

    def __init__(self, kind: str = "int", signed: bool = True):
        if kind not in _INT_SIZES:
            raise ValueError(f"bad integer kind {kind!r}")
        self.kind = kind
        self.signed = signed

    def sizeof(self) -> int:
        return _INT_SIZES[self.kind]

    @property
    def rank(self) -> int:
        return _INT_RANKS[self.kind]

    def min_value(self) -> int:
        if not self.signed:
            return 0
        return -(1 << (8 * self.sizeof() - 1))

    def max_value(self) -> int:
        bits = 8 * self.sizeof()
        return (1 << (bits - (1 if self.signed else 0))) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python int into this type's representable range."""
        bits = 8 * self.sizeof()
        value &= (1 << bits) - 1
        if self.signed and value >= (1 << (bits - 1)):
            value -= 1 << bits
        return value

    def __str__(self) -> str:
        prefix = "" if self.signed else "unsigned "
        return prefix + self.kind

    def __eq__(self, other):
        return (isinstance(other, IntType) and other.kind == self.kind
                and other.signed == self.signed)

    def __hash__(self):
        return hash((self.kind, self.signed))


class BoolType(CType):
    def sizeof(self) -> int:
        return 1

    def wrap(self, value: int) -> int:
        return 1 if value else 0

    @property
    def signed(self) -> bool:
        return False

    def __str__(self) -> str:
        return "_Bool"

    def __eq__(self, other):
        return isinstance(other, BoolType)

    def __hash__(self):
        return hash("_Bool")


class FloatType(CType):
    def __init__(self, kind: str = "double"):
        if kind not in ("float", "double", "long double"):
            raise ValueError(f"bad float kind {kind!r}")
        self.kind = kind

    def sizeof(self) -> int:
        return {"float": 4, "double": 8, "long double": 16}[self.kind]

    def __str__(self) -> str:
        return self.kind

    def __eq__(self, other):
        return isinstance(other, FloatType) and other.kind == self.kind

    def __hash__(self):
        return hash(("float", self.kind))


class PointerType(CType):
    def __init__(self, pointee: CType):
        self.pointee = pointee

    def sizeof(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def __eq__(self, other):
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self):
        return hash(("ptr", self.pointee))


class ArrayType(CType):
    def __init__(self, element: CType, length: Optional[int]):
        self.element = element
        self.length = length        # None for incomplete arrays

    def sizeof(self) -> int:
        if self.length is None:
            raise TypeError("sizeof on incomplete array")
        return self.element.sizeof() * self.length

    def alignof(self) -> int:
        return self.element.alignof()

    def __str__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.element}[{n}]"

    def __eq__(self, other):
        return (isinstance(other, ArrayType)
                and other.element == self.element
                and other.length == self.length)

    def __hash__(self):
        return hash(("array", self.element, self.length))


class FunctionType(CType):
    def __init__(self, return_type: CType,
                 params: list[tuple[Optional[str], CType]],
                 variadic: bool = False):
        self.return_type = return_type
        self.params = params
        self.variadic = variadic

    def sizeof(self) -> int:
        raise TypeError("sizeof on function type")

    def __str__(self) -> str:
        args = ", ".join(str(t) for _, t in self.params)
        if self.variadic:
            args += ", ..." if args else "..."
        return f"{self.return_type}({args})"

    def __eq__(self, other):
        return (isinstance(other, FunctionType)
                and other.return_type == self.return_type
                and [t for _, t in other.params] == [t for _, t in self.params]
                and other.variadic == self.variadic)

    def __hash__(self):
        return hash(("fn", self.return_type, self.variadic, len(self.params)))


class StructType(CType):
    """A struct or union.  ``members`` is None while incomplete."""

    def __init__(self, tag: Optional[str], is_union: bool = False):
        self.tag = tag
        self.is_union = is_union
        self.members: Optional[list[tuple[str, CType]]] = None
        self._layout: Optional[dict[str, tuple[int, CType]]] = None
        self._size: Optional[int] = None
        self._align: Optional[int] = None

    def define(self, members: list[tuple[str, CType]]) -> None:
        self.members = members
        self._layout = None

    @property
    def is_complete(self) -> bool:
        return self.members is not None

    def _compute_layout(self) -> None:
        if self.members is None:
            raise TypeError(f"sizeof on incomplete struct {self.tag}")
        layout: dict[str, tuple[int, CType]] = {}
        offset = 0
        align = 1
        size = 0
        for name, mtype in self.members:
            malign = mtype.alignof()
            msize = mtype.sizeof()
            align = max(align, malign)
            if self.is_union:
                layout[name] = (0, mtype)
                size = max(size, msize)
            else:
                offset = _round_up(offset, malign)
                layout[name] = (offset, mtype)
                offset += msize
        if not self.is_union:
            size = offset
        self._layout = layout
        self._size = _round_up(size, align) if size else max(size, 1)
        self._align = align

    def sizeof(self) -> int:
        if self._size is None:
            self._compute_layout()
        return self._size

    def alignof(self) -> int:
        if self._align is None:
            self._compute_layout()
        return self._align

    def member_offset(self, name: str) -> tuple[int, CType]:
        if self._layout is None:
            self._compute_layout()
        if name not in self._layout:
            raise KeyError(f"struct {self.tag} has no member {name!r}")
        return self._layout[name]

    def member_type(self, name: str) -> CType:
        return self.member_offset(name)[1]

    def has_member(self, name: str) -> bool:
        return bool(self.members) and any(n == name for n, _ in self.members)

    def __str__(self) -> str:
        kw = "union" if self.is_union else "struct"
        return f"{kw} {self.tag or '<anon>'}"


class EnumType(CType):
    def __init__(self, tag: Optional[str]):
        self.tag = tag
        self.constants: dict[str, int] = {}

    def sizeof(self) -> int:
        return 4

    @property
    def signed(self) -> bool:
        return True

    @property
    def kind(self) -> str:
        return "int"

    def wrap(self, value: int) -> int:
        return IntType("int").wrap(value)

    def __str__(self) -> str:
        return f"enum {self.tag or '<anon>'}"


class VaListType(CType):
    def sizeof(self) -> int:
        return 24

    def __str__(self) -> str:
        return "va_list"

    def __eq__(self, other):
        return isinstance(other, VaListType)

    def __hash__(self):
        return hash("va_list")


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


# Shared singletons for the common types.
VOID = VoidType()
CHAR = IntType("char")
UCHAR = IntType("char", signed=False)
SHORT = IntType("short")
USHORT = IntType("short", signed=False)
INT = IntType("int")
UINT = IntType("int", signed=False)
LONG = IntType("long")
ULONG = IntType("long", signed=False)
LLONG = IntType("long long")
ULLONG = IntType("long long", signed=False)
FLOAT = FloatType("float")
DOUBLE = FloatType("double")
BOOL = BoolType()
SIZE_T = ULONG
CHAR_PTR = PointerType(CHAR)
VOID_PTR = PointerType(VOID)


def integer_promote(ctype: CType) -> CType:
    """C integer promotions: small ints promote to int."""
    if isinstance(ctype, (BoolType, EnumType)):
        return INT
    if isinstance(ctype, IntType) and ctype.rank < _INT_RANKS["int"]:
        return INT
    return ctype


def usual_arithmetic_conversions(a: CType, b: CType) -> CType:
    """The usual arithmetic conversions (C99 6.3.1.8), simplified."""
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        for kind in ("long double", "double", "float"):
            if (isinstance(a, FloatType) and a.kind == kind) or \
               (isinstance(b, FloatType) and b.kind == kind):
                return FloatType(kind)
    a = integer_promote(a)
    b = integer_promote(b)
    if not isinstance(a, IntType) or not isinstance(b, IntType):
        return INT
    if a == b:
        return a
    if a.signed == b.signed:
        return a if a.rank >= b.rank else b
    signed, unsigned = (a, b) if a.signed else (b, a)
    if unsigned.rank >= signed.rank:
        return unsigned
    if signed.sizeof() > unsigned.sizeof():
        return signed
    return IntType(signed.kind, signed=False)
