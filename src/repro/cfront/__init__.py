"""C frontend: lexer, preprocessor, parser, type model, rewriter.

This is the substrate the paper builds on (OpenRefactory/C in the original);
everything downstream — analyses, the SLR/STR transformations, and the VM —
consumes the AST and source extents produced here.
"""

from .astnodes import TranslationUnit, set_parents
from .parser import Parser, parse_translation_unit, preprocess_and_parse
from .preprocessor import PreprocessedSource, Preprocessor
from .rewriter import Rewriter
from .unparser import Unparser, type_text, unparse
from .source import (
    LexError, ParseError, PreprocessorError, SourceError, SourceExtent,
    SourceFile, count_source_lines,
)

__all__ = [
    "TranslationUnit", "set_parents",
    "Parser", "parse_translation_unit", "preprocess_and_parse",
    "PreprocessedSource", "Preprocessor",
    "Rewriter",
    "Unparser", "type_text", "unparse",
    "LexError", "ParseError", "PreprocessorError", "SourceError",
    "SourceExtent", "SourceFile", "count_source_lines",
]
