"""Content-keyed result caches for the C frontend.

The transformation pipeline preprocesses and parses the *same* text many
times: SLR parses the preprocessed unit, STR parses SLR's output, the
"still parses" verify re-parses it again, and the VM parses both the
original and the transformed text before executing them.  All of those
are pure functions of the input text, so this module provides small LRU
caches keyed on a content hash; :mod:`repro.core.session` builds the
parse/analysis cache on top, and :func:`preprocess_cached` below serves
every preprocessing consumer.

A cache constructed with a ``family`` is additionally backed by the
persistent artifact store (:mod:`repro.core.store`): lookups go memory →
disk → compute, and computed values are published to disk so fork-pool
workers and later CLI runs share them.  Every key is salted with the
tool fingerprint (:func:`repro.fingerprint.tool_fingerprint`), so
entries computed by an older checkout are never reused after a code
change — on disk *or* in memory.

Environment knobs:

* ``REPRO_CACHE=0``      — disable all frontend caches (every call misses,
  the disk layer included);
* ``REPRO_DISK_CACHE=0`` — disable only the disk layer;
* ``REPRO_CACHE_SIZE=N`` — LRU capacity per cache (default 512 entries).
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from dataclasses import dataclass

DEFAULT_CACHE_SIZE = 512


def caches_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def default_cache_size() -> int:
    from ..core.envknobs import int_knob
    return int_knob("REPRO_CACHE_SIZE", DEFAULT_CACHE_SIZE)


_SALT: bytes | None = None


def _key_salt() -> bytes:
    """The tool-fingerprint salt mixed into every content key."""
    override = os.environ.get("REPRO_FINGERPRINT")
    if override:
        return override.encode("utf-8")
    global _SALT
    if _SALT is None:
        from ..fingerprint import tool_fingerprint
        _SALT = tool_fingerprint().encode("utf-8")
    return _SALT


def content_key(*parts: str) -> str:
    """A stable digest of the given text parts (cache key).

    Salted with the tool fingerprint so a key computed by one checkout
    never addresses an entry computed by another — a rewriter bugfix
    invalidates every cached transform, parse, and verdict.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(_key_salt())
    digest.update(b"\x00")
    for part in parts:
        digest.update(part.encode("utf-8", errors="surrogateescape"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (and for merged snapshots).

    ``hits``/``misses`` count the in-memory LRU; ``disk_hits`` and
    ``disk_misses`` count the persistent-store consultations that memory
    misses fell through to (so ``misses - disk_hits`` values were truly
    computed), and the byte counters measure store traffic.
    """

    name: str = ""
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"name": self.name, "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4),
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written}

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(self.name, self.hits - earlier.hits,
                          self.misses - earlier.misses,
                          self.evictions - earlier.evictions,
                          self.disk_hits - earlier.disk_hits,
                          self.disk_misses - earlier.disk_misses,
                          self.bytes_read - earlier.bytes_read,
                          self.bytes_written - earlier.bytes_written)


class ContentCache:
    """A bounded LRU map from content keys to computed results.

    Results must be treated as immutable by callers: the same object is
    handed to every hit.  Build failures are never cached (the exception
    propagates and nothing is stored), so an entry always corresponds to
    a successful computation over exactly the keyed content.

    With a ``family``, memory misses fall through to the persistent
    artifact store before computing: a disk hit is unpickled, inserted
    into the LRU, and returned; a disk miss computes and publishes the
    value for every other worker and future run.
    """

    def __init__(self, name: str, maxsize: int | None = None,
                 family: str | None = None):
        self.name = name
        self.family = family
        self.maxsize = maxsize if maxsize is not None \
            else default_cache_size()
        self.stats = CacheStats(name)
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        _REGISTRY[name] = self

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def _disk_store(self):
        if self.family is None:
            return None
        from ..core.store import disk_enabled, get_store
        return get_store() if disk_enabled() else None

    def get_or_build(self, key: str, build):
        """Return the cached value for ``key``, building it on a miss."""
        if not caches_enabled():
            self.stats.misses += 1
            return build()
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.stats.misses += 1
        store = self._disk_store()
        value = None
        loaded = False
        if store is not None:
            loaded, value, nbytes = store.load(self.family, key)
            if loaded:
                self.stats.disk_hits += 1
                self.stats.bytes_read += nbytes
            else:
                self.stats.disk_misses += 1
        if not loaded:
            value = build()
            if store is not None:
                self.stats.bytes_written += store.store(
                    self.family, key, value)
        self._entries[key] = value
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return value


#: name -> cache, so stats can be reported across the whole frontend.
_REGISTRY: dict[str, ContentCache] = {}


def all_cache_stats() -> list[CacheStats]:
    return [cache.stats for cache in _REGISTRY.values()]


def stats_by_family() -> dict[str, CacheStats]:
    """This process's counters merged per artifact family.

    Caches without a family (memory-only) merge under their own name,
    so the view covers every cache while keying disk-backed ones the
    same way ``repro cache stats`` keys the store's usage rows."""
    merged: dict[str, CacheStats] = {}
    for cache in _REGISTRY.values():
        family = cache.family or cache.name
        into = merged.setdefault(family, CacheStats(family))
        s = cache.stats
        into.hits += s.hits
        into.misses += s.misses
        into.evictions += s.evictions
        into.disk_hits += s.disk_hits
        into.disk_misses += s.disk_misses
        into.bytes_read += s.bytes_read
        into.bytes_written += s.bytes_written
    return merged


def snapshot_stats() -> dict[str, CacheStats]:
    """A point-in-time copy of every cache's counters (for deltas)."""
    return {name: CacheStats(name, c.stats.hits, c.stats.misses,
                             c.stats.evictions, c.stats.disk_hits,
                             c.stats.disk_misses, c.stats.bytes_read,
                             c.stats.bytes_written)
            for name, c in _REGISTRY.items()}


def clear_all_caches() -> None:
    for cache in _REGISTRY.values():
        cache.clear()


# --------------------------------------------------------- preprocess cache

_PP_CACHE = ContentCache("preprocess", family="preprocess")


def preprocess_cached(text: str, filename: str = "<string>",
                      include_paths: dict[str, str] | None = None,
                      predefined: dict[str, str] | None = None,
                      *, use_builtin_headers: bool = True):
    """Preprocess ``text``, reusing the result for identical inputs.

    The key covers the file text, the private header set, the predefined
    macros, and the builtin-header switch — everything the preprocessor's
    output depends on — so an edited header or macro is a miss, never a
    stale hit.
    """
    from .preprocessor import Preprocessor

    key_parts = [filename, text]
    for mapping in (include_paths, predefined):
        for name in sorted(mapping or ()):
            key_parts.append(name)
            key_parts.append((mapping or {})[name])
        key_parts.append("\x1f")
    key_parts.append("builtin" if use_builtin_headers else "bare")
    key = content_key(*key_parts)

    def build():
        pp = Preprocessor(include_paths, predefined,
                          use_builtin_headers=use_builtin_headers)
        return pp.preprocess(text, filename)

    return _PP_CACHE.get_or_build(key, build)
