"""Content-keyed result caches for the C frontend.

The transformation pipeline preprocesses and parses the *same* text many
times: SLR parses the preprocessed unit, STR parses SLR's output, the
"still parses" verify re-parses it again, and the VM parses both the
original and the transformed text before executing them.  All of those
are pure functions of the input text, so this module provides small LRU
caches keyed on a content hash; :mod:`repro.core.session` builds the
parse/analysis cache on top, and :func:`preprocess_cached` below serves
every preprocessing consumer.

Environment knobs:

* ``REPRO_CACHE=0``      — disable all frontend caches (every call misses);
* ``REPRO_CACHE_SIZE=N`` — LRU capacity per cache (default 512 entries).
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from dataclasses import dataclass

DEFAULT_CACHE_SIZE = 512


def caches_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def default_cache_size() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_CACHE_SIZE",
                                         str(DEFAULT_CACHE_SIZE))))
    except ValueError:
        return DEFAULT_CACHE_SIZE


def content_key(*parts: str) -> str:
    """A stable digest of the given text parts (cache key)."""
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(part.encode("utf-8", errors="surrogateescape"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (and for merged snapshots)."""

    name: str = ""
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"name": self.name, "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4)}

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(self.name, self.hits - earlier.hits,
                          self.misses - earlier.misses,
                          self.evictions - earlier.evictions)


class ContentCache:
    """A bounded LRU map from content keys to computed results.

    Results must be treated as immutable by callers: the same object is
    handed to every hit.  Build failures are never cached (the exception
    propagates and nothing is stored), so an entry always corresponds to
    a successful computation over exactly the keyed content.
    """

    def __init__(self, name: str, maxsize: int | None = None):
        self.name = name
        self.maxsize = maxsize if maxsize is not None \
            else default_cache_size()
        self.stats = CacheStats(name)
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        _REGISTRY[name] = self

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def get_or_build(self, key: str, build):
        """Return the cached value for ``key``, building it on a miss."""
        if not caches_enabled():
            self.stats.misses += 1
            return build()
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.stats.misses += 1
        value = build()
        self._entries[key] = value
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return value


#: name -> cache, so stats can be reported across the whole frontend.
_REGISTRY: dict[str, ContentCache] = {}


def all_cache_stats() -> list[CacheStats]:
    return [cache.stats for cache in _REGISTRY.values()]


def snapshot_stats() -> dict[str, CacheStats]:
    """A point-in-time copy of every cache's counters (for deltas)."""
    return {name: CacheStats(name, c.stats.hits, c.stats.misses,
                             c.stats.evictions)
            for name, c in _REGISTRY.items()}


def clear_all_caches() -> None:
    for cache in _REGISTRY.values():
        cache.clear()


# --------------------------------------------------------- preprocess cache

_PP_CACHE = ContentCache("preprocess")


def preprocess_cached(text: str, filename: str = "<string>",
                      include_paths: dict[str, str] | None = None,
                      predefined: dict[str, str] | None = None,
                      *, use_builtin_headers: bool = True):
    """Preprocess ``text``, reusing the result for identical inputs.

    The key covers the file text, the private header set, the predefined
    macros, and the builtin-header switch — everything the preprocessor's
    output depends on — so an edited header or macro is a miss, never a
    stale hit.
    """
    from .preprocessor import Preprocessor

    key_parts = [filename, text]
    for mapping in (include_paths, predefined):
        for name in sorted(mapping or ()):
            key_parts.append(name)
            key_parts.append((mapping or {})[name])
        key_parts.append("\x1f")
    key_parts.append("builtin" if use_builtin_headers else "bare")
    key = content_key(*key_parts)

    def build():
        pp = Preprocessor(include_paths, predefined,
                          use_builtin_headers=use_builtin_headers)
        return pp.preprocess(text, filename)

    return _PP_CACHE.get_or_build(key, build)
