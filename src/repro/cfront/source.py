"""Source-file model: files, positions, extents.

Every stage of the frontend (lexer, preprocessor, parser, rewriter) speaks in
terms of this module.  A :class:`SourceFile` owns the text; a
:class:`SourceExtent` is a half-open ``[start, end)`` byte range into that
text.  AST nodes carry extents so that transformations can make minimal,
faithful text edits.
"""

from __future__ import annotations

import bisect


class SourceError(Exception):
    """Base class for all frontend errors carrying a source location."""

    def __init__(self, message: str, filename: str = "<unknown>",
                 line: int = 0, col: int = 0):
        self.message = message
        self.filename = filename
        self.line = line
        self.col = col
        super().__init__(f"{filename}:{line}:{col}: {message}")

    def __reduce__(self):
        # Rebuild from the structured fields, not the formatted string,
        # so errors crossing a multiprocessing pool round-trip exactly.
        return (type(self), (self.message, self.filename,
                             self.line, self.col))


class LexError(SourceError):
    """Raised when the lexer encounters an untokenizable character."""


class ParseError(SourceError):
    """Raised when the parser rejects the token stream."""


class PreprocessorError(SourceError):
    """Raised on malformed or unsupported preprocessor input."""


class SourceFile:
    """A named body of C source text with O(log n) offset->line/col mapping."""

    def __init__(self, name: str, text: str):
        self.name = name
        self.text = text
        # Offsets of the first character of each line; line numbers are
        # 1-based, columns are 1-based.
        self._line_starts = [0]
        find = text.find
        pos = find("\n")
        while pos != -1:
            self._line_starts.append(pos + 1)
            pos = find("\n", pos + 1)

    def __repr__(self) -> str:
        return f"SourceFile({self.name!r}, {len(self.text)} chars)"

    def line_col(self, offset: int) -> tuple[int, int]:
        """Map a byte offset to a (line, column) pair, both 1-based."""
        if offset < 0:
            offset = 0
        idx = bisect.bisect_right(self._line_starts, offset) - 1
        return idx + 1, offset - self._line_starts[idx] + 1

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line, without its newline."""
        if not 1 <= line <= len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = (self._line_starts[line] - 1
               if line < len(self._line_starts) else len(self.text))
        return self.text[start:end]

    @property
    def line_count(self) -> int:
        return len(self._line_starts)

    def slice(self, start: int, end: int) -> str:
        return self.text[start:end]


class SourceExtent:
    """A half-open [start, end) range in a :class:`SourceFile`.

    Plain ``__slots__`` class rather than a frozen dataclass: one extent is
    built per AST node and per token ``.extent`` access, and the generated
    frozen ``__init__`` (which funnels through ``object.__setattr__``)
    dominated parse-stage profiles.  Value semantics are preserved by the
    explicit ``__eq__``/``__hash__``.
    """

    __slots__ = ("start", "end")

    def __init__(self, start: int, end: int):
        if end < start:
            raise ValueError(f"backwards extent [{start}, {end})")
        self.start = start
        self.end = end

    def __eq__(self, other) -> bool:
        return isinstance(other, SourceExtent) and \
            self.start == other.start and self.end == other.end

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return f"SourceExtent(start={self.start}, end={self.end})"

    @property
    def length(self) -> int:
        return self.end - self.start

    def contains(self, other: "SourceExtent") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "SourceExtent") -> bool:
        return self.start < other.end and other.start < self.end

    def union(self, other: "SourceExtent") -> "SourceExtent":
        return SourceExtent(min(self.start, other.start),
                            max(self.end, other.end))


def count_source_lines(text: str) -> int:
    """Count non-blank source lines, the way KLOC figures are reported."""
    return sum(1 for line in text.splitlines() if line.strip())
