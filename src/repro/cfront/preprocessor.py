"""A C preprocessor.

Supports ``#include`` (over a virtual filesystem of header texts),
object-like and function-like ``#define`` (with ``#`` stringize, ``##``
paste, and ``__VA_ARGS__``), ``#undef``, the full conditional family
(``#if``/``#ifdef``/``#ifndef``/``#elif``/``#else``/``#endif``) with
constant-expression evaluation and ``defined()``, plus ``#error``,
``#warning``, ``#pragma`` and ``#line`` (the last two are ignored).

The paper's transformations run on *preprocessed* source (its corpus sizes
are quoted in "PP KLOC"), so the preprocessor's job here is to produce a
clean, self-contained C text that the parser and rewriter operate on.
"""

from __future__ import annotations

from .lexer import splice_lines, tokenize
from .source import PreprocessorError, SourceFile
from .tokens import (
    CHAR_CONST, EOF, HASH, ID, INDENT, KEYWORD, NEWLINE, NUMBER, PUNCT,
    STRING, Token, tokens_to_text,
)

#: Shared header-text -> token-list memo (see ``_process_text``).  Keyed by
#: the full header text, so an include path remapping the same name to
#: different content can never alias.  Headers form a small closed set, so
#: the memo needs no eviction.
_TOKEN_CACHE: dict[str, list[Token]] = {}


class Macro:
    """A ``#define`` entry."""

    __slots__ = ("name", "params", "variadic", "body", "is_function")

    def __init__(self, name: str, params: list[str] | None,
                 variadic: bool, body: list[Token]):
        self.name = name
        self.params = params
        self.variadic = variadic
        self.body = body
        self.is_function = params is not None

    def __repr__(self) -> str:
        if self.is_function:
            sig = ", ".join(self.params + (["..."] if self.variadic else []))
            return f"Macro({self.name}({sig}))"
        return f"Macro({self.name})"


class PreprocessedSource:
    """Result of preprocessing: text plus bookkeeping the evaluation uses."""

    def __init__(self, text: str, name: str, included: list[str],
                 macros: dict[str, Macro]):
        self.text = text
        self.name = name
        self.included = included
        self.macros = macros

    @property
    def line_count(self) -> int:
        return sum(1 for line in self.text.splitlines() if line.strip())


class Preprocessor:
    """Preprocess one translation unit.

    ``include_paths`` maps header names (as written between quotes/brackets)
    to header text.  Standard headers needed by the corpus and SAMATE
    programs are provided by :mod:`repro.cfront.headers` and merged in unless
    ``use_builtin_headers`` is False.
    """

    MAX_EXPANSION_DEPTH = 512

    def __init__(self, include_paths: dict[str, str] | None = None,
                 predefined: dict[str, str] | None = None,
                 *, use_builtin_headers: bool = True):
        self.includes: dict[str, str] = {}
        if use_builtin_headers:
            from .headers import BUILTIN_HEADERS
            self.includes.update(BUILTIN_HEADERS)
        if include_paths:
            self.includes.update(include_paths)
        self.macros: dict[str, Macro] = {}
        self.included_files: list[str] = []
        self._include_stack: list[str] = []
        for name, value in (predefined or {}).items():
            self.define_from_string(name, value)

    # ------------------------------------------------------------------ API

    def define_from_string(self, name: str, value: str = "1") -> None:
        body = [t for t in tokenize(value, f"<define {name}>")
                if t.kind != EOF]
        self.macros[name] = Macro(name, None, False, body)

    def preprocess(self, text: str, name: str = "<string>") -> PreprocessedSource:
        out_tokens = self._process_text(text, name)
        rendered = tokens_to_text(out_tokens)
        rendered = _squeeze_blank_lines(rendered)
        return PreprocessedSource(rendered, name, list(self.included_files),
                                  dict(self.macros))

    # --------------------------------------------------------- main driver

    def _process_text(self, text: str, name: str,
                      *, cache_tokens: bool = False) -> list[Token]:
        # Header texts recur across every translation unit in a batch run
        # (the builtin headers especially), and raw token lists are safe to
        # share: expansion only ever mutates clones, never source tokens.
        tokens = _TOKEN_CACHE.get(text) if cache_tokens else None
        if tokens is None:
            spliced = splice_lines(text)
            source = SourceFile(name, spliced)
            from .lexer import Lexer
            tokens = Lexer(source, preprocessor_mode=True).tokenize()
            if cache_tokens:
                _TOKEN_CACHE[text] = tokens
        return self._process_tokens(tokens, name)

    def _process_tokens(self, tokens: list[Token], name: str) -> list[Token]:
        out: list[Token] = []
        # cond_stack entries: [taken_now, taken_ever, seen_else]
        cond_stack: list[list[bool]] = []
        i = 0
        n = len(tokens)
        while i < n:
            tok = tokens[i]
            if tok.kind == EOF:
                break
            if tok.kind == HASH:
                line_toks, i = _collect_line(tokens, i + 1)
                self._directive(line_toks, out, cond_stack, name)
                continue
            if cond_stack and not cond_stack[-1][0]:
                # Skipping an inactive conditional branch.
                _, i = _collect_line(tokens, i)
                continue
            line_toks, i = _collect_line(tokens, i)
            expanded = self._expand(line_toks, name)
            if expanded and tok.col > 1:
                out.append(Token(INDENT, " " * (tok.col - 1)))
            out.extend(expanded)
            out.append(Token(NEWLINE, "\n"))
        if cond_stack:
            raise PreprocessorError("unterminated #if", name)
        return out

    # ----------------------------------------------------------- directives

    def _directive(self, line: list[Token], out: list[Token],
                   cond_stack: list[list[bool]], name: str) -> None:
        if not line:            # a lone '#' is a null directive
            return
        head = line[0]
        directive = head.text
        args = line[1:]
        active = all(frame[0] for frame in cond_stack)

        if directive == "if":
            parent_active = active
            value = bool(self._eval_condition(args, name)) if parent_active else False
            cond_stack.append([parent_active and value, value, False])
        elif directive in ("ifdef", "ifndef"):
            parent_active = active
            if not args or args[0].kind not in (ID, KEYWORD):
                raise PreprocessorError(f"#{directive} expects a name", name,
                                        head.line, head.col)
            defined = args[0].text in self.macros
            value = defined if directive == "ifdef" else not defined
            cond_stack.append([parent_active and value, value, False])
        elif directive == "elif":
            if not cond_stack:
                raise PreprocessorError("#elif without #if", name,
                                        head.line, head.col)
            frame = cond_stack[-1]
            if frame[2]:
                raise PreprocessorError("#elif after #else", name,
                                        head.line, head.col)
            parent_active = all(f[0] for f in cond_stack[:-1])
            if frame[1] or not parent_active:
                frame[0] = False
            else:
                value = bool(self._eval_condition(args, name))
                frame[0] = value
                frame[1] = frame[1] or value
        elif directive == "else":
            if not cond_stack:
                raise PreprocessorError("#else without #if", name,
                                        head.line, head.col)
            frame = cond_stack[-1]
            if frame[2]:
                raise PreprocessorError("duplicate #else", name,
                                        head.line, head.col)
            parent_active = all(f[0] for f in cond_stack[:-1])
            frame[0] = parent_active and not frame[1]
            frame[1] = True
            frame[2] = True
        elif directive == "endif":
            if not cond_stack:
                raise PreprocessorError("#endif without #if", name,
                                        head.line, head.col)
            cond_stack.pop()
        elif not active:
            return
        elif directive == "define":
            self._define(args, name)
        elif directive == "undef":
            if args and args[0].kind in (ID, KEYWORD):
                self.macros.pop(args[0].text, None)
        elif directive == "include":
            self._include(args, out, name)
        elif directive == "error":
            message = tokens_to_text(args).strip()
            raise PreprocessorError(f"#error {message}", name,
                                    head.line, head.col)
        elif directive in ("warning", "pragma", "line"):
            pass
        else:
            raise PreprocessorError(f"unknown directive #{directive}", name,
                                    head.line, head.col)

    def _define(self, args: list[Token], name: str) -> None:
        if not args or args[0].kind not in (ID, KEYWORD):
            raise PreprocessorError("#define expects a name", name)
        macro_name = args[0].text
        rest = args[1:]
        params: list[str] | None = None
        variadic = False
        # Function-like only when '(' immediately follows the name.
        if rest and rest[0].is_punct("(") and not rest[0].space_before:
            params = []
            i = 1
            if i < len(rest) and rest[i].is_punct(")"):
                i += 1
            else:
                while True:
                    if i >= len(rest):
                        raise PreprocessorError(
                            f"unterminated parameter list for {macro_name}",
                            name)
                    tok = rest[i]
                    if tok.is_punct("..."):
                        variadic = True
                        i += 1
                    elif tok.kind in (ID, KEYWORD):
                        params.append(tok.text)
                        i += 1
                    else:
                        raise PreprocessorError(
                            f"bad macro parameter {tok.text!r}", name,
                            tok.line, tok.col)
                    if i < len(rest) and rest[i].is_punct(","):
                        i += 1
                        continue
                    if i < len(rest) and rest[i].is_punct(")"):
                        i += 1
                        break
                    raise PreprocessorError(
                        f"expected ',' or ')' in macro {macro_name}", name)
            body = rest[i:]
        else:
            body = rest
        self.macros[macro_name] = Macro(macro_name, params, variadic,
                                        [t.clone() for t in body])

    def _include(self, args: list[Token], out: list[Token], name: str) -> None:
        header = self._include_target(args, name)
        if header in self._include_stack:
            return  # cycle: headers here are all effectively once-only
        if header not in self.includes:
            raise PreprocessorError(f"header not found: {header!r}", name)
        self.included_files.append(header)
        self._include_stack.append(header)
        try:
            out.extend(self._process_text(self.includes[header], header,
                                          cache_tokens=True))
        finally:
            self._include_stack.pop()

    def _include_target(self, args: list[Token], name: str) -> str:
        if args and args[0].kind == STRING:
            return args[0].text[1:-1]
        if args and args[0].is_punct("<"):
            parts = []
            for tok in args[1:]:
                if tok.is_punct(">"):
                    return "".join(parts)
                parts.append(tok.text)
        raise PreprocessorError("malformed #include", name)

    # ------------------------------------------------------ macro expansion

    def _expand(self, tokens: list[Token], name: str,
                depth: int = 0) -> list[Token]:
        if depth > self.MAX_EXPANSION_DEPTH:
            raise PreprocessorError("macro expansion too deep", name)
        out: list[Token] = []
        i = 0
        n = len(tokens)
        while i < n:
            tok = tokens[i]
            if tok.kind not in (ID, KEYWORD):
                out.append(tok)
                i += 1
                continue
            macro = self.macros.get(tok.text)
            hidden = tok.expanded_from or frozenset()
            if macro is None or tok.text in hidden:
                out.append(tok)
                i += 1
                continue
            if macro.is_function:
                j = i + 1
                if j >= n or not tokens[j].is_punct("("):
                    out.append(tok)     # name not followed by '(' — literal
                    i += 1
                    continue
                call_args, j = _collect_arguments(tokens, j, name)
                replaced = self._substitute(macro, call_args, name)
                new_hidden = hidden | {macro.name}
                for r in replaced:
                    r.expanded_from = (r.expanded_from or frozenset()) | new_hidden
                out.extend(self._expand(replaced, name, depth + 1))
                i = j
            else:
                replaced = [t.clone() for t in macro.body]
                new_hidden = hidden | {macro.name}
                for r in replaced:
                    r.expanded_from = (r.expanded_from or frozenset()) | new_hidden
                if replaced:
                    replaced[0].space_before = tok.space_before
                out.extend(self._expand(replaced, name, depth + 1))
                i += 1
        return out

    def _substitute(self, macro: Macro, args: list[list[Token]],
                    name: str) -> list[Token]:
        params = macro.params or []
        if macro.variadic:
            if len(args) < len(params):
                args = args + [[] for _ in range(len(params) - len(args))]
            va_args = args[len(params):]
            named = args[:len(params)]
        else:
            if len(args) == 1 and not args[0] and not params:
                args = []
            if len(args) != len(params):
                raise PreprocessorError(
                    f"macro {macro.name} expects {len(params)} args, "
                    f"got {len(args)}", name)
            va_args = []
            named = args
        arg_map = dict(zip(params, named))

        def lookup(param_tok: Token) -> list[Token] | None:
            if param_tok.kind in (ID, KEYWORD):
                if param_tok.text in arg_map:
                    return arg_map[param_tok.text]
                if param_tok.text == "__VA_ARGS__" and macro.variadic:
                    joined: list[Token] = []
                    for k, a in enumerate(va_args):
                        if k:
                            joined.append(Token(PUNCT, ","))
                        joined.extend(t.clone() for t in a)
                    return joined
            return None

        out: list[Token] = []
        body = macro.body
        i = 0
        n = len(body)
        while i < n:
            tok = body[i]
            # '#' stringize
            if tok.is_punct("#") and i + 1 < n:
                arg = lookup(body[i + 1])
                if arg is not None:
                    text = tokens_to_text(arg).strip().replace("\\", "\\\\") \
                                              .replace('"', '\\"')
                    out.append(Token(STRING, f'"{text}"',
                                     space_before=tok.space_before))
                    i += 2
                    continue
            # '##' paste
            if i + 1 < n and body[i + 1].is_punct("##"):
                left = lookup(tok)
                left_toks = ([t.clone() for t in left] if left is not None
                             else [tok.clone()])
                i += 2
                if i >= n:
                    raise PreprocessorError("'##' at end of macro body", name)
                right = lookup(body[i])
                right_toks = ([t.clone() for t in right] if right is not None
                              else [body[i].clone()])
                i += 1
                pasted = _paste(left_toks, right_toks, name)
                out.extend(pasted)
                continue
            arg = lookup(tok)
            if arg is not None:
                expanded_arg = self._expand([t.clone() for t in arg], name)
                if expanded_arg:
                    expanded_arg[0].space_before = tok.space_before
                out.extend(expanded_arg)
            else:
                out.append(tok.clone())
            i += 1
        return out

    # ------------------------------------------------- #if expression eval

    def _eval_condition(self, tokens: list[Token], name: str) -> int:
        # Handle 'defined X' / 'defined(X)' before macro expansion.
        resolved: list[Token] = []
        i = 0
        n = len(tokens)
        while i < n:
            tok = tokens[i]
            if tok.kind == ID and tok.text == "defined":
                i += 1
                if i < n and tokens[i].is_punct("("):
                    i += 1
                    if i >= n or tokens[i].kind not in (ID, KEYWORD):
                        raise PreprocessorError("bad defined()", name)
                    target = tokens[i].text
                    i += 1
                    if i >= n or not tokens[i].is_punct(")"):
                        raise PreprocessorError("bad defined()", name)
                    i += 1
                elif i < n and tokens[i].kind in (ID, KEYWORD):
                    target = tokens[i].text
                    i += 1
                else:
                    raise PreprocessorError("bad defined", name)
                resolved.append(Token(
                    NUMBER, "1" if target in self.macros else "0"))
            else:
                resolved.append(tok)
                i += 1
        expanded = self._expand(resolved, name)
        # Remaining identifiers evaluate to 0 (C11 6.10.1p4).
        final: list[Token] = []
        for tok in expanded:
            if tok.kind in (ID, KEYWORD):
                final.append(Token(NUMBER, "0"))
            else:
                final.append(tok)
        return _CondParser(final, name).parse()


# ---------------------------------------------------------------- helpers

def _collect_line(tokens: list[Token], i: int) -> tuple[list[Token], int]:
    """Collect tokens up to (excluding) the next NEWLINE; skip the newline."""
    out = []
    n = len(tokens)
    while i < n and tokens[i].kind not in (NEWLINE, EOF):
        out.append(tokens[i])
        i += 1
    if i < n and tokens[i].kind == NEWLINE:
        i += 1
    return out, i


def _collect_arguments(tokens: list[Token], i: int,
                       name: str) -> tuple[list[list[Token]], int]:
    """Collect macro call arguments; ``i`` points at '('. Returns (args, next)."""
    assert tokens[i].is_punct("(")
    i += 1
    args: list[list[Token]] = []
    current: list[Token] = []
    depth = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.kind in (NEWLINE,):
            i += 1
            continue
        if tok.kind == EOF:
            break
        if tok.is_punct("(") or tok.is_punct("[") or tok.is_punct("{"):
            depth += 1
            current.append(tok)
        elif tok.is_punct(")") and depth == 0:
            args.append(current)
            return args, i + 1
        elif tok.is_punct(")") or tok.is_punct("]") or tok.is_punct("}"):
            depth -= 1
            current.append(tok)
        elif tok.is_punct(",") and depth == 0:
            args.append(current)
            current = []
        else:
            current.append(tok)
        i += 1
    raise PreprocessorError("unterminated macro argument list", name)


def _paste(left: list[Token], right: list[Token], name: str) -> list[Token]:
    """Implement '##': join the last token of left with the first of right."""
    if not left:
        return right
    if not right:
        return left
    joined_text = left[-1].text + right[0].text
    rescanned = [t for t in tokenize(joined_text, "<paste>") if t.kind != EOF]
    if len(rescanned) != 1:
        raise PreprocessorError(
            f"pasting {left[-1].text!r} and {right[0].text!r} does not form "
            f"a valid token", name)
    rescanned[0].space_before = left[-1].space_before
    return left[:-1] + rescanned + right[1:]


def _parse_pp_number(text: str) -> int:
    """Parse an integer constant for #if evaluation."""
    t = text.rstrip("uUlL")
    try:
        return int(t, 0)
    except ValueError as exc:
        raise PreprocessorError(f"bad integer constant {text!r}") from exc


class _CondParser:
    """Precedence-climbing parser/evaluator for #if expressions."""

    _BINOPS = {
        "||": (1, lambda a, b: int(bool(a) or bool(b))),
        "&&": (2, lambda a, b: int(bool(a) and bool(b))),
        "|": (3, lambda a, b: a | b),
        "^": (4, lambda a, b: a ^ b),
        "&": (5, lambda a, b: a & b),
        "==": (6, lambda a, b: int(a == b)),
        "!=": (6, lambda a, b: int(a != b)),
        "<": (7, lambda a, b: int(a < b)),
        ">": (7, lambda a, b: int(a > b)),
        "<=": (7, lambda a, b: int(a <= b)),
        ">=": (7, lambda a, b: int(a >= b)),
        "<<": (8, lambda a, b: a << b),
        ">>": (8, lambda a, b: a >> b),
        "+": (9, lambda a, b: a + b),
        "-": (9, lambda a, b: a - b),
        "*": (10, lambda a, b: a * b),
        "/": (10, lambda a, b: a // b if b else 0),
        "%": (10, lambda a, b: a % b if b else 0),
    }

    def __init__(self, tokens: list[Token], name: str):
        self.tokens = tokens
        self.pos = 0
        self.name = name

    def parse(self) -> int:
        value = self._ternary()
        if self.pos != len(self.tokens):
            raise PreprocessorError("trailing tokens in #if expression",
                                    self.name)
        return value

    def _peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _ternary(self) -> int:
        cond = self._binary(0)
        tok = self._peek()
        if tok is not None and tok.is_punct("?"):
            self.pos += 1
            then = self._ternary()
            tok = self._peek()
            if tok is None or not tok.is_punct(":"):
                raise PreprocessorError("expected ':' in ?:", self.name)
            self.pos += 1
            other = self._ternary()
            return then if cond else other
        return cond

    def _binary(self, min_prec: int) -> int:
        left = self._unary()
        while True:
            tok = self._peek()
            if tok is None or tok.kind != PUNCT or tok.text not in self._BINOPS:
                return left
            prec, fn = self._BINOPS[tok.text]
            if prec < min_prec:
                return left
            self.pos += 1
            right = self._binary(prec + 1)
            left = fn(left, right)

    def _unary(self) -> int:
        tok = self._peek()
        if tok is None:
            raise PreprocessorError("unexpected end of #if expression",
                                    self.name)
        if tok.is_punct("!"):
            self.pos += 1
            return int(not self._unary())
        if tok.is_punct("-"):
            self.pos += 1
            return -self._unary()
        if tok.is_punct("+"):
            self.pos += 1
            return self._unary()
        if tok.is_punct("~"):
            self.pos += 1
            return ~self._unary()
        if tok.is_punct("("):
            self.pos += 1
            value = self._ternary()
            closing = self._peek()
            if closing is None or not closing.is_punct(")"):
                raise PreprocessorError("missing ')' in #if expression",
                                        self.name)
            self.pos += 1
            return value
        if tok.kind == NUMBER:
            self.pos += 1
            return _parse_pp_number(tok.text)
        if tok.kind == CHAR_CONST:
            self.pos += 1
            from .literals import parse_char_constant
            return parse_char_constant(tok.text)
        raise PreprocessorError(
            f"unexpected token {tok.text!r} in #if expression", self.name)


def _squeeze_blank_lines(text: str) -> str:
    out: list[str] = []
    blank = False
    for line in text.splitlines():
        if line.strip():
            out.append(line)
            blank = False
        elif not blank:
            out.append("")
            blank = True
    return "\n".join(out) + ("\n" if out else "")
