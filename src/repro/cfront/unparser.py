"""AST unparser: render a parsed translation unit back to C text.

The transformations themselves edit *original source text* (see
:mod:`repro.cfront.rewriter`) to keep diffs minimal; the unparser serves
the complementary uses a refactoring library needs:

* normalized output for golden tests and debugging dumps,
* round-trip checking (parse → unparse → parse must preserve the tree),
* programmatic C code generation from synthesized ASTs.

Operator precedence is respected, so the output re-parses to an
identical-shape tree without relying on recorded parentheses.
"""

from __future__ import annotations

from . import astnodes as ast
from .ctypes_model import (
    ArrayType, CType, EnumType, FunctionType, PointerType, StructType,
    VaListType,
)

# Precedence levels mirroring the parser's table; higher binds tighter.
_BINARY_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_PREC_ASSIGN = 0
_PREC_CONDITIONAL = 0.5
_PREC_UNARY = 11
_PREC_POSTFIX = 12
_PREC_PRIMARY = 13


def type_text(ctype: CType, declarator: str = "") -> str:
    """Render a C type with an optional declarator name inside it,
    handling the inside-out declarator syntax (arrays, pointers,
    function pointers)."""
    if isinstance(ctype, PointerType):
        inner = f"*{declarator}"
        if isinstance(ctype.pointee, (ArrayType, FunctionType)):
            inner = f"({inner})"
        return type_text(ctype.pointee, inner)
    if isinstance(ctype, ArrayType):
        length = "" if ctype.length is None else str(ctype.length)
        return type_text(ctype.element, f"{declarator}[{length}]")
    if isinstance(ctype, FunctionType):
        params = ", ".join(type_text(ptype, pname or "")
                           for pname, ptype in ctype.params)
        if ctype.variadic:
            params = f"{params}, ..." if params else "..."
        elif not params:
            params = "void"
        return type_text(ctype.return_type,
                         f"{declarator}({params})")
    base = _base_type_name(ctype)
    if declarator:
        return f"{base} {declarator}".rstrip()
    return base


def _base_type_name(ctype: CType) -> str:
    if isinstance(ctype, StructType):
        keyword = "union" if ctype.is_union else "struct"
        return f"{keyword} {ctype.tag}" if ctype.tag else keyword
    if isinstance(ctype, EnumType):
        return f"enum {ctype.tag}" if ctype.tag else "enum"
    if isinstance(ctype, VaListType):
        return "__builtin_va_list"
    return str(ctype)


class Unparser:
    """Renders AST nodes to C text."""

    def __init__(self, indent: str = "    "):
        self.indent_unit = indent

    # ---------------------------------------------------------------- API

    def unit(self, node: ast.TranslationUnit) -> str:
        parts = []
        for item in node.items:
            if isinstance(item, ast.FunctionDef):
                parts.append(self.function(item))
            else:
                parts.append(self.statement(item, 0))
        return "\n\n".join(parts) + "\n"

    def function(self, node: ast.FunctionDef) -> str:
        assert isinstance(node.ctype, FunctionType)
        params = []
        for param, (pname, ptype) in zip(node.params, node.ctype.params):
            params.append(type_text(ptype, param.name or pname or ""))
        if node.ctype.variadic:
            params.append("...")
        if not params:
            params = ["void"]
        storage = f"{node.storage_class} " if node.storage_class else ""
        header = (f"{storage}"
                  f"{type_text(node.ctype.return_type, node.name)}"
                  f"({', '.join(params)})")
        return f"{header}\n{self.statement(node.body, 0)}"

    # ---------------------------------------------------------- statements

    def statement(self, node: ast.Node, depth: int) -> str:
        pad = self.indent_unit * depth

        if isinstance(node, ast.CompoundStmt):
            inner = "\n".join(self.statement(item, depth + 1)
                              for item in node.items)
            return f"{pad}{{\n{inner}\n{pad}}}" if node.items \
                else f"{pad}{{\n{pad}}}"
        if isinstance(node, ast.Declaration):
            return f"{pad}{self.declaration(node)}"
        if isinstance(node, ast.ExprStmt):
            body = self.expr(node.expr) if node.expr is not None else ""
            return f"{pad}{body};"
        if isinstance(node, ast.IfStmt):
            text = (f"{pad}if ({self.expr(node.cond)})\n"
                    f"{self._substmt(node.then_stmt, depth)}")
            if node.else_stmt is not None:
                text += (f"\n{pad}else\n"
                         f"{self._substmt(node.else_stmt, depth)}")
            return text
        if isinstance(node, ast.WhileStmt):
            return (f"{pad}while ({self.expr(node.cond)})\n"
                    f"{self._substmt(node.body, depth)}")
        if isinstance(node, ast.DoWhileStmt):
            return (f"{pad}do\n{self._substmt(node.body, depth)}\n"
                    f"{pad}while ({self.expr(node.cond)});")
        if isinstance(node, ast.ForStmt):
            init = ""
            if isinstance(node.init, ast.Declaration):
                init = self.declaration(node.init).rstrip(";")
            elif isinstance(node.init, ast.ExprStmt) and \
                    node.init.expr is not None:
                init = self.expr(node.init.expr)
            cond = self.expr(node.cond) if node.cond is not None else ""
            advance = self.expr(node.advance) \
                if node.advance is not None else ""
            return (f"{pad}for ({init}; {cond}; {advance})\n"
                    f"{self._substmt(node.body, depth)}")
        if isinstance(node, ast.ReturnStmt):
            if node.value is None:
                return f"{pad}return;"
            return f"{pad}return {self.expr(node.value)};"
        if isinstance(node, ast.BreakStmt):
            return f"{pad}break;"
        if isinstance(node, ast.ContinueStmt):
            return f"{pad}continue;"
        if isinstance(node, ast.SwitchStmt):
            return (f"{pad}switch ({self.expr(node.cond)})\n"
                    f"{self._substmt(node.body, depth)}")
        if isinstance(node, ast.CaseStmt):
            return (f"{pad}case {self.expr(node.value)}:\n"
                    f"{self.statement(node.body, depth + 1)}")
        if isinstance(node, ast.DefaultStmt):
            return (f"{pad}default:\n"
                    f"{self.statement(node.body, depth + 1)}")
        if isinstance(node, ast.LabelStmt):
            return f"{pad}{node.name}:\n{self.statement(node.body, depth)}"
        if isinstance(node, ast.GotoStmt):
            return f"{pad}goto {node.label};"
        if isinstance(node, ast.EmptyStmt):
            return f"{pad};"
        raise ValueError(f"cannot unparse {type(node).__name__}")

    def _substmt(self, node: ast.Node, depth: int) -> str:
        if isinstance(node, ast.CompoundStmt):
            return self.statement(node, depth)
        return self.statement(node, depth + 1)

    def declaration(self, node: ast.Declaration) -> str:
        storage = f"{node.storage_class} " if node.storage_class else ""
        typedef = "typedef " if node.is_typedef else ""
        if not node.declarators:
            return f"{storage}{typedef}{_base_type_name(node.base_type)};"
        parts = []
        for declarator in node.declarators:
            text = type_text(declarator.ctype, declarator.name)
            if declarator.init is not None:
                text += f" = {self.init(declarator.init)}"
            parts.append(text)
        # Multiple declarators with divergent derived types are emitted as
        # full per-declarator types joined by ';' to stay correct.
        return f"{storage}{typedef}" + "; ".join(parts) + ";"

    def init(self, node: ast.Expression) -> str:
        if isinstance(node, ast.InitList):
            return "{" + ", ".join(self.init(i) for i in node.items) + "}"
        return self.expr(node)

    # ---------------------------------------------------------- expressions

    def expr(self, node: ast.Expression, parent_prec: float = -1) -> str:
        text, prec = self._expr(node)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr(self, node: ast.Expression) -> tuple[str, float]:
        if isinstance(node, (ast.IntLiteral, ast.FloatLiteral,
                             ast.CharLiteral)):
            return node.text, _PREC_PRIMARY
        if isinstance(node, ast.StringLiteral):
            return node.text, _PREC_PRIMARY
        if isinstance(node, ast.Identifier):
            return node.name, _PREC_PRIMARY
        if isinstance(node, ast.ArrayAccess):
            base = self.expr(node.base, _PREC_POSTFIX)
            return f"{base}[{self.expr(node.index)}]", _PREC_POSTFIX
        if isinstance(node, ast.FieldAccess):
            base = self.expr(node.base, _PREC_POSTFIX)
            op = "->" if node.arrow else "."
            return f"{base}{op}{node.member}", _PREC_POSTFIX
        if isinstance(node, ast.Call):
            func = self.expr(node.func, _PREC_POSTFIX)
            args = ", ".join(self.expr(a, _PREC_ASSIGN + 0.1)
                             for a in node.args)
            return f"{func}({args})", _PREC_POSTFIX
        if isinstance(node, ast.Unary):
            if node.is_postfix:
                operand = self.expr(node.operand, _PREC_POSTFIX)
                return f"{operand}{node.op}", _PREC_POSTFIX
            operand = self.expr(node.operand, _PREC_UNARY)
            # Avoid token pasting: `-` before `-a` must not become `--a`.
            space = " " if operand.startswith(node.op[-1]) else ""
            return f"{node.op}{space}{operand}", _PREC_UNARY
        if isinstance(node, ast.Binary):
            prec = _BINARY_PREC[node.op]
            lhs = self.expr(node.lhs, prec)
            rhs = self.expr(node.rhs, prec + 0.1)   # left-assoc
            return f"{lhs} {node.op} {rhs}", prec
        if isinstance(node, ast.Assignment):
            lhs = self.expr(node.lhs, _PREC_UNARY)
            rhs = self.expr(node.rhs, _PREC_ASSIGN)
            return f"{lhs} {node.op} {rhs}", _PREC_ASSIGN
        if isinstance(node, ast.Conditional):
            cond = self.expr(node.cond, _PREC_CONDITIONAL + 0.1)
            then = self.expr(node.then_expr)
            other = self.expr(node.else_expr, _PREC_CONDITIONAL)
            return f"{cond} ? {then} : {other}", _PREC_CONDITIONAL
        if isinstance(node, ast.Cast):
            operand = self.expr(node.operand, _PREC_UNARY)
            return f"({type_text(node.target_type)}){operand}", _PREC_UNARY
        if isinstance(node, ast.SizeofExpr):
            return f"sizeof({self.expr(node.operand)})", _PREC_UNARY
        if isinstance(node, ast.SizeofType):
            return f"sizeof({type_text(node.target_type)})", _PREC_UNARY
        if isinstance(node, ast.Comma):
            return (f"{self.expr(node.lhs, _PREC_ASSIGN)}, "
                    f"{self.expr(node.rhs, _PREC_ASSIGN)}"), -0.5
        if isinstance(node, ast.VaArg):
            return (f"__builtin_va_arg({self.expr(node.ap)}, "
                    f"{type_text(node.target_type)})"), _PREC_POSTFIX
        if isinstance(node, ast.InitList):
            return self.init(node), _PREC_PRIMARY
        raise ValueError(f"cannot unparse {type(node).__name__}")


def unparse(node: ast.Node) -> str:
    """Render an AST node (translation unit, statement, or expression)."""
    unparser = Unparser()
    if isinstance(node, ast.TranslationUnit):
        return unparser.unit(node)
    if isinstance(node, ast.FunctionDef):
        return unparser.function(node)
    if isinstance(node, ast.Expression):
        return unparser.expr(node)
    return unparser.statement(node, 0)
