"""AST node classes.

Every node carries a :class:`SourceExtent` into the *preprocessed* source
text, which is the text the rewriter edits.  Nodes expose ``children()`` for
generic traversal and get ``parent`` pointers assigned by
:func:`set_parents`, which analyses and transformations rely on (e.g. "find
the statement enclosing this call expression").
"""

from __future__ import annotations

from typing import Iterator, Optional

from .source import SourceExtent


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("extent", "parent", "_kids")

    _fields: tuple[str, ...] = ()

    def __init__(self, extent: SourceExtent):
        self.extent = extent
        self.parent: Optional[Node] = None
        # Cached child_list().  Safe because the tree is never structurally
        # mutated after parsing (transformations edit *text* and re-parse);
        # callers must not mutate the returned list.
        self._kids: Optional[list[Node]] = None

    def children(self) -> Iterator["Node"]:
        yield from self.child_list()

    def child_list(self) -> list["Node"]:
        """Child nodes as a list (the hot-path form of :meth:`children`).

        The returned list is cached on the node — treat it as read-only.
        """
        kids = self._kids
        if kids is None:
            kids = []
            append = kids.append
            for name in self._fields:
                value = getattr(self, name)
                if isinstance(value, Node):
                    append(value)
                elif isinstance(value, (list, tuple)):
                    for item in value:
                        if isinstance(item, Node):
                            append(item)
            self._kids = kids
        return kids

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this subtree, including self."""
        stack = [self]
        pop = stack.pop
        extend = stack.extend
        while stack:
            node = pop()
            yield node
            kids = node.child_list()
            if kids:
                extend(kids[::-1])

    def find_ancestor(self, *types: type) -> Optional["Node"]:
        node = self.parent
        while node is not None:
            if isinstance(node, types):
                return node
            node = node.parent
        return None

    def enclosing_statement(self) -> Optional["Statement"]:
        node: Node | None = self
        while node is not None and not isinstance(node, Statement):
            node = node.parent
        return node

    def enclosing_function(self) -> Optional["FunctionDef"]:
        found = self if isinstance(self, FunctionDef) \
            else self.find_ancestor(FunctionDef)
        return found

    def source_text(self, text: str) -> str:
        return text[self.extent.start:self.extent.end]

    def __repr__(self) -> str:
        name = type(self).__name__
        detail = getattr(self, "name", None) or getattr(self, "op", None) \
            or getattr(self, "value", None)
        if detail is not None:
            return f"{name}({detail!r})"
        return name


def set_parents(root: Node) -> None:
    """Assign ``parent`` pointers throughout the subtree rooted at ``root``."""
    stack = [root]
    pop = stack.pop
    extend = stack.extend
    while stack:
        node = pop()
        kids = node.child_list()
        for child in kids:
            child.parent = node
        if kids:
            extend(kids)


# ============================================================== expressions

class Expression(Node):
    __slots__ = ("ctype",)

    def __init__(self, extent: SourceExtent):
        super().__init__(extent)
        # Filled in by repro.analysis.typecheck.
        self.ctype = None


class IntLiteral(Expression):
    __slots__ = ("value", "text")
    _fields = ()

    def __init__(self, extent, value: int, text: str):
        super().__init__(extent)
        self.value = value
        self.text = text


class FloatLiteral(Expression):
    __slots__ = ("value", "text")

    def __init__(self, extent, value: float, text: str):
        super().__init__(extent)
        self.value = value
        self.text = text


class CharLiteral(Expression):
    __slots__ = ("value", "text")

    def __init__(self, extent, value: int, text: str):
        super().__init__(extent)
        self.value = value
        self.text = text


class StringLiteral(Expression):
    __slots__ = ("value", "text")

    def __init__(self, extent, value: bytes, text: str):
        super().__init__(extent)
        self.value = value      # decoded bytes, without the trailing NUL
        self.text = text        # original token text(s), including quotes


class Identifier(Expression):
    __slots__ = ("name", "symbol")

    def __init__(self, extent, name: str):
        super().__init__(extent)
        self.name = name
        # Bound by repro.analysis.symtab to a Symbol.
        self.symbol = None


class ArrayAccess(Expression):
    __slots__ = ("base", "index")
    _fields = ("base", "index")

    def __init__(self, extent, base: Expression, index: Expression):
        super().__init__(extent)
        self.base = base
        self.index = index


class FieldAccess(Expression):
    """``base.member`` or ``base->member`` (``arrow`` selects which)."""

    __slots__ = ("base", "member", "arrow")
    _fields = ("base",)

    def __init__(self, extent, base: Expression, member: str, arrow: bool):
        super().__init__(extent)
        self.base = base
        self.member = member
        self.arrow = arrow


class Call(Expression):
    __slots__ = ("func", "args")
    _fields = ("func", "args")

    def __init__(self, extent, func: Expression, args: list[Expression]):
        super().__init__(extent)
        self.func = func
        self.args = args

    @property
    def callee_name(self) -> str | None:
        return self.func.name if isinstance(self.func, Identifier) else None


class Unary(Expression):
    """Prefix (`-x`, `!x`, `*p`, `&x`, `++x`) or postfix (`x++`) operator."""

    __slots__ = ("op", "operand", "is_postfix")
    _fields = ("operand",)

    def __init__(self, extent, op: str, operand: Expression,
                 is_postfix: bool = False):
        super().__init__(extent)
        self.op = op
        self.operand = operand
        self.is_postfix = is_postfix


class Binary(Expression):
    __slots__ = ("op", "lhs", "rhs")
    _fields = ("lhs", "rhs")

    def __init__(self, extent, op: str, lhs: Expression, rhs: Expression):
        super().__init__(extent)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Assignment(Expression):
    """``lhs op rhs`` where op is '=', '+=', '-=', etc."""

    __slots__ = ("op", "lhs", "rhs")
    _fields = ("lhs", "rhs")

    def __init__(self, extent, op: str, lhs: Expression, rhs: Expression):
        super().__init__(extent)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Conditional(Expression):
    __slots__ = ("cond", "then_expr", "else_expr")
    _fields = ("cond", "then_expr", "else_expr")

    def __init__(self, extent, cond, then_expr, else_expr):
        super().__init__(extent)
        self.cond = cond
        self.then_expr = then_expr
        self.else_expr = else_expr


class Cast(Expression):
    __slots__ = ("target_type", "operand")
    _fields = ("operand",)

    def __init__(self, extent, target_type, operand: Expression):
        super().__init__(extent)
        self.target_type = target_type      # a CType
        self.operand = operand


class SizeofExpr(Expression):
    __slots__ = ("operand",)
    _fields = ("operand",)

    def __init__(self, extent, operand: Expression):
        super().__init__(extent)
        self.operand = operand


class SizeofType(Expression):
    __slots__ = ("target_type",)

    def __init__(self, extent, target_type):
        super().__init__(extent)
        self.target_type = target_type


class Comma(Expression):
    __slots__ = ("lhs", "rhs")
    _fields = ("lhs", "rhs")

    def __init__(self, extent, lhs, rhs):
        super().__init__(extent)
        self.lhs = lhs
        self.rhs = rhs


class InitList(Expression):
    """A brace-enclosed initializer list ``{a, b, c}``."""

    __slots__ = ("items",)
    _fields = ("items",)

    def __init__(self, extent, items: list[Expression]):
        super().__init__(extent)
        self.items = items


class VaArg(Expression):
    """``__builtin_va_arg(ap, type)``."""

    __slots__ = ("ap", "target_type")
    _fields = ("ap",)

    def __init__(self, extent, ap: Expression, target_type):
        super().__init__(extent)
        self.ap = ap
        self.target_type = target_type


# =============================================================== statements

class Statement(Node):
    __slots__ = ()


class ExprStmt(Statement):
    __slots__ = ("expr",)
    _fields = ("expr",)

    def __init__(self, extent, expr: Expression | None):
        super().__init__(extent)
        self.expr = expr


class CompoundStmt(Statement):
    """A ``{ ... }`` block; items are Statements and Declarations."""

    __slots__ = ("items",)
    _fields = ("items",)

    def __init__(self, extent, items: list[Node]):
        super().__init__(extent)
        self.items = items


class IfStmt(Statement):
    __slots__ = ("cond", "then_stmt", "else_stmt")
    _fields = ("cond", "then_stmt", "else_stmt")

    def __init__(self, extent, cond, then_stmt, else_stmt):
        super().__init__(extent)
        self.cond = cond
        self.then_stmt = then_stmt
        self.else_stmt = else_stmt


class WhileStmt(Statement):
    __slots__ = ("cond", "body")
    _fields = ("cond", "body")

    def __init__(self, extent, cond, body):
        super().__init__(extent)
        self.cond = cond
        self.body = body


class DoWhileStmt(Statement):
    __slots__ = ("body", "cond")
    _fields = ("body", "cond")

    def __init__(self, extent, body, cond):
        super().__init__(extent)
        self.body = body
        self.cond = cond


class ForStmt(Statement):
    __slots__ = ("init", "cond", "advance", "body")
    _fields = ("init", "cond", "advance", "body")

    def __init__(self, extent, init, cond, advance, body):
        super().__init__(extent)
        self.init = init            # ExprStmt, Declaration, or None
        self.cond = cond
        self.advance = advance
        self.body = body


class ReturnStmt(Statement):
    __slots__ = ("value",)
    _fields = ("value",)

    def __init__(self, extent, value: Expression | None):
        super().__init__(extent)
        self.value = value


class BreakStmt(Statement):
    __slots__ = ()


class ContinueStmt(Statement):
    __slots__ = ()


class SwitchStmt(Statement):
    __slots__ = ("cond", "body")
    _fields = ("cond", "body")

    def __init__(self, extent, cond, body):
        super().__init__(extent)
        self.cond = cond
        self.body = body


class CaseStmt(Statement):
    __slots__ = ("value", "body")
    _fields = ("value", "body")

    def __init__(self, extent, value: Expression, body: Statement):
        super().__init__(extent)
        self.value = value
        self.body = body


class DefaultStmt(Statement):
    __slots__ = ("body",)
    _fields = ("body",)

    def __init__(self, extent, body: Statement):
        super().__init__(extent)
        self.body = body


class LabelStmt(Statement):
    __slots__ = ("name", "body")
    _fields = ("body",)

    def __init__(self, extent, name: str, body: Statement):
        super().__init__(extent)
        self.name = name
        self.body = body


class GotoStmt(Statement):
    __slots__ = ("label",)

    def __init__(self, extent, label: str):
        super().__init__(extent)
        self.label = label


class EmptyStmt(Statement):
    __slots__ = ()


# ============================================================= declarations

class Declarator(Node):
    """One declared name within a declaration, with its full type and init.

    ``name_extent`` covers just the identifier; ``extent`` covers the whole
    declarator including the initializer, which STR uses when rewriting
    declaration statements.
    """

    __slots__ = ("name", "ctype", "init", "name_extent", "symbol")
    _fields = ("init",)

    def __init__(self, extent, name: str, ctype, init: Expression | None,
                 name_extent: SourceExtent):
        super().__init__(extent)
        self.name = name
        self.ctype = ctype
        self.init = init
        self.name_extent = name_extent
        self.symbol = None


class Declaration(Node):
    """A declaration statement: specifiers plus a list of declarators."""

    __slots__ = ("declarators", "storage_class", "is_typedef", "base_type")
    _fields = ("declarators",)

    def __init__(self, extent, declarators: list[Declarator],
                 storage_class: str | None, is_typedef: bool, base_type):
        super().__init__(extent)
        self.declarators = declarators
        self.storage_class = storage_class      # 'static', 'extern', ...
        self.is_typedef = is_typedef
        self.base_type = base_type


class ParamDecl(Node):
    __slots__ = ("name", "ctype", "symbol")

    def __init__(self, extent, name: str | None, ctype):
        super().__init__(extent)
        self.name = name
        self.ctype = ctype
        self.symbol = None


class FunctionDef(Node):
    __slots__ = ("name", "ctype", "params", "body", "storage_class",
                 "name_extent", "symbol")
    _fields = ("params", "body")

    def __init__(self, extent, name: str, ctype, params: list[ParamDecl],
                 body: CompoundStmt, storage_class: str | None,
                 name_extent: SourceExtent):
        super().__init__(extent)
        self.name = name
        self.ctype = ctype                  # FunctionType
        self.params = params
        self.body = body
        self.storage_class = storage_class
        self.name_extent = name_extent
        self.symbol = None


class TranslationUnit(Node):
    # ``_vm_index`` caches the VM loader's (functions, globals) scan of
    # ``items`` — the differential oracle instantiates many interpreters
    # over the same parsed unit (see Interpreter._load_program).
    __slots__ = ("items", "filename", "_vm_index")
    _fields = ("items",)

    def __init__(self, extent, items: list[Node], filename: str):
        super().__init__(extent)
        self.items = items
        self.filename = filename
        self._vm_index = None

    def functions(self) -> list[FunctionDef]:
        return [item for item in self.items if isinstance(item, FunctionDef)]

    def function(self, name: str) -> FunctionDef | None:
        for item in self.items:
            if isinstance(item, FunctionDef) and item.name == name:
                return item
        return None
