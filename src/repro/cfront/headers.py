"""Built-in virtual headers.

The preprocessor resolves ``#include`` against this virtual filesystem: real
system headers are far outside the C subset our parser accepts, and the VM
provides the library implementations natively, so the headers only need the
*declarations*.  They cover what the SAMATE-style programs, the corpus
programs, and the transformation outputs (glib safe functions, stralloc)
require.
"""

STDDEF_H = """
#ifndef _REPRO_STDDEF_H
#define _REPRO_STDDEF_H
typedef unsigned long size_t;
typedef long ptrdiff_t;
typedef int wchar_t;
#define NULL ((void*)0)
#define offsetof(type, member) __builtin_offsetof(type, member)
#endif
"""

STDARG_H = """
#ifndef _REPRO_STDARG_H
#define _REPRO_STDARG_H
typedef __builtin_va_list va_list;
#define va_start(ap, last) __builtin_va_start(ap, last)
#define va_arg(ap, type) __builtin_va_arg(ap, type)
#define va_end(ap) __builtin_va_end(ap)
#define va_copy(dst, src) __builtin_va_copy(dst, src)
#endif
"""

STDIO_H = """
#ifndef _REPRO_STDIO_H
#define _REPRO_STDIO_H
#include <stddef.h>
#include <stdarg.h>
typedef struct _FILE FILE;
extern FILE *stdin;
extern FILE *stdout;
extern FILE *stderr;
#define EOF (-1)
#define BUFSIZ 8192
int printf(const char *format, ...);
int fprintf(FILE *stream, const char *format, ...);
int sprintf(char *str, const char *format, ...);
int snprintf(char *str, size_t size, const char *format, ...);
int vsprintf(char *str, const char *format, va_list ap);
int vsnprintf(char *str, size_t size, const char *format, va_list ap);
int puts(const char *s);
int putchar(int c);
int fputs(const char *s, FILE *stream);
int fputc(int c, FILE *stream);
int getchar(void);
int fgetc(FILE *stream);
char *gets(char *s);
char *fgets(char *s, int size, FILE *stream);
FILE *fopen(const char *path, const char *mode);
int fclose(FILE *stream);
size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream);
size_t fwrite(const void *ptr, size_t size, size_t nmemb, FILE *stream);
int fflush(FILE *stream);
int feof(FILE *stream);
int ferror(FILE *stream);
int fseek(FILE *stream, long offset, int whence);
long ftell(FILE *stream);
int remove(const char *pathname);
void perror(const char *s);
int sscanf(const char *str, const char *format, ...);
#define SEEK_SET 0
#define SEEK_CUR 1
#define SEEK_END 2
#endif
"""

STDLIB_H = """
#ifndef _REPRO_STDLIB_H
#define _REPRO_STDLIB_H
#include <stddef.h>
void *malloc(size_t size);
void *calloc(size_t nmemb, size_t size);
void *realloc(void *ptr, size_t size);
void free(void *ptr);
void *alloca(size_t size);
int atoi(const char *nptr);
long atol(const char *nptr);
long strtol(const char *nptr, char **endptr, int base);
unsigned long strtoul(const char *nptr, char **endptr, int base);
double atof(const char *nptr);
void abort(void);
void exit(int status);
int abs(int j);
long labs(long j);
int rand(void);
void srand(unsigned int seed);
char *getenv(const char *name);
#define RAND_MAX 2147483647
#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1
#endif
"""

STRING_H = """
#ifndef _REPRO_STRING_H
#define _REPRO_STRING_H
#include <stddef.h>
size_t strlen(const char *s);
char *strcpy(char *dest, const char *src);
char *strncpy(char *dest, const char *src, size_t n);
char *strcat(char *dest, const char *src);
char *strncat(char *dest, const char *src, size_t n);
int strcmp(const char *s1, const char *s2);
int strncmp(const char *s1, const char *s2, size_t n);
char *strchr(const char *s, int c);
char *strrchr(const char *s, int c);
char *strstr(const char *haystack, const char *needle);
char *strdup(const char *s);
void *memcpy(void *dest, const void *src, size_t n);
void *memmove(void *dest, const void *src, size_t n);
void *memset(void *s, int c, size_t n);
int memcmp(const void *s1, const void *s2, size_t n);
void *memchr(const void *s, int c, size_t n);
#endif
"""

MALLOC_H = """
#ifndef _REPRO_MALLOC_H
#define _REPRO_MALLOC_H
#include <stdlib.h>
size_t malloc_usable_size(void *ptr);
#endif
"""

GLIB_H = """
#ifndef _REPRO_GLIB_H
#define _REPRO_GLIB_H
#include <stddef.h>
#include <stdarg.h>
typedef char gchar;
typedef int gint;
typedef unsigned long gsize;
typedef unsigned long gulong;
gsize g_strlcpy(gchar *dest, const gchar *src, gsize dest_size);
gsize g_strlcat(gchar *dest, const gchar *src, gsize dest_size);
gint g_snprintf(gchar *string, gulong n, const gchar *format, ...);
gint g_vsnprintf(gchar *string, gulong n, const gchar *format, va_list args);
#endif
"""

STRALLOC_H = """
#ifndef _REPRO_STRALLOC_H
#define _REPRO_STRALLOC_H
#include <stddef.h>
/* Safe string data structure, modified from qmail's stralloc.
 * s   - the character data (equivalent of the replaced char pointer)
 * f   - always points at the base of the original s, for bounds checks
 * len - length of the string currently stored
 * a   - number of bytes currently allocated/used
 */
typedef struct stralloc {
    char *s;
    char *f;
    unsigned int len;
    unsigned int a;
} stralloc;

int stralloc_init(stralloc *sa);
int stralloc_ready(stralloc *sa, unsigned int n);
void stralloc_free(stralloc *sa);
int stralloc_copys(stralloc *sa, const char *s);
int stralloc_copybuf(stralloc *sa, const char *buf, unsigned int n);
int stralloc_cats(stralloc *sa, const char *s);
int stralloc_catbuf(stralloc *sa, const char *buf, unsigned int n);
int stralloc_append(stralloc *sa, char c);
int stralloc_memset(stralloc *sa, char c, unsigned int n);
int stralloc_increment_by(stralloc *sa, unsigned int n);
int stralloc_decrement_by(stralloc *sa, unsigned int n);
char stralloc_get_dereferenced_char_at(stralloc *sa, long idx);
int stralloc_dereference_replace_by(stralloc *sa, long idx, char c);
int stralloc_compare(stralloc *a, stralloc *b);
int stralloc_equals(stralloc *a, stralloc *b);
int stralloc_find_char(stralloc *sa, char c);
int stralloc_substring_at(stralloc *sa, stralloc *needle);
unsigned int stralloc_length(stralloc *sa);
#endif
"""

ASSERT_H = """
#ifndef _REPRO_ASSERT_H
#define _REPRO_ASSERT_H
void __assert_fail(const char *expr, const char *file, int line);
#define assert(expr) ((expr) ? (void)0 : __assert_fail(#expr, "", 0))
#endif
"""

CTYPE_H = """
#ifndef _REPRO_CTYPE_H
#define _REPRO_CTYPE_H
int isalpha(int c);
int isdigit(int c);
int isalnum(int c);
int isspace(int c);
int isupper(int c);
int islower(int c);
int isprint(int c);
int toupper(int c);
int tolower(int c);
#endif
"""

LIMITS_H = """
#ifndef _REPRO_LIMITS_H
#define _REPRO_LIMITS_H
#define CHAR_BIT 8
#define SCHAR_MIN (-128)
#define SCHAR_MAX 127
#define UCHAR_MAX 255
#define CHAR_MIN (-128)
#define CHAR_MAX 127
#define SHRT_MIN (-32768)
#define SHRT_MAX 32767
#define USHRT_MAX 65535
#define INT_MIN (-2147483647 - 1)
#define INT_MAX 2147483647
#define UINT_MAX 4294967295U
#define LONG_MIN (-9223372036854775807L - 1L)
#define LONG_MAX 9223372036854775807L
#define ULONG_MAX 18446744073709551615UL
#endif
"""

ERRNO_H = """
#ifndef _REPRO_ERRNO_H
#define _REPRO_ERRNO_H
extern int errno;
#define ENOMEM 12
#define EINVAL 22
#define ERANGE 34
typedef int errno_t;
#endif
"""

STDBOOL_H = """
#ifndef _REPRO_STDBOOL_H
#define _REPRO_STDBOOL_H
#define bool _Bool
#define true 1
#define false 0
#endif
"""

STDINT_H = """
#ifndef _REPRO_STDINT_H
#define _REPRO_STDINT_H
typedef signed char int8_t;
typedef unsigned char uint8_t;
typedef short int16_t;
typedef unsigned short uint16_t;
typedef int int32_t;
typedef unsigned int uint32_t;
typedef long int64_t;
typedef unsigned long uint64_t;
typedef unsigned long uintptr_t;
typedef long intptr_t;
#define INT8_MAX 127
#define INT16_MAX 32767
#define INT32_MAX 2147483647
#define UINT8_MAX 255
#define UINT16_MAX 65535
#define UINT32_MAX 4294967295U
#endif
"""

UNISTD_H = """
#ifndef _REPRO_UNISTD_H
#define _REPRO_UNISTD_H
#include <stddef.h>
typedef long ssize_t;
ssize_t read(int fd, void *buf, size_t count);
ssize_t write(int fd, const void *buf, size_t count);
#endif
"""

TIME_H = """
#ifndef _REPRO_TIME_H
#define _REPRO_TIME_H
typedef long time_t;
typedef long clock_t;
time_t time(time_t *tloc);
clock_t clock(void);
#define CLOCKS_PER_SEC 1000000
#endif
"""

BUILTIN_HEADERS: dict[str, str] = {
    "stddef.h": STDDEF_H,
    "stdarg.h": STDARG_H,
    "stdio.h": STDIO_H,
    "stdlib.h": STDLIB_H,
    "string.h": STRING_H,
    "strings.h": STRING_H,
    "malloc.h": MALLOC_H,
    "glib.h": GLIB_H,
    "glib/glib.h": GLIB_H,
    "stralloc.h": STRALLOC_H,
    "assert.h": ASSERT_H,
    "ctype.h": CTYPE_H,
    "limits.h": LIMITS_H,
    "errno.h": ERRNO_H,
    "stdbool.h": STDBOOL_H,
    "stdint.h": STDINT_H,
    "unistd.h": UNISTD_H,
    "time.h": TIME_H,
}
