"""Recursive-descent parser for the C99 subset.

Consumes preprocessed text (see :mod:`repro.cfront.preprocessor`) and builds
the AST of :mod:`repro.cfront.astnodes`.  The parser is typedef-aware (it
keeps scoped typedef and tag tables, as any C parser must) and records exact
source extents on every node so the rewriter can edit the original text.
"""

from __future__ import annotations

from . import astnodes as ast
from .ctypes_model import (
    BOOL, CHAR, CType, DOUBLE, EnumType, FLOAT, FloatType, FunctionType, INT,
    ArrayType, IntType, PointerType, StructType, VOID, VaListType,
)
from .lexer import splice_lines, tokenize
from .literals import parse_char_constant, parse_number, parse_string_literal
from .source import ParseError, SourceExtent, SourceFile
from .tokens import CHAR_CONST, EOF, ID, KEYWORD, NUMBER, PUNCT, STRING, Token

_TYPE_SPECIFIER_KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "_Bool", "struct", "union", "enum",
})
_INT_PARTS = frozenset({"void", "char", "short", "int", "long", "float",
                        "double", "signed", "unsigned", "_Bool"})
_STORAGE_CLASSES = frozenset({"typedef", "extern", "static", "auto",
                              "register"})
_QUALIFIERS = frozenset({"const", "volatile", "restrict", "inline"})

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                         "^=", "<<=", ">>="})
_UNARY_OPS = frozenset({"&", "*", "+", "-", "~", "!"})

# (precedence, right-assoc) for binary operators, parsed by precedence
# climbing.  Higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class _Scope:
    """Parser-level scope: typedef names, struct/union/enum tags, enum
    constants."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.typedefs: dict[str, CType] = {}
        self.tags: dict[str, CType] = {}
        self.enum_constants: dict[str, int] = {}
        # Names declared as ordinary identifiers (shadowing typedef names).
        self.ordinary: set[str] = set()

    def lookup_typedef(self, name: str) -> CType | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.ordinary:
                return None
            if name in scope.typedefs:
                return scope.typedefs[name]
            scope = scope.parent
        return None

    def lookup_tag(self, name: str) -> CType | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.tags:
                return scope.tags[name]
            scope = scope.parent
        return None

    def lookup_enum_constant(self, name: str) -> int | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.ordinary:
                return None         # shadowed by an ordinary declaration
            if name in scope.enum_constants:
                return scope.enum_constants[name]
            scope = scope.parent
        return None


class Parser:
    """Parse one preprocessed translation unit."""

    def __init__(self, text: str, filename: str = "<string>"):
        self.text = text
        self.filename = filename
        source = SourceFile(filename, splice_lines(text))
        from .lexer import Lexer
        self.tokens = Lexer(source).tokenize()
        self.pos = 0
        self.scope = _Scope()
        self._install_builtins()

    # ------------------------------------------------------------ plumbing

    def _install_builtins(self) -> None:
        self.scope.typedefs["__builtin_va_list"] = VaListType()

    def _peek(self, offset: int = 0) -> Token:
        # Hottest function in the parser: the EOF sentinel is the last
        # token and the stream never advances past it, so a plain index
        # with an exception guard beats a bounds check per call.
        try:
            return self.tokens[self.pos + offset]
        except IndexError:
            return self.tokens[-1]

    def _next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not EOF:
            self.pos += 1
        return tok

    def _prev_end(self) -> int:
        return self.tokens[self.pos - 1].end if self.pos else 0

    def _error(self, message: str, tok: Token | None = None) -> ParseError:
        tok = tok or self._peek()
        return ParseError(message, self.filename, tok.line, tok.col)

    def _expect_punct(self, text: str) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not PUNCT or tok.text != text:
            raise self._error(f"expected {text!r}, found {tok.text!r}")
        self.pos += 1
        return tok

    def _expect_id(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not ID:
            raise self._error(f"expected identifier, found {tok.text!r}")
        self.pos += 1
        return tok

    def _accept_punct(self, text: str) -> bool:
        tok = self.tokens[self.pos]
        if tok.kind is PUNCT and tok.text == text:
            self.pos += 1
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        tok = self.tokens[self.pos]
        if tok.kind is KEYWORD and tok.text == text:
            self.pos += 1
            return True
        return False

    def _extent_from(self, start: int) -> SourceExtent:
        return SourceExtent(start, self._prev_end())

    def _push_scope(self) -> None:
        self.scope = _Scope(self.scope)

    def _pop_scope(self) -> None:
        assert self.scope.parent is not None
        self.scope = self.scope.parent

    # ------------------------------------------------------------ top level

    def parse(self) -> ast.TranslationUnit:
        # Expression grammars recurse one Python level per nesting level;
        # give deeply parenthesized legacy code room.
        import sys
        if sys.getrecursionlimit() < 20_000:
            sys.setrecursionlimit(20_000)
        items: list[ast.Node] = []
        while self._peek().kind != EOF:
            if self._accept_punct(";"):
                continue
            items.append(self._external_declaration())
        unit = ast.TranslationUnit(SourceExtent(0, len(self.text)), items,
                                   self.filename)
        ast.set_parents(unit)
        return unit

    def _external_declaration(self) -> ast.Node:
        tokens = self.tokens
        start = tokens[self.pos].offset
        base_type, storage, is_typedef = self._declaration_specifiers()
        tok = tokens[self.pos]
        if tok.kind is PUNCT and tok.text == ";":
            # struct/union/enum definition with no declarators
            self.pos += 1
            return ast.Declaration(self._extent_from(start), [], storage,
                                   is_typedef, base_type)
        decl_start = tok.offset
        name, ctype, name_extent = self._declarator(base_type)
        if isinstance(ctype, FunctionType) and \
                tokens[self.pos].is_punct("{") \
                and not is_typedef:
            return self._function_definition(start, name, ctype, name_extent,
                                             storage)
        return self._finish_declaration(start, decl_start, base_type, storage,
                                        is_typedef, name, ctype, name_extent)

    def _function_definition(self, start: int, name: str,
                             ctype: FunctionType,
                             name_extent: SourceExtent,
                             storage: str | None) -> ast.FunctionDef:
        self._push_scope()
        params: list[ast.ParamDecl] = []
        for pname, ptype in ctype.params:
            pdecl = ast.ParamDecl(name_extent, pname, ptype)
            params.append(pdecl)
            if pname:
                self.scope.ordinary.add(pname)
        body = self._compound_statement(new_scope=False)
        self._pop_scope()
        self.scope.ordinary.add(name)
        return ast.FunctionDef(self._extent_from(start), name, ctype, params,
                               body, storage, name_extent)

    def _finish_declaration(self, start: int, decl_start: int, base_type,
                            storage, is_typedef, name, ctype,
                            name_extent) -> ast.Declaration:
        declarators: list[ast.Declarator] = []
        while True:
            init = None
            if self._accept_punct("="):
                init = self._initializer()
            self._register_name(name, ctype, is_typedef)
            declarators.append(ast.Declarator(
                self._extent_from(decl_start), name, ctype, init,
                name_extent))
            if not self._accept_punct(","):
                break
            decl_start = self._peek().offset
            name, ctype, name_extent = self._declarator(base_type)
        self._expect_punct(";")
        return ast.Declaration(self._extent_from(start), declarators,
                               storage, is_typedef, base_type)

    def _register_name(self, name: str, ctype: CType,
                       is_typedef: bool) -> None:
        if is_typedef:
            self.scope.typedefs[name] = ctype
        elif name:
            self.scope.ordinary.add(name)

    # ------------------------------------------------ declaration specifiers

    def _starts_type(self, tok: Token) -> bool:
        if tok.kind == KEYWORD:
            return (tok.text in _TYPE_SPECIFIER_KEYWORDS
                    or tok.text in _QUALIFIERS
                    or tok.text in _STORAGE_CLASSES)
        if tok.kind == ID:
            return self.scope.lookup_typedef(tok.text) is not None
        return False

    def _declaration_specifiers(self) -> tuple[CType, str | None, bool]:
        storage: str | None = None
        is_typedef = False
        quals: set[str] = set()
        base: CType | None = None
        int_parts: list[str] = []

        tokens = self.tokens
        while True:
            tok = tokens[self.pos]
            kind = tok.kind
            if kind is KEYWORD:
                text = tok.text
                if text in _INT_PARTS:
                    self.pos += 1
                    int_parts.append(text)
                elif text in _STORAGE_CLASSES:
                    self.pos += 1
                    if text == "typedef":
                        is_typedef = True
                    else:
                        storage = text
                elif text in _QUALIFIERS:
                    self.pos += 1
                    quals.add(text)
                elif text == "struct" or text == "union":
                    base = self._struct_or_union_specifier()
                elif text == "enum":
                    base = self._enum_specifier()
                else:
                    break
            elif kind is ID and not int_parts and base is None:
                td = self.scope.lookup_typedef(tok.text)
                if td is not None:
                    # Only treat as type if what follows makes sense.
                    self.pos += 1
                    base = td
                else:
                    break
            else:
                break

        if base is None:
            base = _combine_int_parts(int_parts, self)
        elif int_parts:
            raise self._error("conflicting type specifiers")
        return base.with_qualifiers(quals), storage, is_typedef

    def _struct_or_union_specifier(self) -> CType:
        kw = self._next()           # 'struct' or 'union'
        is_union = kw.text == "union"
        tag = None
        if self._peek().kind == ID:
            tag = self._next().text
        if self._peek().is_punct("{"):
            stype = None
            if tag is not None:
                existing = self.scope.tags.get(tag)
                if isinstance(existing, StructType) and \
                        existing.is_union == is_union and \
                        not existing.is_complete:
                    stype = existing
            if stype is None:
                stype = StructType(tag, is_union)
                if tag is not None:
                    self.scope.tags[tag] = stype
            self._next()            # '{'
            members: list[tuple[str, CType]] = []
            while not self._peek().is_punct("}"):
                base, _, _ = self._declaration_specifiers()
                if self._peek().is_punct(";"):    # anonymous struct member
                    self._next()
                    if isinstance(base, StructType) and base.is_complete:
                        members.extend(base.members)
                    continue
                while True:
                    mname, mtype, _ = self._declarator(base)
                    if self._accept_punct(":"):   # bit-field width, ignored
                        self._conditional_expression()
                    members.append((mname, mtype))
                    if not self._accept_punct(","):
                        break
                self._expect_punct(";")
            self._next()            # '}'
            stype.define(members)
            return stype
        if tag is None:
            raise self._error("struct/union needs a tag or a body")
        existing = self.scope.lookup_tag(tag)
        if isinstance(existing, StructType) and existing.is_union == is_union:
            return existing
        stype = StructType(tag, is_union)
        self.scope.tags[tag] = stype
        return stype

    def _enum_specifier(self) -> CType:
        self._next()                # 'enum'
        tag = None
        if self._peek().kind == ID:
            tag = self._next().text
        if self._peek().is_punct("{"):
            etype = EnumType(tag)
            if tag is not None:
                self.scope.tags[tag] = etype
            self._next()
            value = 0
            while not self._peek().is_punct("}"):
                const_name = self._expect_id().text
                if self._accept_punct("="):
                    expr = self._conditional_expression()
                    value = self._const_value(expr)
                etype.constants[const_name] = value
                self.scope.enum_constants[const_name] = value
                value += 1
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            return etype
        if tag is None:
            raise self._error("enum needs a tag or a body")
        existing = self.scope.lookup_tag(tag)
        if isinstance(existing, EnumType):
            return existing
        etype = EnumType(tag)
        self.scope.tags[tag] = etype
        return etype

    # ------------------------------------------------------------ declarators

    def _declarator(self, base: CType) -> tuple[str, CType, SourceExtent]:
        """Parse a (possibly nested) declarator; returns (name, type,
        name_extent)."""
        ctype = self._pointer_suffix(base)
        return self._direct_declarator(ctype, abstract=False)

    def _abstract_declarator(self, base: CType) -> CType:
        ctype = self._pointer_suffix(base)
        name, ctype, _ = self._direct_declarator(ctype, abstract=True)
        if name:
            raise self._error("unexpected identifier in type name")
        return ctype

    def _pointer_suffix(self, ctype: CType) -> CType:
        tokens = self.tokens
        while True:
            tok = tokens[self.pos]
            if tok.kind is not PUNCT or tok.text != "*":
                return ctype
            self.pos += 1
            quals: set[str] = set()
            tok = tokens[self.pos]
            while tok.kind is KEYWORD and tok.text in _QUALIFIERS:
                quals.add(tok.text)
                self.pos += 1
                tok = tokens[self.pos]
            ctype = PointerType(ctype).with_qualifiers(quals)

    def _direct_declarator(self, ctype: CType, *, abstract: bool
                           ) -> tuple[str, CType, SourceExtent]:
        tok = self.tokens[self.pos]
        name = ""
        name_extent = SourceExtent(tok.offset, tok.offset)
        inner_marker = None

        if tok.kind is ID:
            self.pos += 1
            name = tok.text
            name_extent = tok.extent
        elif tok.kind is PUNCT and tok.text == "(" and \
                self._is_nested_declarator():
            self.pos += 1
            # Parse the inner declarator against a placeholder; re-apply
            # suffixes afterwards (standard two-pass trick).
            inner_marker = _Placeholder()
            inner_base = self._pointer_suffix(inner_marker)
            name, inner_type, name_extent = self._direct_declarator(
                inner_base, abstract=abstract)
            self._expect_punct(")")
        elif not abstract:
            raise self._error(f"expected declarator, found {tok.text!r}")

        suffixed = self._declarator_suffixes(ctype)
        if inner_marker is not None:
            ctype = _replace_placeholder(inner_type, inner_marker, suffixed)
        else:
            ctype = suffixed
        return name, ctype, name_extent

    def _is_nested_declarator(self) -> bool:
        """Disambiguate '(' in declarators: nested declarator vs parameter
        list."""
        nxt = self._peek(1)
        if nxt.is_punct("*") or nxt.is_punct("("):
            return True
        if nxt.kind == ID and self.scope.lookup_typedef(nxt.text) is None:
            return True
        return False

    def _declarator_suffixes(self, ctype: CType) -> CType:
        # Collect suffixes left-to-right, then fold right-to-left so that
        # e.g. `int x[2][3]` is array-2 of array-3 of int.
        suffixes: list[tuple] = []
        tokens = self.tokens
        while True:
            tok = tokens[self.pos]
            if tok.kind is PUNCT:
                text = tok.text
                if text == "[":
                    self.pos += 1
                    length = None
                    if not tokens[self.pos].is_punct("]"):
                        expr = self._conditional_expression()
                        length = self._const_value(expr)
                    self._expect_punct("]")
                    suffixes.append(("array", length))
                    continue
                if text == "(":
                    self.pos += 1
                    params, variadic = self._parameter_list()
                    self._expect_punct(")")
                    suffixes.append(("function", params, variadic))
                    continue
            break
        for suffix in reversed(suffixes):
            if suffix[0] == "array":
                ctype = ArrayType(ctype, suffix[1])
            else:
                ctype = FunctionType(ctype, suffix[1], suffix[2])
        return ctype

    def _parameter_list(self) -> tuple[list[tuple[str | None, CType]], bool]:
        params: list[tuple[str | None, CType]] = []
        variadic = False
        tokens = self.tokens
        tok = tokens[self.pos]
        if tok.kind is PUNCT and tok.text == ")":
            return params, variadic
        if tok.kind is KEYWORD and tok.text == "void" and \
                tokens[self.pos + 1].is_punct(")"):
            self.pos += 1
            return params, variadic
        while True:
            tok = tokens[self.pos]
            if tok.kind is PUNCT and tok.text == "...":
                self.pos += 1
                variadic = True
                break
            base, _, _ = self._declaration_specifiers()
            tok = tokens[self.pos]
            if tok.kind is PUNCT and (tok.text == "," or tok.text == ")"):
                ptype: CType = base
                pname: str | None = None
            else:
                pname_s, ptype, _ = self._maybe_abstract_declarator(base)
                pname = pname_s or None
            # Parameter decay: arrays and functions become pointers.
            ptype = ptype.decay() if isinstance(ptype, (ArrayType,
                                                        FunctionType)) \
                else ptype
            params.append((pname, ptype))
            tok = tokens[self.pos]
            if tok.kind is PUNCT and tok.text == ",":
                self.pos += 1
            else:
                break
        return params, variadic

    def _maybe_abstract_declarator(self, base: CType
                                   ) -> tuple[str, CType, SourceExtent]:
        ctype = self._pointer_suffix(base)
        tok = self.tokens[self.pos]
        if tok.kind is ID:
            return self._direct_declarator(ctype, abstract=False)
        if tok.kind is PUNCT and (tok.text == "(" or tok.text == "["):
            return self._direct_declarator(ctype, abstract=True)
        return "", ctype, SourceExtent(tok.offset, tok.offset)

    def _type_name(self) -> CType:
        base, storage, is_typedef = self._declaration_specifiers()
        if storage or is_typedef:
            raise self._error("storage class in type name")
        return self._abstract_declarator(base)

    # ------------------------------------------------------------ statements

    def _compound_statement(self, *, new_scope: bool = True
                            ) -> ast.CompoundStmt:
        start = self._expect_punct("{").offset
        if new_scope:
            self._push_scope()
        items: list[ast.Node] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind == EOF:
                raise self._error("unterminated block")
            items.append(self._block_item())
        self._next()        # '}'
        if new_scope:
            self._pop_scope()
        return ast.CompoundStmt(self._extent_from(start), items)

    def _block_item(self) -> ast.Node:
        tok = self._peek()
        if self._starts_type(tok) and not self._is_label():
            start = tok.offset
            base_type, storage, is_typedef = self._declaration_specifiers()
            if self._peek().is_punct(";"):
                self._next()
                return ast.Declaration(self._extent_from(start), [], storage,
                                       is_typedef, base_type)
            decl_start = self._peek().offset
            name, ctype, name_extent = self._declarator(base_type)
            return self._finish_declaration(start, decl_start, base_type,
                                            storage, is_typedef, name, ctype,
                                            name_extent)
        return self._statement()

    def _is_label(self) -> bool:
        return self._peek().kind == ID and self._peek(1).is_punct(":")

    def _statement(self) -> ast.Statement:
        tok = self._peek()
        start = tok.offset

        if tok.is_punct("{"):
            return self._compound_statement()
        if tok.is_punct(";"):
            self._next()
            return ast.EmptyStmt(self._extent_from(start))
        if tok.kind == KEYWORD:
            handler = {
                "if": self._if_statement,
                "while": self._while_statement,
                "do": self._do_statement,
                "for": self._for_statement,
                "return": self._return_statement,
                "break": self._break_statement,
                "continue": self._continue_statement,
                "switch": self._switch_statement,
                "case": self._case_statement,
                "default": self._default_statement,
                "goto": self._goto_statement,
            }.get(tok.text)
            if handler is not None:
                return handler()
        if self._is_label():
            name = self._next().text
            self._next()        # ':'
            body = self._statement()
            return ast.LabelStmt(self._extent_from(start), name, body)
        expr = self._expression()
        self._expect_punct(";")
        return ast.ExprStmt(self._extent_from(start), expr)

    def _if_statement(self) -> ast.IfStmt:
        start = self._next().offset         # 'if'
        self._expect_punct("(")
        cond = self._expression()
        self._expect_punct(")")
        then_stmt = self._statement()
        else_stmt = None
        if self._accept_keyword("else"):
            else_stmt = self._statement()
        return ast.IfStmt(self._extent_from(start), cond, then_stmt,
                          else_stmt)

    def _while_statement(self) -> ast.WhileStmt:
        start = self._next().offset
        self._expect_punct("(")
        cond = self._expression()
        self._expect_punct(")")
        body = self._statement()
        return ast.WhileStmt(self._extent_from(start), cond, body)

    def _do_statement(self) -> ast.DoWhileStmt:
        start = self._next().offset
        body = self._statement()
        if not self._accept_keyword("while"):
            raise self._error("expected 'while' after do-body")
        self._expect_punct("(")
        cond = self._expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhileStmt(self._extent_from(start), body, cond)

    def _for_statement(self) -> ast.ForStmt:
        start = self._next().offset
        self._expect_punct("(")
        self._push_scope()
        init: ast.Node | None = None
        if not self._peek().is_punct(";"):
            if self._starts_type(self._peek()):
                init = self._block_item()       # consumes the ';'
            else:
                expr_start = self._peek().offset
                expr = self._expression()
                self._expect_punct(";")
                init = ast.ExprStmt(self._extent_from(expr_start), expr)
        else:
            self._next()
        cond = None
        if not self._peek().is_punct(";"):
            cond = self._expression()
        self._expect_punct(";")
        advance = None
        if not self._peek().is_punct(")"):
            advance = self._expression()
        self._expect_punct(")")
        body = self._statement()
        self._pop_scope()
        return ast.ForStmt(self._extent_from(start), init, cond, advance,
                           body)

    def _return_statement(self) -> ast.ReturnStmt:
        start = self._next().offset
        value = None
        if not self._peek().is_punct(";"):
            value = self._expression()
        self._expect_punct(";")
        return ast.ReturnStmt(self._extent_from(start), value)

    def _break_statement(self) -> ast.BreakStmt:
        start = self._next().offset
        self._expect_punct(";")
        return ast.BreakStmt(self._extent_from(start))

    def _continue_statement(self) -> ast.ContinueStmt:
        start = self._next().offset
        self._expect_punct(";")
        return ast.ContinueStmt(self._extent_from(start))

    def _switch_statement(self) -> ast.SwitchStmt:
        start = self._next().offset
        self._expect_punct("(")
        cond = self._expression()
        self._expect_punct(")")
        body = self._statement()
        return ast.SwitchStmt(self._extent_from(start), cond, body)

    def _case_statement(self) -> ast.CaseStmt:
        start = self._next().offset
        value = self._conditional_expression()
        self._expect_punct(":")
        body = self._statement()
        return ast.CaseStmt(self._extent_from(start), value, body)

    def _default_statement(self) -> ast.DefaultStmt:
        start = self._next().offset
        self._expect_punct(":")
        body = self._statement()
        return ast.DefaultStmt(self._extent_from(start), body)

    def _goto_statement(self) -> ast.GotoStmt:
        start = self._next().offset
        label = self._expect_id().text
        self._expect_punct(";")
        return ast.GotoStmt(self._extent_from(start), label)

    # ----------------------------------------------------------- initializer

    def _initializer(self) -> ast.Expression:
        if self._peek().is_punct("{"):
            start = self._next().offset
            items: list[ast.Expression] = []
            while not self._peek().is_punct("}"):
                # Designators are parsed and skipped (we keep positional
                # semantics, which covers the corpus and SAMATE programs).
                while True:
                    if self._peek().is_punct("."):
                        self._next()
                        self._expect_id()
                    elif self._peek().is_punct("["):
                        self._next()
                        self._conditional_expression()
                        self._expect_punct("]")
                    else:
                        break
                if self._peek().is_punct("="):
                    self._next()
                items.append(self._initializer())
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            return ast.InitList(self._extent_from(start), items)
        return self._assignment_expression()

    # ----------------------------------------------------------- expressions

    def _expression(self) -> ast.Expression:
        start = self._peek().offset
        expr = self._assignment_expression()
        while self._peek().is_punct(","):
            self._next()
            rhs = self._assignment_expression()
            expr = ast.Comma(self._extent_from(start), expr, rhs)
        return expr

    def _assignment_expression(self) -> ast.Expression:
        start = self._peek().offset
        lhs = self._conditional_expression()
        tok = self._peek()
        if tok.kind == PUNCT and tok.text in _ASSIGN_OPS:
            self._next()
            rhs = self._assignment_expression()
            return ast.Assignment(self._extent_from(start), tok.text, lhs,
                                  rhs)
        return lhs

    def _conditional_expression(self) -> ast.Expression:
        start = self._peek().offset
        cond = self._binary_expression(1)
        if self._peek().is_punct("?"):
            self._next()
            then_expr = self._expression()
            self._expect_punct(":")
            else_expr = self._conditional_expression()
            return ast.Conditional(self._extent_from(start), cond, then_expr,
                                   else_expr)
        return cond

    def _binary_expression(self, min_prec: int) -> ast.Expression:
        tokens = self.tokens
        start = tokens[self.pos].offset
        lhs = self._cast_expression()
        prec_of = _BINARY_PRECEDENCE.get
        while True:
            tok = tokens[self.pos]
            if tok.kind is not PUNCT:
                return lhs
            prec = prec_of(tok.text)
            if prec is None or prec < min_prec:
                return lhs
            self.pos += 1
            rhs = self._binary_expression(prec + 1)
            lhs = ast.Binary(self._extent_from(start), tok.text, lhs, rhs)

    def _cast_expression(self) -> ast.Expression:
        tok = self._peek()
        if tok.is_punct("(") and self._starts_type(self._peek(1)):
            start = tok.offset
            self._next()
            target = self._type_name()
            self._expect_punct(")")
            if self._peek().is_punct("{"):
                # Compound literal: parse the init list; model as a cast of
                # the initializer (adequate for our corpus programs).
                init = self._initializer()
                return ast.Cast(self._extent_from(start), target, init)
            operand = self._cast_expression()
            return ast.Cast(self._extent_from(start), target, operand)
        return self._unary_expression()

    def _unary_expression(self) -> ast.Expression:
        tok = self.tokens[self.pos]
        start = tok.offset
        if tok.kind is PUNCT:
            text = tok.text
            if text == "++" or text == "--":
                self.pos += 1
                operand = self._unary_expression()
                return ast.Unary(self._extent_from(start), text, operand)
            if text in _UNARY_OPS:
                self.pos += 1
                operand = self._cast_expression()
                return ast.Unary(self._extent_from(start), text, operand)
        if tok.is_keyword("sizeof"):
            self._next()
            if self._peek().is_punct("(") and \
                    self._starts_type(self._peek(1)):
                self._next()
                target = self._type_name()
                self._expect_punct(")")
                return ast.SizeofType(self._extent_from(start), target)
            operand = self._unary_expression()
            return ast.SizeofExpr(self._extent_from(start), operand)
        return self._postfix_expression()

    def _postfix_expression(self) -> ast.Expression:
        tokens = self.tokens
        start = tokens[self.pos].offset
        expr = self._primary_expression()
        while True:
            tok = tokens[self.pos]
            if tok.kind is not PUNCT:
                return expr
            text = tok.text
            if text == "[":
                self.pos += 1
                index = self._expression()
                self._expect_punct("]")
                expr = ast.ArrayAccess(self._extent_from(start), expr, index)
            elif text == "(":
                self.pos += 1
                args: list[ast.Expression] = []
                if not tokens[self.pos].is_punct(")"):
                    args.append(self._assignment_expression())
                    while self._accept_punct(","):
                        args.append(self._assignment_expression())
                self._expect_punct(")")
                expr = ast.Call(self._extent_from(start), expr, args)
            elif text == ".":
                self.pos += 1
                member = self._expect_member_name()
                expr = ast.FieldAccess(self._extent_from(start), expr,
                                       member, arrow=False)
            elif text == "->":
                self.pos += 1
                member = self._expect_member_name()
                expr = ast.FieldAccess(self._extent_from(start), expr,
                                       member, arrow=True)
            elif text == "++" or text == "--":
                self.pos += 1
                expr = ast.Unary(self._extent_from(start), text, expr,
                                 is_postfix=True)
            else:
                return expr

    def _expect_member_name(self) -> str:
        tok = self._peek()
        if tok.kind not in (ID, KEYWORD):
            raise self._error(f"expected member name, found {tok.text!r}")
        self._next()
        return tok.text

    def _primary_expression(self) -> ast.Expression:
        tok = self._peek()
        start = tok.offset

        if tok.kind == NUMBER:
            self._next()
            value, is_float, unsigned, longs = parse_number(tok.text)
            extent = self._extent_from(start)
            if is_float:
                return ast.FloatLiteral(extent, float(value), tok.text)
            node = ast.IntLiteral(extent, int(value), tok.text)
            return node
        if tok.kind == CHAR_CONST:
            self._next()
            return ast.CharLiteral(self._extent_from(start),
                                   parse_char_constant(tok.text), tok.text)
        if tok.kind == STRING:
            # Adjacent string literals concatenate.
            parts: list[bytes] = []
            texts: list[str] = []
            while self._peek().kind == STRING:
                stok = self._next()
                parts.append(parse_string_literal(stok.text))
                texts.append(stok.text)
            return ast.StringLiteral(self._extent_from(start),
                                     b"".join(parts), " ".join(texts))
        if tok.kind == ID:
            if tok.text == "__builtin_va_arg":
                return self._va_arg_expression()
            self._next()
            enum_value = self.scope.lookup_enum_constant(tok.text)
            if enum_value is not None:
                # Enum constants fold to literals (they are rvalues with a
                # compile-time value); the extent keeps the original name so
                # rewrites remain faithful.
                return ast.IntLiteral(self._extent_from(start), enum_value,
                                      tok.text)
            return ast.Identifier(self._extent_from(start), tok.text)
        if tok.is_punct("("):
            self._next()
            expr = self._expression()
            self._expect_punct(")")
            # Keep the parenthesized extent: the rewriter must replace the
            # whole '(expr)' when it replaces expr.
            expr.extent = self._extent_from(start)
            return expr
        raise self._error(f"unexpected token {tok.text!r} in expression")

    def _va_arg_expression(self) -> ast.VaArg:
        start = self._next().offset     # __builtin_va_arg
        self._expect_punct("(")
        ap = self._assignment_expression()
        self._expect_punct(",")
        target = self._type_name()
        self._expect_punct(")")
        return ast.VaArg(self._extent_from(start), ap, target)

    # ----------------------------------------------------- const evaluation

    def _const_value(self, expr: ast.Expression) -> int:
        value = self._try_const_value(expr)
        if value is None:
            raise self._error("expected integer constant expression")
        return value

    def _try_const_value(self, expr: ast.Expression) -> int | None:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.CharLiteral):
            return expr.value
        if isinstance(expr, ast.Identifier):
            return self.scope.lookup_enum_constant(expr.name)
        if isinstance(expr, ast.Unary) and not expr.is_postfix:
            value = self._try_const_value(expr.operand)
            if value is None:
                return None
            return {"-": lambda v: -v, "+": lambda v: v,
                    "~": lambda v: ~v, "!": lambda v: int(not v)} \
                .get(expr.op, lambda v: None)(value)
        if isinstance(expr, ast.Binary):
            lhs = self._try_const_value(expr.lhs)
            rhs = self._try_const_value(expr.rhs)
            if lhs is None or rhs is None:
                return None
            try:
                return _eval_binop(expr.op, lhs, rhs)
            except ZeroDivisionError:
                return None
        if isinstance(expr, ast.Conditional):
            cond = self._try_const_value(expr.cond)
            if cond is None:
                return None
            return self._try_const_value(
                expr.then_expr if cond else expr.else_expr)
        if isinstance(expr, ast.SizeofType):
            try:
                return expr.target_type.sizeof()
            except TypeError:
                return None
        if isinstance(expr, ast.SizeofExpr):
            # sizeof(expr) in array bounds: only literals supported here.
            if isinstance(expr.operand, ast.StringLiteral):
                return len(expr.operand.value) + 1
            return None
        if isinstance(expr, ast.Cast):
            return self._try_const_value(expr.operand)
        return None


def _eval_binop(op: str, lhs: int, rhs: int) -> int | None:
    table = {
        "+": lambda a, b: a + b, "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: _c_div(a, b), "%": lambda a, b: _c_mod(a, b),
        "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b,
        "&": lambda a, b: a & b, "|": lambda a, b: a | b,
        "^": lambda a, b: a ^ b,
        "==": lambda a, b: int(a == b), "!=": lambda a, b: int(a != b),
        "<": lambda a, b: int(a < b), ">": lambda a, b: int(a > b),
        "<=": lambda a, b: int(a <= b), ">=": lambda a, b: int(a >= b),
        "&&": lambda a, b: int(bool(a) and bool(b)),
        "||": lambda a, b: int(bool(a) or bool(b)),
    }
    fn = table.get(op)
    return None if fn is None else fn(lhs, rhs)


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError
    return a - _c_div(a, b) * b


class _Placeholder(CType):
    """Marks the position of the inner declarator's base type."""

    def sizeof(self) -> int:  # pragma: no cover
        raise TypeError("placeholder type")


def _replace_placeholder(ctype: CType, marker: "_Placeholder",
                         replacement: CType) -> CType:
    if ctype is marker:
        return replacement
    if isinstance(ctype, PointerType):
        return PointerType(_replace_placeholder(ctype.pointee, marker,
                                                replacement))
    if isinstance(ctype, ArrayType):
        return ArrayType(_replace_placeholder(ctype.element, marker,
                                              replacement), ctype.length)
    if isinstance(ctype, FunctionType):
        return FunctionType(
            _replace_placeholder(ctype.return_type, marker, replacement),
            ctype.params, ctype.variadic)
    return ctype


# Specifier combinations form a tiny closed vocabulary, and the resulting
# base types are immutable value objects (``with_qualifiers`` copies before
# touching them), so the combine step is memoized process-wide.
_INT_PARTS_CACHE: dict[tuple[str, ...], CType] = {}


def _combine_int_parts(parts: list[str], parser: Parser) -> CType:
    if not parts:
        raise parser._error("expected type specifier")
    key = tuple(parts)
    cached = _INT_PARTS_CACHE.get(key)
    if cached is not None:
        return cached
    counts = {p: parts.count(p) for p in set(parts)}
    if "void" in counts:
        ctype: CType = VOID
    elif "_Bool" in counts:
        ctype = BOOL
    elif "float" in counts:
        ctype = FLOAT
    elif "double" in counts:
        ctype = FloatType("long double") if "long" in counts else DOUBLE
    else:
        signed = "unsigned" not in counts
        long_count = counts.get("long", 0)
        if "char" in counts:
            ctype = IntType("char", signed=signed)
        elif long_count >= 2:
            ctype = IntType("long long", signed=signed)
        elif long_count == 1:
            ctype = IntType("long", signed=signed)
        elif "short" in counts:
            ctype = IntType("short", signed=signed)
        else:
            ctype = IntType("int", signed=signed)
    _INT_PARTS_CACHE[key] = ctype
    return ctype


def parse_translation_unit(text: str,
                           filename: str = "<string>") -> ast.TranslationUnit:
    """Parse preprocessed C text into an AST."""
    return Parser(text, filename).parse()


def preprocess_and_parse(text: str, filename: str = "<string>",
                         include_paths: dict[str, str] | None = None,
                         predefined: dict[str, str] | None = None,
                         ) -> tuple[ast.TranslationUnit, str]:
    """Preprocess then parse; returns (AST, preprocessed_text)."""
    from .preprocessor import Preprocessor
    pp = Preprocessor(include_paths, predefined)
    result = pp.preprocess(text, filename)
    unit = parse_translation_unit(result.text, filename)
    return unit, result.text
