"""Token model shared by the lexer, preprocessor, and parser."""

from __future__ import annotations

import sys

from .source import SourceExtent

# Token kinds.  Kept as plain interned strings (not an Enum) for speed:
# tokenizing a multi-KLOC translation unit touches these values millions
# of times, and interning makes every ``tok.kind == PUNCT`` comparison an
# identity check.
ID = sys.intern("id")
KEYWORD = sys.intern("keyword")
NUMBER = sys.intern("number")
CHAR_CONST = sys.intern("char")
STRING = sys.intern("string")
PUNCT = sys.intern("punct")
NEWLINE = sys.intern("newline")  # significant only inside the preprocessor
INDENT = sys.intern("indent")    # synthetic: leading whitespace of a line
HASH = sys.intern("hash")        # a '#' that begins a directive line
EOF = sys.intern("eof")

KEYWORDS = frozenset({
    "auto", "break", "case", "char", "const", "continue", "default", "do",
    "double", "else", "enum", "extern", "float", "for", "goto", "if",
    "inline", "int", "long", "register", "restrict", "return", "short",
    "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
    "unsigned", "void", "volatile", "while",
    "_Bool",
})

# Multi-character punctuators, longest first so the lexer regex prefers them.
PUNCTUATORS = [
    "...", "<<=", ">>=",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "##",
    "[", "]", "(", ")", "{", "}", ".", "&", "*", "+", "-", "~", "!",
    "/", "%", "<", ">", "^", "|", "?", ":", ";", "=", ",", "#",
]

#: Canonical (interned) spellings for the fixed vocabulary.  The lexer
#: replaces each matched keyword/punctuator slice — a fresh string object
#: per match — with its canonical sibling, so every ``is_punct("(")`` /
#: ``is_keyword("if")`` downstream compares by pointer on the hit path
#: and dict lookups on token text hash an already-interned key.
KEYWORD_SPELLINGS = {kw: sys.intern(kw) for kw in KEYWORDS}
PUNCT_SPELLINGS = {p: sys.intern(p) for p in PUNCTUATORS}


class Token:
    """A lexical token with its exact extent in the source text."""

    __slots__ = ("kind", "text", "offset", "line", "col",
                 "space_before", "expanded_from")

    def __init__(self, kind: str, text: str, offset: int = 0,
                 line: int = 0, col: int = 0, space_before: bool = False):
        self.kind = kind
        self.text = text
        self.offset = offset
        self.line = line
        self.col = col
        # True when whitespace (or a comment) preceded this token; the
        # preprocessor uses it to reconstruct readable output text.
        self.space_before = space_before
        # Name of the macro this token was expanded from, or None.  Used for
        # recursion blocking during macro expansion.
        self.expanded_from: frozenset | None = None

    @property
    def end(self) -> int:
        return self.offset + len(self.text)

    @property
    def extent(self) -> SourceExtent:
        return SourceExtent(self.offset, self.end)

    def is_punct(self, text: str) -> bool:
        return self.kind == PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == KEYWORD and self.text == text

    def matches(self, kind: str, text: str | None = None) -> bool:
        return self.kind == kind and (text is None or self.text == text)

    def clone(self) -> "Token":
        tok = Token(self.kind, self.text, self.offset, self.line, self.col,
                    self.space_before)
        tok.expanded_from = self.expanded_from
        return tok

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, @{self.line}:{self.col})"


def tokens_to_text(tokens: list[Token]) -> str:
    """Render a token list back to text, honouring ``space_before`` flags.

    Used by the preprocessor to materialize expanded lines.  Adjacent tokens
    that would lex differently when juxtaposed (e.g. two identifiers, ``+``
    followed by ``+``) are always separated, regardless of the flag.
    """
    parts: list[str] = []
    prev: Token | None = None
    for tok in tokens:
        if tok.kind in (NEWLINE, EOF):
            parts.append("\n")
            prev = None
            continue
        if tok.kind == INDENT:
            if prev is None:
                parts.append(tok.text)
            continue
        if prev is not None and (tok.space_before or
                                 _needs_separator(prev, tok)):
            parts.append(" ")
        parts.append(tok.text)
        prev = tok
    return "".join(parts)


def _needs_separator(prev: Token, cur: Token) -> bool:
    wordish = (ID, KEYWORD, NUMBER)
    if prev.kind in wordish and cur.kind in wordish:
        return True
    if prev.kind == PUNCT and cur.kind == PUNCT:
        # Avoid accidentally forming a longer punctuator: '+' '+' -> '++'.
        return (prev.text + cur.text[:1]) in _PUNCT_PREFIXES
    if prev.kind == NUMBER and cur.kind == PUNCT and cur.text[0] in "+-.":
        return True
    return False


_PUNCT_PREFIXES = frozenset(
    p[:i] for p in PUNCTUATORS for i in range(2, len(p) + 1)
)
