"""Token-stream function segmentation and diffing.

The incremental re-analysis layer (:mod:`repro.core.incremental`) needs
to know, after an edit, *which function definitions changed* — without
parsing.  This module tiles a source text into an alternating sequence
of segments::

    [interstitial 0] [function] [interstitial] [function] ... [interstitial]

where ``"".join(seg.text for seg in segments) == text`` exactly.
Interstitial 0 (the *preamble*) carries everything before the first
function definition — directives, global declarations, comments; later
interstitials are the gaps between functions (whitespace and comments,
or occasionally mid-file declarations, which the incremental engine
treats as a fallback trigger).

Each function segment gets a **position-independent token hash** over
exactly the token attributes that determine its preprocessed rendering:
token kind and spelling, ``space_before``, the line of each token
relative to the segment start, and the column of line-initial tokens
(the preprocessor re-indents each output line from the column of its
first token).  Two segments with equal hashes therefore preprocess to
byte-identical fragments under the same macro environment — the
foundation for splicing cached per-function artifacts.  Offsets and
absolute line numbers are deliberately excluded, so an insertion
elsewhere in the file never invalidates an untouched function; an edit
inside a comment (which produces no tokens and moves no line-initial
columns) hashes identically and is a no-op.

Layouts the tiling cannot handle soundly (K&R definitions, directives
below the preamble, duplicate definitions, line splices) raise
:class:`UnsupportedLayout`; callers fall back to the whole-file path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .lexer import Lexer
from .source import LexError, SourceFile
from .tokens import EOF, HASH, ID, NEWLINE, PUNCT, Token

__all__ = [
    "FuncDiff", "Segment", "SegmentedFile", "UnsupportedLayout",
    "components", "diff_files", "dirty_closure", "patch_segment",
    "segment_file",
]


class UnsupportedLayout(Exception):
    """The text's top-level shape defeats function-granular tracking."""


@dataclass
class Segment:
    """One tile of a segmented file; ``text`` slices are contiguous."""

    kind: str                   # 'function' | 'interstitial'
    text: str
    name: str = ""              # function name; '' for interstitials
    token_hash: str = ""
    #: Identifier spellings referenced anywhere in the segment.
    ids: frozenset = frozenset()
    #: Depth-0 identifiers declared as *objects* (not called/declared as
    #: functions) — the names through which one function's analysis
    #: facts can couple to another's.  Interstitials only.
    object_ids: frozenset = frozenset()
    #: Does the segment contain any token besides line breaks?
    tokenful: bool = False
    #: Number of ``\n`` characters in ``text``.
    newline_count: int = 0

    @property
    def is_function(self) -> bool:
        return self.kind == "function"


@dataclass
class SegmentedFile:
    """An ordered tiling of one text; segments alternate interstitial /
    function, starting and ending with a (possibly empty) interstitial."""

    name: str
    text: str
    segments: list[Segment] = field(default_factory=list)

    def functions(self) -> dict[str, Segment]:
        return {seg.name: seg for seg in self.segments
                if seg.is_function}

    def function_order(self) -> list[str]:
        return [seg.name for seg in self.segments if seg.is_function]

    @property
    def preamble(self) -> Segment:
        return self.segments[0]

    def segment_offsets(self) -> list[int]:
        """Absolute start offset of each segment (prefix sums)."""
        offsets, pos = [], 0
        for seg in self.segments:
            offsets.append(pos)
            pos += len(seg.text)
        return offsets

    def has_midfile_declarations(self) -> bool:
        """Any tokenful interstitial *below* the preamble?"""
        return any(seg.tokenful for seg in self.segments[1:]
                   if not seg.is_function)


# ------------------------------------------------------------ segmentation

def _hash_tokens(tokens: list[Token], base_line: int) -> str:
    """The rendering-relevant fingerprint of a token run (see module
    docstring for exactly what is — and is not — hashed)."""
    h = hashlib.blake2b(digest_size=16)
    current_line = None
    for tok in tokens:
        if tok.kind is NEWLINE or tok.kind is EOF:
            continue
        line_first = tok.line != current_line
        current_line = tok.line
        h.update(
            f"{tok.kind}\x1f{tok.text}\x1f{int(tok.space_before)}\x1f"
            f"{tok.line - base_line}\x1f"
            f"{tok.col if line_first else 0}\x1e".encode())
    return h.hexdigest()


def _directive_token_indices(tokens: list[Token]) -> set[int]:
    """Indices of tokens on preprocessor-directive lines (HASH through
    the terminating NEWLINE, inclusive)."""
    in_directive = False
    indices = set()
    for i, tok in enumerate(tokens):
        if tok.kind is HASH:
            in_directive = True
        if in_directive:
            indices.add(i)
            if tok.kind is NEWLINE:
                in_directive = False
    return indices


def _interstitial(text: str, tokens: list[Token],
                  base_line: int) -> Segment:
    directive = _directive_token_indices(tokens)
    code = [t for i, t in enumerate(tokens) if i not in directive]
    ids = frozenset(t.text for t in code if t.kind is ID)
    object_ids = set()
    depth = 0
    # Parens opened directly after an identifier are a parameter list
    # (or call): names inside have function-prototype scope, so they
    # declare nothing at file scope and cannot couple two functions.
    # Declarator parens like ``int (*fp)(int)`` do not follow an
    # identifier, so ``fp`` still counts as a global object.
    proto_parens: list[bool] = []
    prev_sig = None
    for i, tok in enumerate(code):
        if tok.kind is NEWLINE:
            continue
        if tok.kind is PUNCT:
            if tok.text == "{":
                depth += 1
            elif tok.text == "}":
                depth = max(0, depth - 1)
            elif tok.text == "(":
                proto_parens.append(prev_sig is not None
                                    and prev_sig.kind is ID)
            elif tok.text == ")":
                if proto_parens:
                    proto_parens.pop()
            prev_sig = tok
            continue
        if tok.kind is ID and depth == 0 and not any(proto_parens):
            nxt = next((t for t in code[i + 1:]
                        if t.kind is not NEWLINE), None)
            # An identifier directly followed by '(' is being declared
            # (or used) as a function — its runtime state cannot couple
            # two other functions, unlike a global object's.
            if nxt is None or not (nxt.kind is PUNCT and nxt.text == "("):
                object_ids.add(tok.text)
        prev_sig = tok
    tokenful = any(t.kind is not NEWLINE and t.kind is not EOF
                   for t in tokens)
    return Segment("interstitial", text,
                   token_hash=_hash_tokens(tokens, base_line),
                   ids=ids, object_ids=frozenset(object_ids),
                   tokenful=tokenful,
                   newline_count=text.count("\n"))


def _function(name: str, text: str, tokens: list[Token],
              base_line: int) -> Segment:
    return Segment("function", text, name=name,
                   token_hash=_hash_tokens(tokens, base_line),
                   ids=frozenset(t.text for t in tokens
                                 if t.kind is ID),
                   tokenful=True, newline_count=text.count("\n"))


def segment_file(text: str, name: str = "<file>") -> SegmentedFile:
    """Tile ``text`` into interstitial/function segments.

    Raises :class:`UnsupportedLayout` for shapes the tiling cannot
    represent soundly; raises nothing else for any text the master
    lexer accepts.
    """
    if "\\\n" in text:
        # Line splices shift every downstream offset; the whole-file
        # path handles them, the segment model does not.
        raise UnsupportedLayout("line splice (backslash-newline)")
    try:
        tokens = Lexer(SourceFile(name, text),
                       preprocessor_mode=True).tokenize()
    except LexError as exc:
        raise UnsupportedLayout(f"lex error: {exc}") from exc
    directive = _directive_token_indices(tokens)

    # Find depth-0 function definitions: ``... name ( ... ) {``.
    spans = []          # (first_token_index, last_token_index, name)
    depth = 0
    i = 0
    significant = [idx for idx, t in enumerate(tokens)
                   if idx not in directive
                   and t.kind is not NEWLINE and t.kind is not EOF]
    sig_pos = {idx: k for k, idx in enumerate(significant)}
    while i < len(tokens):
        tok = tokens[i]
        if i in directive or tok.kind is NEWLINE or tok.kind is EOF:
            i += 1
            continue
        if tok.kind is PUNCT and tok.text == "{":
            is_fn, name_idx, start_idx = _match_heading(
                tokens, significant, sig_pos, i, spans)
            close = _matching_brace(tokens, significant, sig_pos, i)
            if close is None:
                raise UnsupportedLayout("unbalanced braces")
            if is_fn and depth == 0:
                spans.append((start_idx, close, tokens[name_idx].text))
            # Skip the whole braced region (tracked spans are depth-0).
            i = close + 1
            continue
        if tok.kind is PUNCT and tok.text == "}":
            raise UnsupportedLayout("unbalanced braces")
        i += 1

    names = [n for _, _, n in spans]
    if len(set(names)) != len(names):
        raise UnsupportedLayout("duplicate function definition")

    segments: list[Segment] = []
    pos = 0
    cursor = 0                  # next unconsumed token (tokens are in
    for start_idx, close_idx, fn_name in spans:     # offset order)
        first = tokens[start_idx]
        head_begin = first.offset - (first.col - 1)
        if head_begin < pos:
            raise UnsupportedLayout(
                f"function {fn_name} shares a line with earlier code")
        end = tokens[close_idx].offset + len(tokens[close_idx].text)
        inter_tokens = []
        while cursor < start_idx:
            t = tokens[cursor]
            if pos <= t.offset and t.offset + len(t.text) <= head_begin:
                inter_tokens.append(t)
            cursor += 1
        segments.append(_interstitial(
            text[pos:head_begin], inter_tokens,
            inter_tokens[0].line if inter_tokens else 1))
        segments.append(_function(
            fn_name, text[head_begin:end],
            tokens[start_idx:close_idx + 1], first.line))
        cursor = close_idx + 1
        pos = end
    tail_tokens = [t for t in tokens[cursor:]
                   if t.offset >= pos and t.kind is not EOF]
    segments.append(_interstitial(
        text[pos:], tail_tokens,
        tail_tokens[0].line if tail_tokens else 1))
    return SegmentedFile(name, text, segments)


def _match_heading(tokens, significant, sig_pos, brace_idx, spans):
    """Is the ``{`` at ``brace_idx`` a function-definition body?  Returns
    ``(is_function, name_token_index, heading_start_index)``."""
    k = sig_pos.get(brace_idx)
    if k is None or k == 0:
        return False, -1, -1
    prev = tokens[significant[k - 1]]
    if not (prev.kind is PUNCT and prev.text == ")"):
        return False, -1, -1
    # Walk back across the balanced parameter list to its '('.
    depth = 0
    j = k - 1
    while j >= 0:
        t = tokens[significant[j]]
        if t.kind is PUNCT and t.text == ")":
            depth += 1
        elif t.kind is PUNCT and t.text == "(":
            depth -= 1
            if depth == 0:
                break
        j -= 1
    if j <= 0:
        return False, -1, -1
    name_tok_idx = significant[j - 1]
    if tokens[name_tok_idx].kind is not ID:
        return False, -1, -1
    # Heading starts after the previous ';', '}', or directive line —
    # i.e. at the first specifier token of this declaration.
    h = j - 1
    start_idx = name_tok_idx
    prev_end = spans[-1][1] if spans else -1
    while h - 1 >= 0:
        t_idx = significant[h - 1]
        t = tokens[t_idx]
        if t_idx <= prev_end or (t.kind is PUNCT and
                                 t.text in (";", "}", ")")):
            break
        start_idx = t_idx
        h -= 1
    return True, name_tok_idx, start_idx


def _matching_brace(tokens, significant, sig_pos, open_idx):
    """Token index of the ``}`` closing the ``{`` at ``open_idx``."""
    depth = 0
    k = sig_pos[open_idx]
    for idx in significant[k:]:
        t = tokens[idx]
        if t.kind is PUNCT:
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return idx
    return None


# ---------------------------------------------------------------- patching

def _common_prefix(a: str, b: str) -> int:
    """Length of the longest common prefix (C-speed slice compares)."""
    lo, hi = 0, min(len(a), len(b))
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if a[:mid] == b[:mid]:
            lo = mid
        else:
            hi = mid - 1
    return lo


def _common_suffix(a: str, b: str, limit: int) -> int:
    lo, hi = 0, min(limit, min(len(a), len(b)))
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if a[len(a) - mid:] == b[len(b) - mid:]:
            lo = mid
        else:
            hi = mid - 1
    return lo


def patch_segment(old: SegmentedFile,
                  new_text: str) -> SegmentedFile | None:
    """Re-tile ``new_text`` by reusing ``old``'s segments when the edit
    is confined to the interior of exactly one function tile.

    Segments are position-independent (no offsets, relative token
    hashes), so only the edited function needs re-lexing — with its two
    neighbouring interstitials as context, which reproduces the lexer
    state a whole-file pass would have (function tiles always start at
    column 1 of a fresh line).  Returns ``None`` whenever the fast path
    cannot *prove* the resulting tiling equals ``segment_file(new_text)``
    — callers then fall back to the full pass; a ``None`` is never a
    correctness signal, only a latency one.
    """
    old_text = old.text
    if new_text == old_text:
        return old
    if "\\\n" in new_text:
        return None                     # segment_file would reject it
    prefix = _common_prefix(old_text, new_text)
    suffix = _common_suffix(old_text, new_text,
                            min(len(old_text), len(new_text)) - prefix)
    changed_end = len(old_text) - suffix
    delta = len(new_text) - len(old_text)

    offsets = old.segment_offsets()
    idx = next((i for i, seg in enumerate(old.segments)
                if seg.is_function
                and offsets[i] <= prefix
                and changed_end <= offsets[i] + len(seg.text)), None)
    if idx is None:
        return None                     # edit not inside one function
    start = offsets[idx]
    end = start + len(old.segments[idx].text)
    fragment = new_text[start:end + delta]
    before = old.segments[idx - 1].text
    after = old.segments[idx + 1].text
    try:
        chunk = segment_file(before + fragment + after, old.name)
    except UnsupportedLayout:
        return None
    # The chunk must tile as [before][one function][after] exactly —
    # anything else means the edit moved a boundary or split the tile.
    if (len(chunk.segments) != 3
            or not chunk.segments[1].is_function
            or chunk.segments[0].text != before
            or chunk.segments[2].text != after):
        return None
    new_tile = chunk.segments[1]
    old_name = old.segments[idx].name
    if new_tile.name != old_name and new_tile.name in old.functions():
        return None                     # rename onto an existing name
    segments = list(old.segments)
    segments[idx] = new_tile
    return SegmentedFile(old.name, new_text, segments)


# -------------------------------------------------------------------- diff

@dataclass
class FuncDiff:
    """What changed between two segmentations of the same file."""

    changed: frozenset          # same name, different token hash
    inserted: frozenset
    deleted: frozenset
    reordered: bool             # common names appear in a new order
    preamble_changed: bool
    #: Names of *all* functions whose content differs — the union the
    #: validation layer treats as behaviourally suspect.
    dirty: frozenset = frozenset()

    @property
    def no_op(self) -> bool:
        """Nothing invalidated: every function matched by hash, the
        preamble matched, and no definition moved."""
        return not (self.changed or self.inserted or self.deleted
                    or self.reordered or self.preamble_changed)


def diff_files(old: SegmentedFile, new: SegmentedFile) -> FuncDiff:
    """Match function segments by name and compare token hashes."""
    old_fns = old.functions()
    new_fns = new.functions()
    changed = frozenset(
        name for name, seg in new_fns.items()
        if name in old_fns and old_fns[name].token_hash != seg.token_hash)
    inserted = frozenset(new_fns) - frozenset(old_fns)
    deleted = frozenset(old_fns) - frozenset(new_fns)
    common_old = [n for n in old.function_order() if n in new_fns]
    common_new = [n for n in new.function_order() if n in old_fns]
    return FuncDiff(
        changed=changed, inserted=inserted, deleted=deleted,
        reordered=common_old != common_new,
        preamble_changed=(old.preamble.token_hash
                          != new.preamble.token_hash),
        dirty=changed | inserted | deleted)


# -------------------------------------------------- coupling / components

def components(segmented: SegmentedFile) -> dict[str, frozenset]:
    """Partition functions into coupling components.

    Two functions belong to one component when any chain of *connector
    names* links them: a defined function's name referenced by another
    function, or a preamble-declared global object's name referenced by
    both.  Any analysis or transform fact of one function that could
    depend on another's body must flow through such a name, so a
    component is the sound unit of per-function artifact reuse.

    Returns ``{function_name: frozenset(component members)}``.
    """
    fn_names = set(segmented.function_order())
    connectors = set(fn_names)
    connectors.update(segmented.preamble.object_ids)

    parent: dict[str, str] = {}

    def find(x: str) -> str:
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for seg in segmented.segments:
        if not seg.is_function:
            continue
        find(seg.name)
        for ref in seg.ids & connectors:
            if ref != seg.name:
                union(seg.name, ref)
    groups: dict[str, set] = {}
    for fn in fn_names:
        groups.setdefault(find(fn), set()).add(fn)
    return {fn: frozenset(groups[find(fn)]) for fn in fn_names}


def dirty_closure(segmented: SegmentedFile,
                  dirty_names: frozenset) -> frozenset:
    """Every function whose artifacts may be stale after the functions
    in ``dirty_names`` changed: the union of the coupling components
    touching any dirty name (deleted functions count as touched names
    even though they no longer have a segment)."""
    comp = components(segmented)
    out = set(dirty_names)
    dirty_connectors = set(dirty_names)
    for seg in segmented.segments:
        if seg.is_function and seg.ids & dirty_connectors:
            out.add(seg.name)
    for name in list(out):
        out.update(comp.get(name, frozenset()))
    return frozenset(out)
