"""Figure 2: per-function SLR replacement rates across the corpus.

The paper reports strcpy 28/39 (71.8%), strcat 8/8 (100%), sprintf
150/153 (98.0%), vsprintf 1/2 (50%), memcpy 72/115 (62.6%); gets is
absent because the corpus does not use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .common import PAPER_FIGURE2, pct, render_table
from .table5 import Table5Result, compute_table5

_ORDER = ("strcpy", "strcat", "sprintf", "vsprintf", "memcpy", "gets")


@dataclass
class Figure2Result:
    by_function: dict[str, tuple[int, int]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["Function", "Replaced", "Sites", "% Replaced",
                   "Paper", "Bar"]
        rows = []
        for fn in _ORDER:
            done, total = self.by_function.get(fn, (0, 0))
            if total == 0 and fn not in PAPER_FIGURE2:
                continue        # gets: unused in the corpus, like the paper
            paper = PAPER_FIGURE2.get(fn)
            paper_text = f"{paper[0]}/{paper[1]}" if paper else "absent"
            bar = "#" * round(40 * done / total) if total else ""
            rows.append([fn, done, total, pct(done, total), paper_text,
                         bar])
        return render_table(
            headers, rows, "Figure 2 — Changes in unsafe functions by SLR")


def compute_figure2(table5: Table5Result | None = None) -> Figure2Result:
    if table5 is None:
        table5 = compute_table5(execute=False)
    return Figure2Result(by_function=dict(table5.by_function))


def main(argv: list[str] | None = None) -> None:
    print(compute_figure2().render())


if __name__ == "__main__":
    main()
