"""Pipeline for running SAMATE programs through transform-and-execute.

For each generated good/bad program: preprocess, run (the bad function
must fault), apply SLR and/or STR, run again (no fault, and the good
output prefix must be preserved) — the paper's RQ1 check that "the
vulnerability was fixed in bad functions in all test programs" while
"normal behavior" is preserved.

Everything flows through the shared
:class:`~repro.core.session.AnalysisSession`: the preprocessed text is
parsed once and that unit is shared by SLR, STR's input (when SLR queued
no edits), and the "before" execution; the transformed text's unit is
shared by the verify and the "after" execution.  Transform results and
VM executions additionally go through the persistent artifact store
(:mod:`repro.core.store`), so re-running the suite — in another worker
or another process — replays them from disk.  :func:`run_samate_suite`
fans whole programs out over a fork pool (``jobs=N``) with
deterministic, input-ordered results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import profile
from ..core.backends import ArbitrationReport, arbitrate_file
from ..core.batch import cached_slr, cached_str
from ..core.session import AnalysisSession, get_session
from ..core.validate import ValidationReport, cached_run_source, \
    validate_pair
from ..samate.generator import TestProgram, differential_inputs


@dataclass
class SamateOutcome:
    program: str
    cwe: int
    slr_applied: bool           # SLR transformed >= 1 site
    str_applied: bool           # STR transformed >= 1 buffer
    bad_faulted_before: bool
    fixed_after: bool           # no fault after transformation
    good_preserved: bool        # good-function output unchanged
    fault_before: str
    fault_after: str
    pp_lines: int
    source_lines: int
    steps_before: int
    steps_after: int
    validation: ValidationReport | None = None
    arbitration: ArbitrationReport | None = None

    @property
    def success(self) -> bool:
        return (self.bad_faulted_before and self.fixed_after
                and self.good_preserved)


def run_samate_program(program: TestProgram, *, execute: bool = True,
                       validate: bool = False,
                       backends: tuple[str, ...] | None = None,
                       arbitration_mode: str = "file",
                       session: AnalysisSession | None = None
                       ) -> SamateOutcome:
    """Transform one SAMATE program and (optionally) execute before/after.

    ``validate=True`` additionally runs the differential oracle over the
    program's own probe set (:func:`repro.samate.differential_inputs`),
    re-checking every transformed site for semantics-changing rewrites.
    ``backends`` switches the fix step from the legacy SLR→STR chain to
    per-file arbitration over the named backends;
    ``arbitration_mode="site"`` composes the best backend per call site.
    """
    session = session if session is not None else get_session()
    with profile.stage("preprocess"):
        pp = session.preprocess(program.source, program.name)
    source_lines = sum(1 for line in program.source.splitlines()
                      if line.strip())

    text = pp.text
    slr_applied = False
    str_applied = False
    arbitration = None
    if backends:
        text, _parses, _validation, arbitration = arbitrate_file(
            pp.text, program.name, tuple(backends), session=session,
            arbitration=arbitration_mode)
        winning = arbitration.winning_candidate
        if winning is not None and winning.changed and winning.result:
            # Attribute through the shipped outcomes, which also covers
            # a site-mode composite mixing SLR and STR sites.
            applied = {o.transformation for o in winning.result.outcomes
                       if o.transformed}
            slr_applied = arbitration.winner == "slr" or "SLR" in applied
            str_applied = arbitration.winner == "str" or "STR" in applied
    else:
        if program.slr_applicable:
            with profile.stage("slr"):
                slr_result = cached_slr(text, program.name,
                                        session=session)
            slr_applied = slr_result.transformed_count > 0
            text = slr_result.new_text
        if program.str_applicable:
            with profile.stage("str"):
                str_result = cached_str(text, program.name,
                                        session=session)
            str_applied = str_result.transformed_count > 0
            text = str_result.new_text

    if not execute:
        return SamateOutcome(
            program=program.name, cwe=program.cwe,
            slr_applied=slr_applied, str_applied=str_applied,
            bad_faulted_before=True, fixed_after=True, good_preserved=True,
            fault_before="(not executed)", fault_after="(not executed)",
            pp_lines=pp.line_count, source_lines=source_lines,
            steps_before=0, steps_after=0, arbitration=arbitration)

    with profile.stage("execute"):
        before = cached_run_source(pp.text, stdin=program.stdin)
        after = cached_run_source(text, stdin=program.stdin)
    validation = None
    if validate:
        validation = validate_pair(
            pp.text, text, filename=program.name,
            inputs=differential_inputs(program))
    return SamateOutcome(
        program=program.name, cwe=program.cwe,
        slr_applied=slr_applied, str_applied=str_applied,
        bad_faulted_before=before.fault is not None,
        fixed_after=after.fault is None,
        good_preserved=after.stdout.startswith(before.stdout),
        fault_before=before.fault or "", fault_after=after.fault or "",
        pp_lines=pp.line_count, source_lines=source_lines,
        steps_before=before.steps, steps_after=after.steps,
        validation=validation, arbitration=arbitration)


@dataclass(frozen=True)
class _SuiteTask:
    program: TestProgram
    execute: bool
    validate: bool = False
    backends: tuple[str, ...] | None = None
    arbitration_mode: str = "file"


def _run_suite_task(task: _SuiteTask) -> SamateOutcome:
    return run_samate_program(task.program, execute=task.execute,
                              validate=task.validate,
                              backends=task.backends,
                              arbitration_mode=task.arbitration_mode)


def run_samate_suite(programs: list[TestProgram], *,
                     execute: set[int] | None = None,
                     validate: bool = False,
                     backends: tuple[str, ...] | None = None,
                     arbitration_mode: str = "file",
                     jobs: int | None = None) -> list[SamateOutcome]:
    """Run many SAMATE programs, optionally over a fork pool.

    ``execute`` holds the ``id()`` of each program to actually run in
    the VM (None = execute all).  ``validate`` adds the differential
    oracle to every executed program.  Outcomes come back in input order
    regardless of worker count, so parallel evaluation tables are
    byte-identical to serial ones.
    """
    from ..core.batch import default_jobs
    tasks = [_SuiteTask(p, execute is None or id(p) in execute,
                        validate and (execute is None or id(p) in execute),
                        tuple(backends) if backends else None,
                        arbitration_mode)
             for p in programs]
    jobs = default_jobs() if jobs is None else max(1, jobs)
    if jobs == 1 or len(tasks) <= 1:
        return [_run_suite_task(task) for task in tasks]
    import multiprocessing as mp
    try:
        ctx = mp.get_context("fork")
    except ValueError:
        return [_run_suite_task(task) for task in tasks]
    chunk = max(1, len(tasks) // (jobs * 4))
    with ctx.Pool(min(jobs, len(tasks))) as pool:
        return pool.map(_run_suite_task, tasks, chunksize=chunk)


def stratified_sample(programs: list[TestProgram],
                      limit: int) -> list[TestProgram]:
    """An evenly spaced sample preserving variant/flow diversity."""
    if limit >= len(programs):
        return list(programs)
    step = len(programs) / limit
    return [programs[int(i * step)] for i in range(limit)]
