"""RQ3: runtime overhead of the transformed programs (paper §IV-C).

The paper runs the original and the SLR+STR-transformed program and
reports minimal overhead, for two of the four corpus programs.  Our VM
provides a deterministic cost metric — interpreter steps (each statement
and expression evaluation counts one) — alongside wall-clock time, so
the overhead measurement is exactly reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.batch import apply_batch
from ..corpus import PROGRAM_BUILDERS
from ..vm.interp import run_program_files
from .common import render_table

#: The two programs measured (paper: "2 of the 4 open source programs").
DEFAULT_PROGRAMS = ("zlib", "libpng")


@dataclass
class PerfRow:
    program: str
    steps_before: int
    steps_after: int
    wall_before: float
    wall_after: float
    output_identical: bool

    @property
    def step_overhead_pct(self) -> float:
        if self.steps_before == 0:
            return 0.0
        return 100.0 * (self.steps_after - self.steps_before) \
            / self.steps_before

    @property
    def wall_overhead_pct(self) -> float:
        if self.wall_before == 0:
            return 0.0
        return 100.0 * (self.wall_after - self.wall_before) \
            / self.wall_before


@dataclass
class PerfResult:
    rows: list[PerfRow] = field(default_factory=list)

    def render(self) -> str:
        headers = ["Software", "Steps (orig)", "Steps (fixed)",
                   "Step overhead", "Wall overhead", "Output identical"]
        rows = [[r.program, r.steps_before, r.steps_after,
                 f"{r.step_overhead_pct:+.2f}%",
                 f"{r.wall_overhead_pct:+.2f}%",
                 "yes" if r.output_identical else "NO"]
                for r in self.rows]
        return render_table(
            headers, rows,
            "RQ3 — Performance after applying SLR and STR on all targets")


def compute_perf(programs: tuple[str, ...] = DEFAULT_PROGRAMS,
                 *, repeat: int = 3,
                 jobs: int | None = None) -> PerfResult:
    result = PerfResult()
    for name in programs:
        program = PROGRAM_BUILDERS[name]()
        original = program.preprocess()
        transformed = apply_batch(program, jobs=jobs).transformed_program

        def timed(files: dict[str, str]) -> tuple[int, float, bytes]:
            best = float("inf")
            steps = 0
            stdout = b""
            for _ in range(repeat):
                start = time.perf_counter()
                run = run_program_files(files)
                elapsed = time.perf_counter() - start
                if elapsed < best:
                    best = elapsed
                steps = run.steps
                stdout = run.stdout
            return steps, best, stdout

        steps_before, wall_before, out_before = timed(original.files)
        steps_after, wall_after, out_after = timed(transformed.files)
        result.rows.append(PerfRow(
            program=name,
            steps_before=steps_before, steps_after=steps_after,
            wall_before=wall_before, wall_after=wall_after,
            output_identical=out_before == out_after))
    return result


def main(argv: list[str] | None = None) -> None:
    import argparse
    parser = argparse.ArgumentParser(description="Regenerate RQ3 table")
    parser.add_argument("--all", action="store_true",
                        help="measure all four programs")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1)")
    args = parser.parse_args(argv)
    programs = tuple(PROGRAM_BUILDERS) if args.all else DEFAULT_PROGRAMS
    print(compute_perf(programs, jobs=args.jobs).render())


if __name__ == "__main__":
    main()
