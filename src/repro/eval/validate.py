"""Differential re-validation of every Table III / Table V transformed
site.

The evaluation tables answer "how many sites were transformed"; this
experiment answers "did any of those transformations change semantics".
It replays the Table III population (a SAMATE slice, per-CWE stratified
sample) and the Table V corpus programs through the differential oracle
(:mod:`repro.core.validate`) and aggregates verdicts.  A single
``semantics-changed`` divergence anywhere fails the run — this is the
standing correctness gate every transformation PR must pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.batch import apply_batch
from ..core.validate import VERDICT_CHANGED, VERDICTS
from ..corpus import build_all
from ..samate.generator import CWE_TITLES, generate_suite
from .common import render_table
from .samate_runner import run_samate_suite, stratified_sample


@dataclass
class ValidationRow:
    name: str                   # 'CWE-121' or a corpus program name
    programs: int               # validated programs/files
    inputs: int                 # differential inputs executed
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def semantics_changed(self) -> int:
        return self.counts.get(VERDICT_CHANGED, 0)


@dataclass
class ValidationEvalResult:
    samate_rows: list[ValidationRow] = field(default_factory=list)
    corpus_rows: list[ValidationRow] = field(default_factory=list)
    backends: tuple[str, ...] | None = None
    scoreboard: dict[str, dict[str, int]] = field(default_factory=dict)
    arbitration: str = "file"

    @property
    def rows(self) -> list[ValidationRow]:
        return self.samate_rows + self.corpus_rows

    @property
    def total_changed(self) -> int:
        return sum(r.semantics_changed for r in self.rows)

    @property
    def ok(self) -> bool:
        return self.total_changed == 0

    def scoreboard_payload(self) -> dict:
        """The machine-readable shape behind ``--scoreboard-json`` (the
        CI backend-matrix artifact)."""
        payload = {
            "backends": list(self.backends) if self.backends else [],
            "scoreboard": self.scoreboard,
            "verdicts": {verdict: sum(r.counts.get(verdict, 0)
                                      for r in self.rows)
                         for verdict in VERDICTS},
            "programs": sum(r.programs for r in self.rows),
            "inputs": sum(r.inputs for r in self.rows),
            "ok": self.ok,
        }
        # Keyed only in site mode so the default artifact stays
        # byte-identical to the pre-site shape.
        if self.arbitration != "file":
            payload["arbitration"] = self.arbitration
        return payload

    def render(self) -> str:
        headers = ["Suite", "Programs", "Inputs", *VERDICTS]
        rows = []
        for r in self.rows:
            rows.append([r.name, r.programs, r.inputs,
                         *(r.counts.get(verdict, 0)
                           for verdict in VERDICTS)])
        rows.append(["Total",
                     sum(r.programs for r in self.rows),
                     sum(r.inputs for r in self.rows),
                     *(sum(r.counts.get(verdict, 0) for r in self.rows)
                       for verdict in VERDICTS)])
        title = "Differential validation — Table III/V transformed sites"
        if self.backends:
            title += f" [backends: {', '.join(self.backends)}]"
        if self.arbitration != "file":
            title += f" [arbitration: {self.arbitration}]"
        text = render_table(headers, rows, title)
        if self.scoreboard:
            site_mode = any("sites_won" in row
                            for row in self.scoreboard.values())
            board_rows = [[backend, row["attempted"], row["changed"],
                           row["selected"], row["rejected"],
                           row["errors"], row["overflow_prevented"],
                           *([row.get("sites_won", 0)]
                             if site_mode else [])]
                          for backend, row
                          in sorted(self.scoreboard.items())]
            text += "\n\n" + render_table(
                ["Backend", "Attempted", "Changed", "Selected",
                 "Rejected", "Errors", "Overflow-prevented",
                 *(["Sites-won"] if site_mode else [])],
                board_rows, "Backend arbitration scoreboard")
        return text


def _merge(counts: dict[str, int], report) -> int:
    """Accumulate one ValidationReport into ``counts``; returns the
    number of inputs it executed."""
    for verdict, n in report.counts().items():
        counts[verdict] = counts.get(verdict, 0) + n
    return len(report.verdicts)


def compute_validation(*, scale: float = 0.02, limit: int = 12,
                       jobs: int | None = None,
                       corpus: bool = True,
                       backends=None,
                       arbitration: str | None = None
                       ) -> ValidationEvalResult:
    """Run the oracle over a SAMATE slice and the corpus programs.

    ``scale`` sizes the generated Table III population; ``limit`` caps
    the per-CWE number of programs actually validated (stratified, so
    variant/flow diversity survives the cap).  ``backends`` (an id
    tuple, comma string, or ``"all"``) swaps the legacy SLR→STR chain
    for per-file arbitration and fills the result's scoreboard;
    ``arbitration="site"`` replays the same population under per-site
    composition — the gate that proves site mode ships no
    ``semantics-changed`` composite anywhere in Table III/V.
    """
    from ..core.backends import (
        resolve_arbitration, resolve_backends, scoreboard,
    )

    backend_ids = resolve_backends(backends) if backends else None
    mode = resolve_arbitration(arbitration)
    if mode == "site" and backend_ids is None:
        raise ValueError("site arbitration requires a backends selection "
                         "(--backends)")
    result = ValidationEvalResult(backends=backend_ids, arbitration=mode)
    arbitrations = []
    suite = generate_suite(scale)
    for cwe, programs in suite.items():
        sample = stratified_sample(programs, limit)
        outcomes = run_samate_suite(sample, validate=True, jobs=jobs,
                                    backends=backend_ids,
                                    arbitration_mode=mode)
        counts: dict[str, int] = {}
        inputs = 0
        validated = 0
        for outcome in outcomes:
            if outcome.arbitration is not None:
                arbitrations.append(outcome.arbitration)
            if outcome.validation is None:
                continue
            validated += 1
            inputs += _merge(counts, outcome.validation)
        result.samate_rows.append(ValidationRow(
            f"CWE-{cwe} ({CWE_TITLES[cwe]})", validated, inputs, counts))
    if corpus:
        for name, program in build_all().items():
            batch = apply_batch(program, validate=True, jobs=jobs,
                                backends=backend_ids,
                                arbitration=mode)
            arbitrations.extend(batch.arbitrations())
            counts = {}
            inputs = 0
            for report in batch.validations():
                inputs += _merge(counts, report)
            result.corpus_rows.append(ValidationRow(
                name, len(batch.validations()), inputs, counts))
    if arbitrations:
        result.scoreboard = scoreboard(arbitrations)
    return result


def main(argv: list[str] | None = None) -> None:
    import argparse
    import sys
    parser = argparse.ArgumentParser(
        description="Differentially re-validate Table III/V "
                    "transformed sites")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="SAMATE population scale (default 0.02)")
    parser.add_argument("--limit", type=int, default=12,
                        help="max validated programs per CWE")
    parser.add_argument("--no-corpus", action="store_true",
                        help="skip the Table V corpus programs")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS "
                             "or 1)")
    parser.add_argument("--backends", default=None, metavar="A,B,C",
                        help="arbitrate these fix backends per program "
                             "instead of the legacy SLR→STR chain "
                             "('all' = every registered backend)")
    parser.add_argument("--arbitration", default=None,
                        choices=("file", "site"),
                        help="winner selection under --backends: 'file' "
                             "(default) or per-'site' composition")
    parser.add_argument("--scoreboard-json", default=None,
                        metavar="PATH",
                        help="write the backend scoreboard + verdict "
                             "totals to this JSON file (CI artifact)")
    args = parser.parse_args(argv)
    try:
        result = compute_validation(scale=args.scale, limit=args.limit,
                                    jobs=args.jobs,
                                    corpus=not args.no_corpus,
                                    backends=args.backends,
                                    arbitration=args.arbitration)
    except (KeyError, ValueError) as exc:
        # A typo'd --backends id (UnknownBackendError) or a bad mode
        # must exit with one clean line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        sys.exit(2)
    print(result.render())
    if args.scoreboard_json:
        import json
        with open(args.scoreboard_json, "w", encoding="utf-8") as handle:
            json.dump(result.scoreboard_payload(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"\nwrote scoreboard to {args.scoreboard_json}")
    if result.ok:
        print("\nNo semantics-changing divergence found.")
    else:
        print(f"\nFAIL: {result.total_changed} semantics-changed "
              f"divergence(s).")
        sys.exit(1)


if __name__ == "__main__":
    main()
