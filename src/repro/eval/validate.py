"""Differential re-validation of every Table III / Table V transformed
site.

The evaluation tables answer "how many sites were transformed"; this
experiment answers "did any of those transformations change semantics".
It replays the Table III population (a SAMATE slice, per-CWE stratified
sample) and the Table V corpus programs through the differential oracle
(:mod:`repro.core.validate`) and aggregates verdicts.  A single
``semantics-changed`` divergence anywhere fails the run — this is the
standing correctness gate every transformation PR must pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.batch import apply_batch
from ..core.validate import VERDICT_CHANGED, VERDICTS
from ..corpus import build_all
from ..samate.generator import CWE_TITLES, generate_suite
from .common import render_table
from .samate_runner import run_samate_suite, stratified_sample


@dataclass
class ValidationRow:
    name: str                   # 'CWE-121' or a corpus program name
    programs: int               # validated programs/files
    inputs: int                 # differential inputs executed
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def semantics_changed(self) -> int:
        return self.counts.get(VERDICT_CHANGED, 0)


@dataclass
class ValidationEvalResult:
    samate_rows: list[ValidationRow] = field(default_factory=list)
    corpus_rows: list[ValidationRow] = field(default_factory=list)

    @property
    def rows(self) -> list[ValidationRow]:
        return self.samate_rows + self.corpus_rows

    @property
    def total_changed(self) -> int:
        return sum(r.semantics_changed for r in self.rows)

    @property
    def ok(self) -> bool:
        return self.total_changed == 0

    def render(self) -> str:
        headers = ["Suite", "Programs", "Inputs", *VERDICTS]
        rows = []
        for r in self.rows:
            rows.append([r.name, r.programs, r.inputs,
                         *(r.counts.get(verdict, 0)
                           for verdict in VERDICTS)])
        rows.append(["Total",
                     sum(r.programs for r in self.rows),
                     sum(r.inputs for r in self.rows),
                     *(sum(r.counts.get(verdict, 0) for r in self.rows)
                       for verdict in VERDICTS)])
        return render_table(
            headers, rows,
            "Differential validation — Table III/V transformed sites")


def _merge(counts: dict[str, int], report) -> int:
    """Accumulate one ValidationReport into ``counts``; returns the
    number of inputs it executed."""
    for verdict, n in report.counts().items():
        counts[verdict] = counts.get(verdict, 0) + n
    return len(report.verdicts)


def compute_validation(*, scale: float = 0.02, limit: int = 12,
                       jobs: int | None = None,
                       corpus: bool = True) -> ValidationEvalResult:
    """Run the oracle over a SAMATE slice and the corpus programs.

    ``scale`` sizes the generated Table III population; ``limit`` caps
    the per-CWE number of programs actually validated (stratified, so
    variant/flow diversity survives the cap).
    """
    result = ValidationEvalResult()
    suite = generate_suite(scale)
    for cwe, programs in suite.items():
        sample = stratified_sample(programs, limit)
        outcomes = run_samate_suite(sample, validate=True, jobs=jobs)
        counts: dict[str, int] = {}
        inputs = 0
        validated = 0
        for outcome in outcomes:
            if outcome.validation is None:
                continue
            validated += 1
            inputs += _merge(counts, outcome.validation)
        result.samate_rows.append(ValidationRow(
            f"CWE-{cwe} ({CWE_TITLES[cwe]})", validated, inputs, counts))
    if corpus:
        for name, program in build_all().items():
            batch = apply_batch(program, validate=True, jobs=jobs)
            counts = {}
            inputs = 0
            for report in batch.validations():
                inputs += _merge(counts, report)
            result.corpus_rows.append(ValidationRow(
                name, len(batch.validations()), inputs, counts))
    return result


def main(argv: list[str] | None = None) -> None:
    import argparse
    import sys
    parser = argparse.ArgumentParser(
        description="Differentially re-validate Table III/V "
                    "transformed sites")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="SAMATE population scale (default 0.02)")
    parser.add_argument("--limit", type=int, default=12,
                        help="max validated programs per CWE")
    parser.add_argument("--no-corpus", action="store_true",
                        help="skip the Table V corpus programs")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS "
                             "or 1)")
    args = parser.parse_args(argv)
    result = compute_validation(scale=args.scale, limit=args.limit,
                                jobs=args.jobs,
                                corpus=not args.no_corpus)
    print(result.render())
    if result.ok:
        print("\nNo semantics-changing divergence found.")
    else:
        print(f"\nFAIL: {result.total_changed} semantics-changed "
              f"divergence(s).")
        sys.exit(1)


if __name__ == "__main__":
    main()
