"""Table V: running SLR on the corpus programs (RQ2).

Also checks the paper's correctness claims: every transformed file still
parses ("no compilation errors") and every program's test suite produces
identical output before and after ("make test" passes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.batch import apply_batch
from ..corpus import build_all
from ..vm.interp import run_program_files
from .common import PAPER_TABLE5_TOTAL, pct, render_table


@dataclass
class Table5Row:
    program: str
    sites: int
    transformed: int
    parses: bool
    tests_pass: bool
    failure_reasons: dict[str, int]


@dataclass
class Table5Result:
    rows: list[Table5Row] = field(default_factory=list)
    by_function: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def total_sites(self) -> int:
        return sum(r.sites for r in self.rows)

    @property
    def total_transformed(self) -> int:
        return sum(r.transformed for r in self.rows)

    def render(self) -> str:
        headers = ["Software", "# Unsafe Functions", "# Transformed",
                   "% Transformed", "Reparses", "Tests Pass"]
        rows = [[r.program, r.sites, r.transformed,
                 pct(r.transformed, r.sites),
                 "yes" if r.parses else "NO",
                 "yes" if r.tests_pass else "NO"] for r in self.rows]
        paper_sites, paper_done, paper_pct = PAPER_TABLE5_TOTAL
        rows.append(["Total", self.total_sites, self.total_transformed,
                     pct(self.total_transformed, self.total_sites),
                     "", f"(paper: {paper_done}/{paper_sites} = "
                         f"{paper_pct}%)"])
        return render_table(headers, rows,
                            "Table V — Running SLR on test programs")


def compute_table5(*, execute: bool = True,
                   jobs: int | None = None) -> Table5Result:
    result = Table5Result()
    for name, program in build_all().items():
        batch = apply_batch(program, run_slr=True, run_str=False,
                            jobs=jobs)
        tests_pass = True
        if execute:
            before = run_program_files(program.preprocess().files)
            after = run_program_files(batch.transformed_program.files)
            tests_pass = (before.ok and after.ok
                          and before.stdout == after.stdout)
        result.rows.append(Table5Row(
            program=name,
            sites=batch.candidates("SLR"),
            transformed=batch.transformed("SLR"),
            parses=batch.all_parse,
            tests_pass=tests_pass,
            failure_reasons=batch.failures_by_reason("SLR")))
        for fn, (done, total) in batch.by_target("SLR").items():
            prev_done, prev_total = result.by_function.get(fn, (0, 0))
            result.by_function[fn] = (prev_done + done, prev_total + total)
    return result


def main(argv: list[str] | None = None) -> None:
    import argparse
    parser = argparse.ArgumentParser(description="Regenerate Table V")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1)")
    parser.add_argument("--no-execute", action="store_true",
                        help="skip the before/after VM runs")
    args = parser.parse_args(argv)
    result = compute_table5(execute=not args.no_execute, jobs=args.jobs)
    print(result.render())
    print("\nPer-site failure reasons:")
    for row in result.rows:
        if row.failure_reasons:
            print(f"  {row.program}: {row.failure_reasons}")


if __name__ == "__main__":
    main()
