"""Shared helpers for the evaluation harness: table rendering and the
paper's reported numbers (for side-by-side comparison)."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list], title: str = "",
                 ) -> str:
    """Render an ASCII table (the harness prints the same rows the paper
    reports)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(char: str = "-") -> str:
        return "+" + "+".join(char * (w + 2) for w in widths) + "+"

    def fmt(row: list[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) \
            + " |"

    out = []
    if title:
        out.append(title)
    out.append(line("="))
    out.append(fmt(headers))
    out.append(line("="))
    for row in cells:
        out.append(fmt(row))
    out.append(line())
    return "\n".join(out)


def pct(done: int, total: int) -> str:
    if total == 0:
        return "-"
    return f"{100.0 * done / total:.2f}%"


# ------------------------------------------------- paper-reported values

#: Table III (paper): cwe -> (programs, slr_applied, str_applied).
PAPER_TABLE3 = {
    121: (1877, 1096, 1877),
    122: (890, 644, 890),
    124: (680, 0, 680),
    126: (416, 0, 416),
    127: (624, 0, 624),
    242: (18, 18, 0),
}

#: Table III KLOC columns: cwe -> (kloc, pp_kloc).
PAPER_TABLE3_KLOC = {
    121: (131.9, 820.9),
    122: (106.3, 463.9),
    124: (55.8, 243.9),
    126: (30.2, 141.5),
    127: (47.5, 171.8),
    242: (1.0, 1.9),
}

#: Table IV (paper): program -> (#files, kloc, pp_kloc).
PAPER_TABLE4 = {
    "zlib": (12, 29.0, 64.0),
    "libpng": (18, 43.8, 187.0),
    "GMP": (62, 76.4, 1097.7),
    "libtiff": (78, 169.0, 390.3),
}

#: Table V (paper): totals.
PAPER_TABLE5_TOTAL = (317, 259, 81.7)

#: Figure 2 (paper): function -> (replaced, total).
PAPER_FIGURE2 = {
    "strcpy": (28, 39),
    "strcat": (8, 8),
    "sprintf": (150, 153),
    "vsprintf": (1, 2),
    "memcpy": (72, 115),
}

#: Table VI (paper): totals (C1 identified, C2 replaced, C3 failed).
PAPER_TABLE6_TOTAL = (296, 237, 59)

#: STR failure reasons that are *static* precondition failures — buffers
#: failing these never enter the paper's Table VI candidate count (the
#: paper's 296 candidates are the variables that pass preconditions 1-3;
#: the 59 failures are all interprocedural).
STR_STATIC_FAIL_REASONS = frozenset({
    "unsupported-libfn", "address-taken", "returned",
    "unsupported-assignment", "escapes-assignment", "nested-allocation",
    "indirect-call", "source-not-transformed", "assigned-from-call",
})

#: STR failure reasons counted as interprocedural (Table VI column C3).
STR_INTERPROC_FAIL_REASONS = frozenset({
    "callee-may-write", "group-member-failed",
})
