"""Evaluation harness: regenerates every table and figure of the paper.

* :mod:`repro.eval.table3` — SAMATE benchmark results (RQ1)
* :mod:`repro.eval.table4` — corpus statistics
* :mod:`repro.eval.table5` — SLR on the corpus (RQ2)
* :mod:`repro.eval.table6` — STR on the corpus (RQ2)
* :mod:`repro.eval.figure2` — per-function SLR replacement rates
* :mod:`repro.eval.perf`   — runtime overhead (RQ3)

Run ``python -m repro.eval <experiment>`` (or ``all``).
"""

from .figure2 import compute_figure2
from .perf import compute_perf
from .table3 import compute_table3
from .table4 import compute_table4
from .table5 import compute_table5
from .table6 import compute_table6

__all__ = [
    "compute_figure2", "compute_perf", "compute_table3", "compute_table4",
    "compute_table5", "compute_table6",
]
