"""Table III: securing the SAMATE benchmark programs (RQ1).

Columns: CWE, #programs, SLR-applied, STR-applied, KLOC, PP KLOC —
plus the security outcome (bad function fixed / good behaviour preserved)
over the executed subset.

Applicability columns are always computed over the *full* population
(they are static properties); executing all 4,505 programs in the VM is
behind ``execute_limit=None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..samate.generator import CWE_TITLES, generate_suite
from .common import PAPER_TABLE3, render_table
from .samate_runner import run_samate_suite, stratified_sample


@dataclass
class Table3Row:
    cwe: int
    programs: int
    slr_applied: int
    str_applied: int
    kloc: float
    pp_kloc: float
    executed: int = 0
    fixed: int = 0
    preserved: int = 0


@dataclass
class Table3Result:
    rows: list[Table3Row] = field(default_factory=list)

    @property
    def total_programs(self) -> int:
        return sum(r.programs for r in self.rows)

    @property
    def all_fixed(self) -> bool:
        return all(r.fixed == r.executed for r in self.rows)

    @property
    def all_preserved(self) -> bool:
        return all(r.preserved == r.executed for r in self.rows)

    def render(self) -> str:
        headers = ["CWE", "Description", "Programs", "SLR", "STR",
                   "KLOC", "PP KLOC", "Executed", "Fixed", "Preserved",
                   "Paper (prog/SLR/STR)"]
        rows = []
        for r in self.rows:
            paper = PAPER_TABLE3[r.cwe]
            rows.append([
                f"CWE-{r.cwe}", CWE_TITLES[r.cwe], r.programs,
                r.slr_applied or "-", r.str_applied or "-",
                f"{r.kloc:.1f}", f"{r.pp_kloc:.1f}",
                r.executed, r.fixed, r.preserved,
                f"{paper[0]}/{paper[1] or '-'}/{paper[2] or '-'}",
            ])
        rows.append([
            "Total", "", self.total_programs,
            sum(r.slr_applied for r in self.rows),
            sum(r.str_applied for r in self.rows),
            f"{sum(r.kloc for r in self.rows):.1f}",
            f"{sum(r.pp_kloc for r in self.rows):.1f}",
            sum(r.executed for r in self.rows),
            sum(r.fixed for r in self.rows),
            sum(r.preserved for r in self.rows),
            "4505/1758/4487",
        ])
        return render_table(headers, rows,
                            "Table III — CWEs describing buffer overflows")


def compute_table3(*, scale: float = 1.0,
                   execute_limit: int | None = 20,
                   jobs: int | None = None) -> Table3Result:
    """Build Table III.

    ``execute_limit`` caps the per-CWE number of programs actually run in
    the VM (None = run every program); applicability and line counts are
    always measured on every generated program.  ``jobs`` fans programs
    out over a fork pool; row counts are identical at any worker count.
    """
    suite = generate_suite(scale)
    result = Table3Result()
    for cwe, programs in suite.items():
        to_execute = set(
            id(p) for p in (programs if execute_limit is None
                            else stratified_sample(programs,
                                                   execute_limit)))
        row = Table3Row(cwe=cwe, programs=len(programs), slr_applied=0,
                        str_applied=0, kloc=0.0, pp_kloc=0.0)
        outcomes = run_samate_suite(programs, execute=to_execute,
                                    jobs=jobs)
        for program, outcome in zip(programs, outcomes):
            if outcome.slr_applied:
                row.slr_applied += 1
            if outcome.str_applied:
                row.str_applied += 1
            row.kloc += outcome.source_lines / 1000.0
            row.pp_kloc += outcome.pp_lines / 1000.0
            if id(program) in to_execute:
                row.executed += 1
                if outcome.bad_faulted_before and outcome.fixed_after:
                    row.fixed += 1
                if outcome.good_preserved:
                    row.preserved += 1
        result.rows.append(row)
    return result


def main(argv: list[str] | None = None) -> None:
    import argparse
    parser = argparse.ArgumentParser(description="Regenerate Table III")
    parser.add_argument("--full", action="store_true",
                        help="execute every program (slow)")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--execute-limit", type=int, default=20)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1)")
    args = parser.parse_args(argv)
    result = compute_table3(
        scale=args.scale,
        execute_limit=None if args.full else args.execute_limit,
        jobs=args.jobs)
    print(result.render())
    print(f"\nAll executed bad functions fixed: {result.all_fixed}")
    print(f"All executed good functions preserved: {result.all_preserved}")


if __name__ == "__main__":
    main()
