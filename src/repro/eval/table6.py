"""Table VI: running STR on the corpus programs (RQ2).

Candidate accounting follows the paper: "buffers identified" (C1) are the
local char buffers passing the *static* preconditions (type, locality,
supported library usage); the interprocedural write check then rejects C3
of them, and 100% of the remainder (C2) are replaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.batch import apply_batch
from ..corpus import build_all
from ..vm.interp import run_program_files
from .common import (
    PAPER_TABLE6_TOTAL, STR_INTERPROC_FAIL_REASONS,
    STR_STATIC_FAIL_REASONS, pct, render_table,
)


@dataclass
class Table6Row:
    program: str
    identified: int             # C1
    replaced: int               # C2
    failed_precondition: int    # C3
    tests_pass: bool

    @property
    def pct_replaced(self) -> str:
        return pct(self.replaced, self.identified)

    @property
    def pct_of_passed(self) -> str:
        passed = self.identified - self.failed_precondition
        return pct(self.replaced, passed)


@dataclass
class Table6Result:
    rows: list[Table6Row] = field(default_factory=list)

    @property
    def totals(self) -> tuple[int, int, int]:
        return (sum(r.identified for r in self.rows),
                sum(r.replaced for r in self.rows),
                sum(r.failed_precondition for r in self.rows))

    def render(self) -> str:
        headers = ["Software", "Buffers Identified [C1]",
                   "Buffers Replaced [C2]", "Did Not Pass [C3]",
                   "% Replaced [C2/C1]", "% of Passed [C2/(C1-C3)]",
                   "Tests Pass"]
        rows = [[r.program, r.identified, r.replaced,
                 r.failed_precondition, r.pct_replaced, r.pct_of_passed,
                 "yes" if r.tests_pass else "NO"] for r in self.rows]
        c1, c2, c3 = self.totals
        paper_c1, paper_c2, paper_c3 = PAPER_TABLE6_TOTAL
        rows.append(["Total", c1, c2, c3, pct(c2, c1), pct(c2, c1 - c3),
                     f"(paper: {paper_c1}/{paper_c2}/{paper_c3})"])
        return render_table(headers, rows,
                            "Table VI — Running STR on test programs")


def classify_outcomes(outcomes) -> tuple[int, int, int]:
    """(identified, replaced, failed-interprocedural) per the paper's
    candidate definition."""
    identified = 0
    replaced = 0
    failed = 0
    for outcome in outcomes:
        if outcome.transformed:
            identified += 1
            replaced += 1
        elif outcome.reason in STR_INTERPROC_FAIL_REASONS:
            identified += 1
            failed += 1
        elif outcome.reason in STR_STATIC_FAIL_REASONS:
            continue            # never a candidate (static precondition)
        else:
            identified += 1
            failed += 1
    return identified, replaced, failed


def compute_table6(*, execute: bool = True,
                   jobs: int | None = None) -> Table6Result:
    result = Table6Result()
    for name, program in build_all().items():
        batch = apply_batch(program, run_slr=False, run_str=True,
                            jobs=jobs)
        outcomes = [o for report in batch.reports if report.str_
                    for o in report.str_.outcomes]
        identified, replaced, failed = classify_outcomes(outcomes)
        tests_pass = True
        if execute:
            before = run_program_files(program.preprocess().files)
            after = run_program_files(batch.transformed_program.files)
            tests_pass = (before.ok and after.ok
                          and before.stdout == after.stdout)
        result.rows.append(Table6Row(
            program=name, identified=identified, replaced=replaced,
            failed_precondition=failed, tests_pass=tests_pass))
    return result


def main(argv: list[str] | None = None) -> None:
    import argparse
    parser = argparse.ArgumentParser(description="Regenerate Table VI")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1)")
    args = parser.parse_args(argv)
    print(compute_table6(jobs=args.jobs).render())


if __name__ == "__main__":
    main()
