"""Measurable, subprocess-friendly pipeline benchmark runner.

Runs a stratified sample of the SAMATE suite through
:func:`repro.core.batch.apply_batch` (with the differential oracle on)
and prints one JSON record per run: wall seconds, per-file transform
counts, oracle verdicts, cache counters (memory and disk layers), and
the per-stage time breakdown.

The benchmark harness (``benchmarks/test_bench_perf_overhead.py``)
launches this module in fresh interpreters to measure the three legs the
persistent artifact store distinguishes:

* **cold** — new process, empty ``REPRO_CACHE_DIR``;
* **warm in-process** — second ``--repeat`` in the same interpreter
  (memory LRUs hot);
* **warm cross-process** — new interpreter, same ``REPRO_CACHE_DIR``
  (memory LRUs empty, disk store hot).

Counts and verdicts are emitted so the harness can assert that every
leg — any ``--jobs`` value, disk cache on or off — produces identical
results.

Run by hand::

    python -m repro.eval.pipeline_bench --scale 0.05 --limit 24 \
        --jobs 4 --repeat 2
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..core.batch import BatchResult, SourceProgram, apply_batch
from .samate_runner import stratified_sample


def sample_program(scale: float = 0.05, limit: int = 24) -> SourceProgram:
    """A multi-file :class:`SourceProgram` built from a stratified SAMATE
    sample — one .c file per generated test program."""
    from ..samate import generate_suite
    programs = [p for progs in generate_suite(scale).values()
                for p in progs]
    sample = stratified_sample(programs, limit)
    return SourceProgram(
        name=f"samate-sample-{len(sample)}",
        files={p.name + ".c": p.source for p in sample})


def run_record(result: BatchResult, wall_s: float) -> dict:
    """One benchmark run as a JSON-ready record."""
    counts = {r.filename: {
        "slr": [r.slr.transformed_count, r.slr.candidates]
               if r.slr else None,
        "str": [r.str_.transformed_count, r.str_.candidates]
               if r.str_ else None,
        "parses": r.parses,
    } for r in result.reports}
    verdicts = {r.filename: dict(sorted(r.validation.counts().items()))
                for r in result.reports if r.validation is not None}
    stats = result.stats
    supervision = dict(stats.supervision) if stats else {}
    status = result.status_counts()
    arbitration = None
    if result.arbitrations():
        arbitration = {
            "winners": result.winners(),
            "scoreboard": result.backend_scoreboard(),
            "attempted": result.backends_attempted,
            "rejected": result.backends_rejected,
        }
        if any(a.mode == "site" for a in result.arbitrations()):
            arbitration["mode"] = "site"
            arbitration["composites_shipped"] = result.composites_shipped
            arbitration["site_winners"] = result.site_winner_totals()
    return {
        "arbitration": arbitration,
        "jobs": stats.jobs if stats else None,
        "wall_s": round(wall_s, 4),
        "files": len(result.reports),
        "files_per_s": round(len(result.reports) / wall_s, 2)
                       if wall_s > 0 else None,
        "counts": counts,
        "verdicts": verdicts,
        "semantics_preserved": result.semantics_preserved,
        # Robustness: contained-failure and supervision tallies — all
        # zero on a healthy run, and the harness asserts exactly that.
        "robustness": {
            "failed": status["failed"],
            "degraded": status["degraded"],
            "timeouts": supervision.get("timeouts", 0),
            "retries": supervision.get("retries", 0),
            "worker_deaths": supervision.get("worker_deaths", 0),
        },
        "stats": stats.as_dict() if stats else None,
    }


def run_benchmark(*, scale: float = 0.05, limit: int = 24,
                  jobs: int = 1, repeat: int = 1,
                  validate: bool = True,
                  fuzz_seed: int | None = None,
                  backends: str | None = None,
                  arbitration: str | None = None) -> list[dict]:
    """Run the sampled batch ``repeat`` times and record each run.

    Repeats share the process's memory caches, so run 2+ measures the
    warm-in-process leg.  The program is rebuilt (and its preprocess
    memo dropped) each time so every run exercises the full pipeline.
    ``backends`` swaps the legacy chain for per-file arbitration (the
    bench's arbitration leg scales cost with the backend count);
    ``arbitration="site"`` measures the composition leg on top (per-site
    replay + judge + composite re-judge).
    """
    records = []
    for _ in range(max(1, repeat)):
        program = sample_program(scale, limit)
        start = time.perf_counter()
        result = apply_batch(program, jobs=jobs, validate=validate,
                             fuzz_seed=fuzz_seed, backends=backends,
                             arbitration=arbitration)
        records.append(run_record(result, time.perf_counter() - start))
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the transformation pipeline on a sampled "
                    "SAMATE batch; prints one JSON document")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="SAMATE suite scale factor")
    parser.add_argument("--limit", type=int, default=24,
                        help="stratified-sample size (total files)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for apply_batch")
    parser.add_argument("--repeat", type=int, default=1,
                        help="runs in this process (2nd+ = warm leg)")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip the differential oracle")
    parser.add_argument("--seed", type=int, default=None,
                        help="fuzz-input seed for the oracle")
    parser.add_argument("--backends", default=None, metavar="A,B,C",
                        help="arbitrate these fix backends per file "
                             "instead of the legacy SLR→STR chain")
    parser.add_argument("--arbitration", default=None,
                        choices=("file", "site"),
                        help="winner selection under --backends: 'file' "
                             "(default) or per-'site' composition")
    parser.add_argument("--out", default=None,
                        help="write JSON here instead of stdout")
    args = parser.parse_args(argv)
    try:
        runs = run_benchmark(scale=args.scale, limit=args.limit,
                             jobs=args.jobs, repeat=args.repeat,
                             validate=not args.no_validate,
                             fuzz_seed=args.seed,
                             backends=args.backends,
                             arbitration=args.arbitration)
    except (KeyError, ValueError) as exc:
        # Clean one-line exit on a typo'd backend id or bad mode.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = json.dumps({"runs": runs}, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        sys.stdout.write(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
