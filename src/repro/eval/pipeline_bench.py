"""Measurable, subprocess-friendly pipeline benchmark runner.

Runs a stratified sample of the SAMATE suite through
:func:`repro.core.batch.apply_batch` (with the differential oracle on)
and prints one JSON record per run: wall seconds, per-file transform
counts, oracle verdicts, cache counters (memory and disk layers), and
the per-stage time breakdown.

The benchmark harness (``benchmarks/test_bench_perf_overhead.py``)
launches this module in fresh interpreters to measure the three legs the
persistent artifact store distinguishes:

* **cold** — new process, empty ``REPRO_CACHE_DIR``;
* **warm in-process** — second ``--repeat`` in the same interpreter
  (memory LRUs hot);
* **warm cross-process** — new interpreter, same ``REPRO_CACHE_DIR``
  (memory LRUs empty, disk store hot).

Counts and verdicts are emitted so the harness can assert that every
leg — any ``--jobs`` value, disk cache on or off — produces identical
results.

``--corpus synth`` swaps the SAMATE sample for the mutational
synthesizer (``--limit`` becomes the file count), and ``--summary``
switches to the streaming scheduler: reports are aggregated as they
arrive instead of collected, so the record adds peak RSS, the stream's
buffering high-water mark, and the store's write-contention summary —
the numbers the 1k/10k batch-scale legs gate on.

Run by hand::

    python -m repro.eval.pipeline_bench --scale 0.05 --limit 24 \
        --jobs 4 --repeat 2
    python -m repro.eval.pipeline_bench --corpus synth --limit 1000 \
        --jobs 4 --no-validate --summary
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..core.batch import BatchResult, SourceProgram, apply_batch
from .samate_runner import stratified_sample


def sample_program(scale: float = 0.05, limit: int = 24) -> SourceProgram:
    """A multi-file :class:`SourceProgram` built from a stratified SAMATE
    sample — one .c file per generated test program."""
    from ..samate import generate_suite
    programs = [p for progs in generate_suite(scale).values()
                for p in progs]
    sample = stratified_sample(programs, limit)
    return SourceProgram(
        name=f"samate-sample-{len(sample)}",
        files={p.name + ".c": p.source for p in sample})


def build_corpus(corpus: str, *, scale: float, limit: int,
                 synth_seed: int) -> SourceProgram:
    """The benchmark input: a stratified SAMATE sample, or ``limit``
    synthesized ground-truth mutants (deterministic in ``synth_seed``)."""
    if corpus == "synth":
        from ..corpus.synth import build_program
        return build_program(limit, synth_seed)
    return sample_program(scale, limit)


def run_record(result: BatchResult, wall_s: float) -> dict:
    """One benchmark run as a JSON-ready record."""
    counts = {r.filename: {
        "slr": [r.slr.transformed_count, r.slr.candidates]
               if r.slr else None,
        "str": [r.str_.transformed_count, r.str_.candidates]
               if r.str_ else None,
        "parses": r.parses,
    } for r in result.reports}
    verdicts = {r.filename: dict(sorted(r.validation.counts().items()))
                for r in result.reports if r.validation is not None}
    stats = result.stats
    supervision = dict(stats.supervision) if stats else {}
    status = result.status_counts()
    arbitration = None
    if result.arbitrations():
        arbitration = {
            "winners": result.winners(),
            "scoreboard": result.backend_scoreboard(),
            "attempted": result.backends_attempted,
            "rejected": result.backends_rejected,
        }
        if any(a.mode == "site" for a in result.arbitrations()):
            arbitration["mode"] = "site"
            arbitration["composites_shipped"] = result.composites_shipped
            arbitration["site_winners"] = result.site_winner_totals()
    return {
        "arbitration": arbitration,
        "jobs": stats.jobs if stats else None,
        "wall_s": round(wall_s, 4),
        "files": len(result.reports),
        "files_per_s": round(len(result.reports) / wall_s, 2)
                       if wall_s > 0 else None,
        "counts": counts,
        "verdicts": verdicts,
        "semantics_preserved": result.semantics_preserved,
        # Robustness: contained-failure and supervision tallies — all
        # zero on a healthy run, and the harness asserts exactly that.
        "robustness": {
            "failed": status["failed"],
            "degraded": status["degraded"],
            "timeouts": supervision.get("timeouts", 0),
            "retries": supervision.get("retries", 0),
            "worker_deaths": supervision.get("worker_deaths", 0),
        },
        "stats": stats.as_dict() if stats else None,
    }


def run_benchmark(*, scale: float = 0.05, limit: int = 24,
                  jobs: int = 1, repeat: int = 1,
                  validate: bool = True,
                  fuzz_seed: int | None = None,
                  backends: str | None = None,
                  arbitration: str | None = None,
                  corpus: str = "samate",
                  synth_seed: int = 0) -> list[dict]:
    """Run the sampled batch ``repeat`` times and record each run.

    Repeats share the process's memory caches, so run 2+ measures the
    warm-in-process leg.  The program is rebuilt (and its preprocess
    memo dropped) each time so every run exercises the full pipeline.
    ``backends`` swaps the legacy chain for per-file arbitration (the
    bench's arbitration leg scales cost with the backend count);
    ``arbitration="site"`` measures the composition leg on top (per-site
    replay + judge + composite re-judge).
    """
    records = []
    for _ in range(max(1, repeat)):
        program = build_corpus(corpus, scale=scale, limit=limit,
                               synth_seed=synth_seed)
        start = time.perf_counter()
        result = apply_batch(program, jobs=jobs, validate=validate,
                             fuzz_seed=fuzz_seed, backends=backends,
                             arbitration=arbitration)
        records.append(run_record(result, time.perf_counter() - start))
    return records


def run_summary(*, scale: float = 0.05, limit: int = 24, jobs: int = 1,
                validate: bool = True, fuzz_seed: int | None = None,
                corpus: str = "samate", synth_seed: int = 0) -> dict:
    """One streaming run: aggregate reports as they arrive, never
    retaining the batch.

    This is the batch-scale measurement mode: the record keeps rollup
    totals (status, transform counts, verdicts) instead of per-file
    entries, and adds peak RSS, the stream's buffering high-water mark,
    and the artifact store's write-contention summary.
    """
    import resource

    from ..core.batch import stream_batch
    from ..core.store import get_store

    program = build_corpus(corpus, scale=scale, limit=limit,
                           synth_seed=synth_seed)
    start = time.perf_counter()
    stream = stream_batch(program, jobs=jobs, validate=validate,
                          fuzz_seed=fuzz_seed)
    status = {"ok": 0, "degraded": 0, "failed": 0, "quarantined": 0}
    verdict_totals: dict[str, int] = {}
    parses = 0
    slr = [0, 0]
    str_ = [0, 0]
    for report in stream:
        status[report.status] += 1
        if report.parses:
            parses += 1
        if report.slr:
            slr[0] += report.slr.transformed_count
            slr[1] += report.slr.candidates
        if report.str_:
            str_[0] += report.str_.transformed_count
            str_[1] += report.str_.candidates
        if report.validation is not None:
            for verdict, n in report.validation.counts().items():
                verdict_totals[verdict] = \
                    verdict_totals.get(verdict, 0) + n
    wall_s = time.perf_counter() - start
    info = stream.info
    # Linux reports ru_maxrss in KiB; children covers the fork pool.
    rss_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    rss_children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return {
        "corpus": corpus,
        "files": info.emitted,
        "jobs": info.jobs,
        "wall_s": round(wall_s, 4),
        "files_per_s": round(info.emitted / wall_s, 2)
                       if wall_s > 0 else None,
        "status": status,
        "parses": parses,
        "slr_sites": slr,
        "str_buffers": str_,
        "verdict_totals": dict(sorted(verdict_totals.items())) or None,
        "stream": {
            "window": info.window,
            "max_buffered": info.max_buffered,
            "deduplicated": info.deduplicated,
            "preprocess_failures": info.preprocess_failures,
            "supervision": dict(info.supervision),
        },
        "peak_rss_kb": {"parent": rss_self, "children": rss_children},
        "store_contention": get_store().contention_summary(),
    }


def run_resume_benchmark(*, limit: int = 24, jobs: int = 1,
                         validate: bool = True,
                         fuzz_seed: int | None = None,
                         corpus: str = "synth",
                         synth_seed: int = 0,
                         scale: float = 0.05) -> dict:
    """The ``resume`` leg: replay overhead of ``--resume`` on a fully
    completed run versus the compute cost of the original run.

    A journaled clean run establishes the write-ahead log, then a second
    :func:`apply_batch` resumes from it — every file should replay from
    the journal's result pointers without re-dispatching, so the resume
    wall measures pure journal-replay overhead.  Byte-identity of the
    replayed reports (status, final text, parse bit, diagnostics) is
    asserted against the original run, not assumed.
    """
    from ..core.runlog import RunJournal

    program = build_corpus(corpus, scale=scale, limit=limit,
                           synth_seed=synth_seed)

    journal = RunJournal()
    journal.begin(program, {"bench": "resume", "validate": validate})
    start = time.perf_counter()
    clean = apply_batch(program, jobs=jobs, validate=validate,
                        fuzz_seed=fuzz_seed, journal=journal)
    compute_wall = time.perf_counter() - start

    resumed = RunJournal(journal.run_id)
    resumed.load()
    start = time.perf_counter()
    replay = apply_batch(program, jobs=jobs, validate=validate,
                         fuzz_seed=fuzz_seed, journal=resumed)
    resume_wall = time.perf_counter() - start

    def _essence(result: BatchResult) -> dict:
        return {r.filename: (r.status, r.final_text, r.parses,
                             [(d.stage, d.kind) for d in r.diagnostics])
                for r in result.reports}

    identical = _essence(clean) == _essence(replay)
    speedup = compute_wall / resume_wall if resume_wall > 0 else None
    return {
        "corpus": corpus,
        "files": len(clean.reports),
        "jobs": jobs,
        "run_id": journal.run_id,
        "compute_wall_s": round(compute_wall, 4),
        "resume_wall_s": round(resume_wall, 4),
        "speedup": round(speedup, 2) if speedup else None,
        "replayed": replay.stats.replayed if replay.stats else None,
        "quarantined": replay.stats.quarantined if replay.stats else None,
        "reports_identical": identical,
        "status": replay.status_counts(),
    }


def watch_fixture(functions: int = 96) -> tuple[str, str, str]:
    """A multi-function watch fixture: ``(base, edited, dirty_name)``.

    ``functions`` worker functions (only the first two called from
    ``main``) plus a ``main`` that reads stdin; the edit touches the
    last worker's body — one function out of many, uncalled on the
    probe inputs, so the incremental path re-transforms one singleton
    component and reuses every oracle probe.
    """
    # Minimal declarations instead of full header expansion: the
    # preamble rides along in every reduced per-component unit, so a
    # lean preamble keeps the incremental path's parses proportional to
    # the edit, not to the headers.
    parts = ["typedef struct _FILE FILE;\n"
             "extern FILE *stdin;\n"
             "char *fgets(char *s, int size, FILE *stream);\n"
             "int printf(const char *fmt, ...);\n"
             "char *strcpy(char *dest, const char *src);\n"
             "char *strcat(char *dest, const char *src);\n\n"]
    for i in range(functions):
        parts.append(
            f"void worker{i}(const char *src) {{\n"
            f"    char buf[16];\n"
            f"    char aux[24];\n"
            f"    strcpy(buf, src);\n"
            f"    strcat(aux, src);\n"
            f'    printf("w{i} %s %s\\n", buf, aux);\n'
            f"}}\n\n")
    parts.append(
        "int main(void) {\n"
        "    char line[32];\n"
        "    fgets(line, sizeof line, stdin);\n"
        "    worker0(line);\n"
        "    worker1(line);\n"
        "    return 0;\n"
        "}\n")
    base = "".join(parts)
    dirty = f"worker{functions - 1}"
    edited = base.replace(f'printf("w{functions - 1} %s %s\\n", buf, aux);',
                          f'printf("w{functions - 1}: %s %s\\n", buf, aux);')
    assert edited != base
    return base, edited, dirty


def run_incremental_benchmark(*, functions: int = 96,
                              seed: int = 0) -> dict:
    """The ``incremental`` leg: edit-to-verdict latency of a warm
    :class:`repro.core.incremental.IncrementalEngine` on a one-function
    edit, against the cold pipeline on the same edited text.

    The cold leg runs with cleared memory caches and the disk layer off,
    so it measures exactly what a from-scratch ``transform_file`` pays;
    byte-identity of transformed text, per-site outcomes, and verdicts
    is asserted, not assumed.
    """
    import os

    from ..cfront.cache import clear_all_caches
    from ..core.batch import FileTask, transform_file
    from ..core.incremental import IncrementalEngine, _FUNC_CACHE
    from ..core.session import get_session, reset_session

    filename = "watch_fixture.c"
    base, edited, dirty = watch_fixture(functions)

    engine = IncrementalEngine(filename, fuzz_seed=seed)
    warm = engine.update(base)
    assert warm.mode == "full", (warm.mode, warm.reason)
    update = engine.update(edited)

    # Cold reference: empty memory caches, disk layer off for the
    # duration so nothing the warm engine published can be replayed.
    clear_all_caches()
    reset_session()
    old_disk = os.environ.get("REPRO_DISK_CACHE")
    os.environ["REPRO_DISK_CACHE"] = "0"
    try:
        session = get_session()
        start = time.perf_counter()
        pp = session.preprocess(edited, filename).text
        cold = transform_file(FileTask(filename, pp, validate=True,
                                       fuzz_seed=seed), session)
        cold_wall = time.perf_counter() - start
    finally:
        if old_disk is None:
            del os.environ["REPRO_DISK_CACHE"]
        else:
            os.environ["REPRO_DISK_CACHE"] = old_disk

    cold_outcomes = [o for result in (cold.slr, cold.str_) if result
                     for o in result.outcomes]
    incremental_outcomes = list(update.slr_outcomes) \
        + list(update.str_outcomes)
    speedup = cold_wall / update.wall_s if update.wall_s > 0 else None
    return {
        "functions": functions,
        "edited_function": dirty,
        "mode": update.mode,
        "invalidated": sorted(update.invalidated),
        "cold_wall_s": round(cold_wall, 4),
        "incremental_wall_s": round(update.wall_s, 4),
        "speedup": round(speedup, 2) if speedup else None,
        "text_identical": update.final_text == cold.final_text,
        "outcomes_identical": incremental_outcomes == cold_outcomes,
        "verdicts_identical":
            update.verdict_counts() == cold.validation.counts(),
        "verdicts": dict(sorted(update.verdict_counts().items())),
        "func_cache": {"hits": update.func_hits,
                       "misses": update.func_misses},
        "func_cache_process": _FUNC_CACHE.stats.as_dict(),
        "probes": {"reused": update.probes_reused,
                   "executed": update.probes_executed},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the transformation pipeline on a sampled "
                    "SAMATE batch; prints one JSON document")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="SAMATE suite scale factor")
    parser.add_argument("--limit", type=int, default=24,
                        help="stratified-sample size (total files)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for apply_batch")
    parser.add_argument("--repeat", type=int, default=1,
                        help="runs in this process (2nd+ = warm leg)")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip the differential oracle")
    parser.add_argument("--seed", type=int, default=None,
                        help="fuzz-input seed for the oracle")
    parser.add_argument("--backends", default=None, metavar="A,B,C",
                        help="arbitrate these fix backends per file "
                             "instead of the legacy SLR→STR chain")
    parser.add_argument("--arbitration", default=None,
                        choices=("file", "site"),
                        help="winner selection under --backends: 'file' "
                             "(default) or per-'site' composition")
    parser.add_argument("--corpus", choices=("samate", "synth"),
                        default="samate",
                        help="benchmark input: stratified SAMATE sample "
                             "(default) or the mutational synthesizer "
                             "(--limit = file count)")
    parser.add_argument("--synth-seed", type=int, default=0,
                        help="generation seed for --corpus synth")
    parser.add_argument("--summary", action="store_true",
                        help="stream the batch and print one aggregate "
                             "record (adds peak RSS, stream buffering "
                             "high-water mark, store contention) instead "
                             "of per-file runs")
    parser.add_argument("--resume-leg", action="store_true",
                        help="run the crash-recovery leg instead: a "
                             "journaled clean run, then a --resume "
                             "replay of it, reporting replay overhead "
                             "and byte-identity")
    parser.add_argument("--incremental", type=int, default=None,
                        metavar="N",
                        help="run the incremental watch-mode leg instead: "
                             "edit one of N functions in a synthetic "
                             "fixture and compare a warm engine against "
                             "the cold pipeline")
    parser.add_argument("--out", default=None,
                        help="write JSON here instead of stdout")
    args = parser.parse_args(argv)
    if args.incremental is not None:
        record = run_incremental_benchmark(functions=args.incremental,
                                           seed=args.seed or 0)
        payload = json.dumps({"incremental": record}, indent=2,
                             sort_keys=True) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(payload)
        else:
            sys.stdout.write(payload)
        return 0
    if args.resume_leg:
        record = run_resume_benchmark(limit=args.limit, jobs=args.jobs,
                                      validate=not args.no_validate,
                                      fuzz_seed=args.seed,
                                      corpus=args.corpus,
                                      synth_seed=args.synth_seed,
                                      scale=args.scale)
        payload = json.dumps({"resume": record}, indent=2,
                             sort_keys=True) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(payload)
        else:
            sys.stdout.write(payload)
        return 0
    if args.summary:
        record = run_summary(scale=args.scale, limit=args.limit,
                             jobs=args.jobs,
                             validate=not args.no_validate,
                             fuzz_seed=args.seed, corpus=args.corpus,
                             synth_seed=args.synth_seed)
        payload = json.dumps({"summary": record}, indent=2,
                             sort_keys=True) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(payload)
        else:
            sys.stdout.write(payload)
        return 0
    try:
        runs = run_benchmark(scale=args.scale, limit=args.limit,
                             jobs=args.jobs, repeat=args.repeat,
                             validate=not args.no_validate,
                             fuzz_seed=args.seed,
                             backends=args.backends,
                             arbitration=args.arbitration,
                             corpus=args.corpus,
                             synth_seed=args.synth_seed)
    except (KeyError, ValueError) as exc:
        # Clean one-line exit on a typo'd backend id or bad mode.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = json.dumps({"runs": runs}, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        sys.stdout.write(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
