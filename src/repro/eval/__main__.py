"""CLI: ``python -m repro.eval
{table3,table4,table5,table6,figure2,perf,validate,all}``."""

import sys

from . import figure2, perf, report, table3, table4, table5, table6, validate

_EXPERIMENTS = {
    "table3": table3.main,
    "table4": table4.main,
    "table5": table5.main,
    "table6": table6.main,
    "figure2": figure2.main,
    "perf": perf.main,
    "report": report.main,
    "validate": validate.main,
}


def main() -> int:
    args = sys.argv[1:]
    if not args or args[0] in ("-h", "--help"):
        names = ", ".join([*_EXPERIMENTS, "all"])
        print(f"usage: python -m repro.eval <experiment> [options]\n"
              f"experiments: {names}")
        return 0
    which, rest = args[0], args[1:]
    if which == "all":
        for name, runner in _EXPERIMENTS.items():
            print(f"\n##### {name} #####")
            if name == "table3":
                runner(["--scale", "0.05", *rest])
            else:
                runner(rest)
        return 0
    runner = _EXPERIMENTS.get(which)
    if runner is None:
        print(f"unknown experiment {which!r}")
        return 2
    runner(rest)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
