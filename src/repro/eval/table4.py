"""Table IV: the open-source test programs (corpus statistics)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..corpus import build_all
from .common import PAPER_TABLE4, render_table


@dataclass
class Table4Row:
    program: str
    files: int
    kloc: float
    pp_kloc: float


@dataclass
class Table4Result:
    rows: list[Table4Row] = field(default_factory=list)

    def render(self) -> str:
        headers = ["Software", "# C Files", "KLOC", "PP KLOC",
                   "Paper (files/KLOC/PP KLOC)"]
        rows = []
        for r in self.rows:
            paper = PAPER_TABLE4[r.program]
            rows.append([r.program, r.files, f"{r.kloc:.2f}",
                         f"{r.pp_kloc:.2f}",
                         f"{paper[0]}/{paper[1]}/{paper[2]}"])
        rows.append(["Total", sum(r.files for r in self.rows),
                     f"{sum(r.kloc for r in self.rows):.2f}",
                     f"{sum(r.pp_kloc for r in self.rows):.2f}",
                     "170/318.2/1739.0"])
        return render_table(headers, rows, "Table IV — Test programs")


def compute_table4() -> Table4Result:
    result = Table4Result()
    for name, program in build_all().items():
        preprocessed = program.preprocess()
        result.rows.append(Table4Row(
            program=name,
            files=program.file_count,
            kloc=program.kloc(),
            pp_kloc=preprocessed.kloc()))
    return result


def main(argv: list[str] | None = None) -> None:
    print(compute_table4().render())


if __name__ == "__main__":
    main()
