"""Per-analysis microbenchmark: fast path vs legacy reference solvers.

Times each analysis pass — CFG construction, points-to, alias, reaching
definitions, dependence — over three workloads:

* **samate** — a stratified sample of the generated SAMATE suite (the
  pipeline's own benchmark input);
* **corpus** — the bundled real-world corpus excerpts (zlib, libpng,
  GMP, libtiff);
* **pointer_stress** — a deterministic synthetic translation unit with
  long pointer copy chains, copy cycles, and multi-level dereferences.
  Real fix-sites rarely have enough pointers for the asymptotic
  difference between the solvers to matter; this workload is where the
  SCC-collapsed difference-propagation solver's win is measured.

Each (workload, analysis) cell is timed twice: once with
``REPRO_ANALYSIS_FAST=1`` (the default fast path) and once with ``=0``
(the legacy reference solvers kept for differential testing).  Parsing
and binding are done once, outside the timed region, so the numbers are
pure analysis time.  Output floats are rounded and keys sorted so the
emitted ``BENCH_analysis.json`` is diff-stable across runs.

Run by hand::

    python -m repro.eval.analysis_bench --out BENCH_analysis.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager

from ..analysis import bind
from ..analysis.alias import AliasAnalysis
from ..analysis.cfg import build_all_cfgs
from ..analysis.dependence import DependenceAnalysis
from ..analysis.pointsto import PointsToAnalysis
from ..analysis.reaching import ReachingDefinitions
from ..cfront.parser import parse_translation_unit

#: Analyses benchmarked, in report order.
ANALYSES = ("cfg", "pointsto", "alias", "reaching", "dependence")


@contextmanager
def _fast_flag(enabled: bool):
    """Pin ``REPRO_ANALYSIS_FAST`` for the duration of a timing leg."""
    prior = os.environ.get("REPRO_ANALYSIS_FAST")
    os.environ["REPRO_ANALYSIS_FAST"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_ANALYSIS_FAST"]
        else:
            os.environ["REPRO_ANALYSIS_FAST"] = prior


# ------------------------------------------------------------- workloads

def pointer_stress_source(n_objects: int = 120, n_pointers: int = 240,
                          cycle_every: int = 17) -> str:
    """A synthetic unit stressing the points-to solver: copy chains of
    ``n_pointers`` single-level pointers with a back-edge (cycle) every
    ``cycle_every`` steps, plus double-pointer loads and stores.  Fully
    deterministic — no randomness — so timings are comparable run to
    run."""
    lines = [f"int o{i};" for i in range(n_objects)]
    lines += [f"int *p{i};" for i in range(n_pointers)]
    lines += [f"int **pp{i};" for i in range(n_pointers // 8)]
    body = []
    for i in range(n_pointers):
        if i < n_objects:
            body.append(f"p{i} = &o{i};")
        if i > 0:
            body.append(f"p{i} = p{i - 1};")
        if i % cycle_every == 0 and i > cycle_every:
            body.append(f"p{i - cycle_every} = p{i};")
    for i in range(n_pointers // 8):
        body.append(f"pp{i} = &p{i * 7 % n_pointers};")
        body.append(f"*pp{i} = p{(i * 13 + 5) % n_pointers};")
        body.append(f"p{(i * 11 + 3) % n_pointers} = *pp{i};")
    return ("\n".join(lines) + "\nvoid stress(void) {\n"
            + "\n".join("    " + stmt for stmt in body) + "\n}\n")


def _parse_units(files: dict[str, str]) -> list[tuple]:
    """Parse + bind every file (untimed); skips files the frontend
    rejects so a corpus excerpt outside the C subset cannot fail the
    benchmark."""
    units = []
    for filename, text in sorted(files.items()):
        try:
            unit = parse_translation_unit(text, filename)
            units.append((unit, bind(unit)))
        except Exception:
            continue
    return units


def samate_files(scale: float = 0.05, limit: int = 24) -> dict[str, str]:
    from ..core.session import AnalysisSession
    from .pipeline_bench import sample_program
    session = AnalysisSession()
    return {filename: session.preprocess(text, filename).text
            for filename, text
            in sample_program(scale, limit).files.items()}


def corpus_files() -> dict[str, str]:
    from ..core.session import AnalysisSession
    from ..corpus import build_all
    session = AnalysisSession()
    files: dict[str, str] = {}
    for program in build_all().values():
        preprocessed = program.preprocess(session)
        for filename, text in preprocessed.files.items():
            files[f"{program.name}/{filename}"] = text
    return files


# --------------------------------------------------------------- timing

def _time_analysis(name: str, units: list[tuple], *, fast: bool,
                   repeat: int) -> float:
    """Best-of-``repeat`` wall seconds for one analysis over all units.

    Prerequisite passes (CFGs for the flow analyses, a solved points-to
    graph for alias) are built outside the timed region, under the same
    fast/legacy flag as the timed pass.
    """
    with _fast_flag(fast):
        if name in ("reaching", "dependence"):
            cfgs = [cfg for unit, _ in units
                    for cfg in build_all_cfgs(unit).values()]
        if name == "dependence":
            pre_reaching = [ReachingDefinitions(cfg) for cfg in cfgs]
        if name == "alias":
            solved = [(PointsToAnalysis(unit, table), table)
                      for unit, table in units]

        best = float("inf")
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            if name == "cfg":
                for unit, _ in units:
                    build_all_cfgs(unit)
            elif name == "pointsto":
                for unit, table in units:
                    PointsToAnalysis(unit, table)
            elif name == "alias":
                for pointsto, table in solved:
                    AliasAnalysis(pointsto, table)
            elif name == "reaching":
                for cfg in cfgs:
                    ReachingDefinitions(cfg)
            elif name == "dependence":
                for cfg, reaching in zip(cfgs, pre_reaching):
                    DependenceAnalysis(cfg, reaching)
            best = min(best, time.perf_counter() - start)
    return best


def bench_workload(units: list[tuple], *, repeat: int = 3) -> dict:
    """Fast and legacy timings for every analysis over one unit set."""
    n_functions = sum(len(list(unit.functions())) for unit, _ in units)
    analyses = {}
    for name in ANALYSES:
        fast_s = _time_analysis(name, units, fast=True, repeat=repeat)
        legacy_s = _time_analysis(name, units, fast=False, repeat=repeat)
        analyses[name] = {
            "fast_s": round(fast_s, 4),
            "legacy_s": round(legacy_s, 4),
            "speedup_x": round(legacy_s / fast_s, 2) if fast_s > 0
                         else None,
        }
    return {"files": len(units), "functions": n_functions,
            "analyses": analyses}


def run_benchmark(*, scale: float = 0.05, limit: int = 24,
                  repeat: int = 3) -> dict:
    workloads = {
        "samate": bench_workload(_parse_units(samate_files(scale, limit)),
                                 repeat=repeat),
        "corpus": bench_workload(_parse_units(corpus_files()),
                                 repeat=repeat),
        "pointer_stress": bench_workload(
            _parse_units({"stress.c": pointer_stress_source()}),
            repeat=repeat),
    }
    stress_pts = workloads["pointer_stress"]["analyses"]["pointsto"]
    return {
        # Headline number: the points-to microbench (the stress unit is
        # the workload sized to exercise the solver, so it carries the
        # >=2x acceptance gate).
        "pointsto_speedup_x": stress_pts["speedup_x"],
        "repeat": max(1, repeat),
        "workloads": workloads,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the analysis passes (fast path vs legacy "
                    "reference); prints one JSON document")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="SAMATE suite scale factor")
    parser.add_argument("--limit", type=int, default=24,
                        help="stratified-sample size (total files)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repeats per timing cell (best-of)")
    parser.add_argument("--out", default=None,
                        help="write JSON here instead of stdout")
    args = parser.parse_args(argv)
    record = run_benchmark(scale=args.scale, limit=args.limit,
                           repeat=args.repeat)
    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        sys.stdout.write(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
