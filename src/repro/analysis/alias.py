"""Alias sets derived from the solved points-to graph.

The paper's alias generator "topologically sorts the points-to graphs and
calculates the alias sets", ignoring self-cycles on aggregate nodes, and
caches the sets in a hash map.  Functionally: two pointers alias when their
points-to sets intersect; an object is aliased when more than one access
path can reach it.  ``ISALIASED`` in Algorithm 1 consults these sets.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from ..cfront.ctypes_model import StructType
from .fastpath import fast_enabled
from .pointsto import PointsToAnalysis
from .symtab import Symbol, SymbolTable


class AliasAnalysis:
    def __init__(self, pointsto: PointsToAnalysis, table: SymbolTable):
        self.pointsto = pointsto
        self.table = table
        # symbol uid -> symbols it may alias (cached, per paper), ordered
        # by first appearance in the points-to node list so iteration is
        # deterministic under hash-seed randomization.
        self._alias_map: dict[int, list[Symbol]] = {}
        self._object_pointers: dict[int, set[Symbol]] = {}
        if fast_enabled():
            self._compute_fast()
        else:
            self._compute()

    def _compute(self) -> None:
        """Reference computation: pairwise points-to set intersection."""
        pointers = self.pointsto.pointer_symbols()
        pts_of: dict[int, set[int]] = {}
        for symbol in pointers:
            pts = {node.index for node in self.pointsto.points_to(symbol)
                   # Recursive self-cycles on aggregates are irrelevant to
                   # aliasing (paper §III-A) — drop pointers to self.
                   if node.symbol is not symbol}
            pts_of[symbol.uid] = pts
            for target in pts:
                self._object_pointers.setdefault(target, set()).add(symbol)

        for symbol in pointers:
            mine = pts_of[symbol.uid]
            aliases = []
            if mine:
                for other in pointers:
                    if other is symbol:
                        continue
                    if mine & pts_of[other.uid]:
                        aliases.append(other)
            self._alias_map[symbol.uid] = aliases

    def _compute_fast(self) -> None:
        """Bitset computation via the target -> co-pointer-mask map.

        Two pointers alias exactly when they share a points-to target, so
        the alias set of ``s`` is the union of co-pointers over its
        targets — the same relation the pairwise intersections produce,
        without the O(pointers²) set products.  Pointer identity is one
        bit (its rank in ``pointer_symbols`` order, i.e. node creation
        order), co-pointer sets are int masks, and the union is a
        handful of big-int ORs per pointer; decoding masks lowest bit
        first keeps every result list deterministic regardless of hash
        seed.
        """
        from .fastpath import iter_bits
        pointers = self.pointsto.pointer_symbols()
        co_mask: dict[int, int] = {}
        pts_of: list[list[int]] = []
        for rank, symbol in enumerate(pointers):
            bit = 1 << rank
            pts = [node.index for node in self.pointsto.points_to(symbol)
                   if node.symbol is not symbol]
            pts_of.append(pts)
            for target in pts:
                co_mask[target] = co_mask.get(target, 0) | bit
                self._object_pointers.setdefault(target, set()).add(symbol)

        for rank, symbol in enumerate(pointers):
            mask = 0
            for target in pts_of[rank]:
                mask |= co_mask[target]
            mask &= ~(1 << rank)
            self._alias_map[symbol.uid] = [pointers[i]
                                           for i in iter_bits(mask)]

    # ------------------------------------------------------------------ API

    def aliases_of(self, symbol: Symbol) -> list[Symbol]:
        """Other pointer variables whose targets intersect this one's,
        in deterministic pointer-node creation order."""
        return self._alias_map.get(symbol.uid, [])

    def is_aliased(self, symbol: Symbol) -> bool:
        """ISALIASED(B) of Algorithm 1.

        A pointer is aliased when another pointer may reference the same
        storage, or when the pointer *itself* is reachable from another
        pointer (``char **pp = &p``) — its value can then change behind
        the reaching-definition analysis's back.  An object (array/
        struct) is aliased when more than one pointer can reach its
        aggregate node.
        """
        from ..cfront.ctypes_model import PointerType
        if self._alias_map.get(symbol.uid):
            return True
        obj = self.pointsto.object_node(symbol)
        if obj is not None:
            pointing = self._object_pointers.get(obj.index, set())
            pointing = {s for s in pointing if s is not symbol}
            if isinstance(symbol.ctype, PointerType):
                if pointing:
                    return True
            elif len(pointing) >= 2:
                return True
            if obj.index in self.pointsto.escaped:
                return True
        return False

    def struct_is_aliased(self, symbol: Symbol) -> bool:
        """Is a struct variable's aggregate reachable from any pointer?

        Used for the element-access branch of Algorithm 1 (a struct whose
        address escapes may have its members rewritten behind our back).
        """
        if not isinstance(symbol.ctype, StructType):
            return False
        obj = self.pointsto.object_node(symbol)
        if obj is None:
            return False
        pointing = self._object_pointers.get(obj.index, set())
        return bool(pointing) or obj.index in self.pointsto.escaped

    def alias_sets(self) -> list[list[Symbol]]:
        """Partition pointer symbols into maximal alias groups.

        Groups appear in pointer-node creation order, and each group is
        ordered the same way, so rendering the partition never leaks set
        iteration order.
        """
        seen: set[int] = set()
        groups: list[list[Symbol]] = []
        for symbol in self.pointsto.pointer_symbols():
            if symbol.uid in seen:
                continue
            seen.add(symbol.uid)
            group = [symbol]
            frontier = [symbol]
            while frontier:
                current = frontier.pop()
                for other in self.aliases_of(current):
                    if other.uid not in seen:
                        seen.add(other.uid)
                        group.append(other)
                        frontier.append(other)
            if len(group) > 1:
                groups.append(group)
        return groups


def analyze_aliases(unit: ast.TranslationUnit,
                    table: SymbolTable) -> AliasAnalysis:
    """Convenience: run points-to then alias analysis."""
    return AliasAnalysis(PointsToAnalysis(unit, table), table)
