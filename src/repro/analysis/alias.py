"""Alias sets derived from the solved points-to graph.

The paper's alias generator "topologically sorts the points-to graphs and
calculates the alias sets", ignoring self-cycles on aggregate nodes, and
caches the sets in a hash map.  Functionally: two pointers alias when their
points-to sets intersect; an object is aliased when more than one access
path can reach it.  ``ISALIASED`` in Algorithm 1 consults these sets.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from ..cfront.ctypes_model import StructType
from .pointsto import PointsToAnalysis
from .symtab import Symbol, SymbolTable


class AliasAnalysis:
    def __init__(self, pointsto: PointsToAnalysis, table: SymbolTable):
        self.pointsto = pointsto
        self.table = table
        # symbol uid -> set of symbols it may alias (cached, per paper).
        self._alias_map: dict[int, set[Symbol]] = {}
        self._object_pointers: dict[int, set[Symbol]] = {}
        self._compute()

    def _compute(self) -> None:
        pointers = self.pointsto.pointer_symbols()
        pts_of: dict[int, set[int]] = {}
        for symbol in pointers:
            pts = {node.index for node in self.pointsto.points_to(symbol)
                   # Recursive self-cycles on aggregates are irrelevant to
                   # aliasing (paper §III-A) — drop pointers to self.
                   if node.symbol is not symbol}
            pts_of[symbol.uid] = pts
            for target in pts:
                self._object_pointers.setdefault(target, set()).add(symbol)

        for symbol in pointers:
            aliases: set[Symbol] = set()
            mine = pts_of[symbol.uid]
            if mine:
                for other in pointers:
                    if other is symbol:
                        continue
                    if mine & pts_of[other.uid]:
                        aliases.add(other)
            self._alias_map[symbol.uid] = aliases

    # ------------------------------------------------------------------ API

    def aliases_of(self, symbol: Symbol) -> set[Symbol]:
        """Other pointer variables whose targets intersect this one's."""
        return self._alias_map.get(symbol.uid, set())

    def is_aliased(self, symbol: Symbol) -> bool:
        """ISALIASED(B) of Algorithm 1.

        A pointer is aliased when another pointer may reference the same
        storage, or when the pointer *itself* is reachable from another
        pointer (``char **pp = &p``) — its value can then change behind
        the reaching-definition analysis's back.  An object (array/
        struct) is aliased when more than one pointer can reach its
        aggregate node.
        """
        from ..cfront.ctypes_model import PointerType
        if self._alias_map.get(symbol.uid):
            return True
        obj = self.pointsto.object_node(symbol)
        if obj is not None:
            pointing = self._object_pointers.get(obj.index, set())
            pointing = {s for s in pointing if s is not symbol}
            if isinstance(symbol.ctype, PointerType):
                if pointing:
                    return True
            elif len(pointing) >= 2:
                return True
            if obj.index in self.pointsto.escaped:
                return True
        return False

    def struct_is_aliased(self, symbol: Symbol) -> bool:
        """Is a struct variable's aggregate reachable from any pointer?

        Used for the element-access branch of Algorithm 1 (a struct whose
        address escapes may have its members rewritten behind our back).
        """
        if not isinstance(symbol.ctype, StructType):
            return False
        obj = self.pointsto.object_node(symbol)
        if obj is None:
            return False
        pointing = self._object_pointers.get(obj.index, set())
        return bool(pointing) or obj.index in self.pointsto.escaped

    def alias_sets(self) -> list[set[Symbol]]:
        """Partition pointer symbols into maximal alias groups."""
        seen: set[int] = set()
        groups: list[set[Symbol]] = []
        for symbol in self.pointsto.pointer_symbols():
            if symbol.uid in seen:
                continue
            group = {symbol}
            frontier = [symbol]
            while frontier:
                current = frontier.pop()
                seen.add(current.uid)
                for other in self.aliases_of(current):
                    if other.uid not in seen:
                        group.add(other)
                        frontier.append(other)
            if len(group) > 1:
                groups.append(group)
        return groups


def analyze_aliases(unit: ast.TranslationUnit,
                    table: SymbolTable) -> AliasAnalysis:
    """Convenience: run points-to then alias analysis."""
    return AliasAnalysis(PointsToAnalysis(unit, table), table)
