"""Name binding: scoped symbol tables and declaration/use resolution.

Binds every :class:`Identifier` to a :class:`Symbol`, and every declarator,
parameter, and function definition to the symbol it introduces.  STR's
preconditions ("the variable is locally declared", "not a function
parameter") are questions about these symbols.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from ..cfront.ctypes_model import CType, FunctionType

GLOBAL_SCOPE = 0


class Symbol:
    """One declared name."""

    __slots__ = ("name", "ctype", "kind", "scope_level", "decl_node",
                 "storage_class", "uid")

    _next_uid = 0

    def __init__(self, name: str, ctype: CType, kind: str, scope_level: int,
                 decl_node: ast.Node | None,
                 storage_class: str | None = None):
        self.name = name
        self.ctype = ctype
        self.kind = kind                   # 'var' | 'param' | 'func' | 'enum'
        self.scope_level = scope_level
        self.decl_node = decl_node
        self.storage_class = storage_class
        self.uid = Symbol._next_uid
        Symbol._next_uid += 1

    @property
    def is_global(self) -> bool:
        return self.scope_level == GLOBAL_SCOPE

    @property
    def is_local(self) -> bool:
        return self.kind == "var" and self.scope_level > GLOBAL_SCOPE

    @property
    def is_param(self) -> bool:
        return self.kind == "param"

    @property
    def is_function(self) -> bool:
        return self.kind == "func"

    def __repr__(self) -> str:
        return (f"Symbol({self.name!r}, {self.ctype}, {self.kind}, "
                f"level={self.scope_level})")

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other) -> bool:
        return self is other


class SymbolTable:
    """Result of binding one translation unit."""

    def __init__(self):
        self.globals: dict[str, Symbol] = {}
        self.functions: dict[str, Symbol] = {}
        # All symbols, in declaration order.
        self.all_symbols: list[Symbol] = []
        # Function name -> local/param symbols declared inside it.
        self.locals_of: dict[str, list[Symbol]] = {}

    def lookup_global(self, name: str) -> Symbol | None:
        return self.globals.get(name)


class _ScopeStack:
    def __init__(self):
        self.scopes: list[dict[str, Symbol]] = [{}]

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    @property
    def level(self) -> int:
        return len(self.scopes) - 1

    def declare(self, symbol: Symbol) -> None:
        self.scopes[-1][symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None


class Binder:
    """Walks a translation unit, building scopes and binding identifiers."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.table = SymbolTable()
        self._scopes = _ScopeStack()
        self._current_function: ast.FunctionDef | None = None

    def bind(self) -> SymbolTable:
        for item in self.unit.items:
            if isinstance(item, ast.FunctionDef):
                self._bind_function(item)
            elif isinstance(item, ast.Declaration):
                self._bind_declaration(item)
        return self.table

    # ----------------------------------------------------------- internals

    def _new_symbol(self, name: str, ctype: CType, kind: str,
                    node: ast.Node | None,
                    storage: str | None = None) -> Symbol:
        symbol = Symbol(name, ctype, kind, self._scopes.level, node, storage)
        self._scopes.declare(symbol)
        self.table.all_symbols.append(symbol)
        if self._scopes.level == GLOBAL_SCOPE:
            self.table.globals[name] = symbol
            if kind == "func":
                self.table.functions[name] = symbol
        elif self._current_function is not None:
            self.table.locals_of.setdefault(
                self._current_function.name, []).append(symbol)
        return symbol

    def _bind_function(self, fn: ast.FunctionDef) -> None:
        existing = self._scopes.lookup(fn.name)
        if existing is not None and existing.is_function:
            symbol = existing
            symbol.decl_node = fn
        else:
            symbol = self._new_symbol(fn.name, fn.ctype, "func", fn,
                                      fn.storage_class)
        fn.symbol = symbol
        self._current_function = fn
        self._scopes.push()
        for param in fn.params:
            if param.name:
                psym = self._new_symbol(param.name, param.ctype, "param",
                                        param)
                param.symbol = psym
        self._bind_statement(fn.body, push_scope=False)
        self._scopes.pop()
        self._current_function = None

    def _bind_declaration(self, decl: ast.Declaration) -> None:
        if decl.is_typedef:
            return
        for declarator in decl.declarators:
            kind = "func" if isinstance(declarator.ctype, FunctionType) \
                else "var"
            existing = self._scopes.scopes[-1].get(declarator.name)
            if existing is not None and \
                    self._scopes.level == GLOBAL_SCOPE:
                # Redeclaration (e.g. extern then definition): reuse symbol.
                declarator.symbol = existing
            else:
                declarator.symbol = self._new_symbol(
                    declarator.name, declarator.ctype, kind, declarator,
                    decl.storage_class)
            if declarator.init is not None:
                self._bind_expression(declarator.init)

    def _bind_statement(self, stmt: ast.Node, *,
                        push_scope: bool = True) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            if push_scope:
                self._scopes.push()
            for item in stmt.items:
                if isinstance(item, ast.Declaration):
                    self._bind_declaration(item)
                else:
                    self._bind_statement(item)
            if push_scope:
                self._scopes.pop()
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._bind_expression(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._bind_expression(stmt.cond)
            self._bind_statement(stmt.then_stmt)
            if stmt.else_stmt is not None:
                self._bind_statement(stmt.else_stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._bind_expression(stmt.cond)
            self._bind_statement(stmt.body)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._bind_statement(stmt.body)
            self._bind_expression(stmt.cond)
        elif isinstance(stmt, ast.ForStmt):
            self._scopes.push()
            if isinstance(stmt.init, ast.Declaration):
                self._bind_declaration(stmt.init)
            elif isinstance(stmt.init, ast.ExprStmt):
                self._bind_statement(stmt.init)
            if stmt.cond is not None:
                self._bind_expression(stmt.cond)
            if stmt.advance is not None:
                self._bind_expression(stmt.advance)
            self._bind_statement(stmt.body)
            self._scopes.pop()
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._bind_expression(stmt.value)
        elif isinstance(stmt, ast.SwitchStmt):
            self._bind_expression(stmt.cond)
            self._bind_statement(stmt.body)
        elif isinstance(stmt, ast.CaseStmt):
            self._bind_expression(stmt.value)
            self._bind_statement(stmt.body)
        elif isinstance(stmt, ast.DefaultStmt):
            self._bind_statement(stmt.body)
        elif isinstance(stmt, ast.LabelStmt):
            self._bind_statement(stmt.body)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt,
                               ast.GotoStmt, ast.EmptyStmt)):
            pass
        elif isinstance(stmt, ast.Declaration):
            self._bind_declaration(stmt)

    def _bind_expression(self, expr: ast.Node) -> None:
        if isinstance(expr, ast.Identifier):
            symbol = self._scopes.lookup(expr.name)
            expr.symbol = symbol
            return
        if isinstance(expr, ast.FieldAccess):
            self._bind_expression(expr.base)
            return
        for child in expr.children():
            self._bind_expression(child)


def bind(unit: ast.TranslationUnit) -> SymbolTable:
    """Bind names in a translation unit; returns the symbol table."""
    return Binder(unit).bind()
