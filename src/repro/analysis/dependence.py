"""Control- and data-dependence analysis.

Data dependence comes from reaching definitions (def-use chains); control
dependence from the standard postdominator construction (Ferrante et al.):
node N is control dependent on branch B when B has successors X, Y with N
postdominating X but not B.  networkx supplies the immediate-dominator
computation on the reversed CFG.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from .cfg import CFG, CFGNode
from .fastpath import fast_enabled, immediate_dominators
from .reaching import Definition, ReachingDefinitions
from .symtab import Symbol


class DependenceAnalysis:
    def __init__(self, cfg: CFG, reaching: ReachingDefinitions | None = None):
        self.cfg = cfg
        self.reaching = reaching or ReachingDefinitions(cfg)
        self._control_deps: dict[int, set[int]] = {}
        self._used_cache: dict[int, set[Symbol]] = {}
        self._compute_control_dependence()

    # ---------------------------------------------------------------- data

    def data_dependences(self, node: CFGNode) -> list[Definition]:
        """Definitions that this node's uses depend on."""
        if node.stmt is None:
            return []
        used = self._used_symbols_of(node)
        out: list[Definition] = []
        for definition in self.reaching.reaching_in(node):
            if definition.symbol in used:
                out.append(definition)
        return out

    def def_use_chains(self) -> dict[Definition, list[CFGNode]]:
        """Map each definition to the CFG nodes that may use it."""
        chains: dict[Definition, list[CFGNode]] = {
            d: [] for d in self.reaching.definitions}
        for node in self.cfg.nodes:
            if node.stmt is None:
                continue
            used = self._used_symbols_of(node)
            for definition in self.reaching.reaching_in(node):
                if definition.symbol in used:
                    chains[definition].append(node)
        return chains

    def _used_symbols_of(self, node: CFGNode) -> set[Symbol]:
        """Symbols mentioned at a CFG node (memoized — statements are
        immutable for the lifetime of this analysis)."""
        found = self._used_cache.get(node.nid)
        if found is None:
            found = self._used_symbols(node.stmt)
            self._used_cache[node.nid] = found
        return found

    @staticmethod
    def _used_symbols(stmt: ast.Node) -> set[Symbol]:
        used: set[Symbol] = set()
        for node in stmt.walk():
            if isinstance(node, ast.Identifier) and node.symbol is not None:
                used.add(node.symbol)
        return used

    # ------------------------------------------------------------- control

    def _compute_control_dependence(self) -> None:
        ipdom = self._postdominators_fast() if fast_enabled() \
            else self._postdominators_networkx()
        deps: dict[int, set[int]] = {n.nid: set() for n in self.cfg.nodes}
        for branch in self.cfg.nodes:
            if len(branch.succs) < 2:
                continue
            for succ in branch.succs:
                # Walk the postdominator tree from succ up to (but not
                # including) ipdom(branch); everything on the way is
                # control dependent on branch.
                runner = succ.nid
                stop = ipdom.get(branch.nid)
                while runner is not None and runner != stop:
                    if runner != branch.nid:
                        deps[runner].add(branch.nid)
                    nxt = ipdom.get(runner)
                    if nxt == runner:
                        break
                    runner = nxt
        self._control_deps = deps

    def _postdominators_networkx(self) -> dict[int, int]:
        """Reference postdominator pass (immediate dominators of the
        reversed CFG, via networkx)."""
        import networkx as nx

        graph = nx.DiGraph()
        for node in self.cfg.nodes:
            graph.add_node(node.nid)
        for node in self.cfg.nodes:
            for succ in node.succs:
                graph.add_edge(node.nid, succ.nid)
        # Postdominators = dominators of the reversed graph from exit.
        reverse = graph.reverse(copy=True)
        exit_id = self.cfg.exit.nid
        if exit_id not in reverse or \
                not nx.has_path(reverse, exit_id, self.cfg.entry.nid):
            # Pathological CFG (e.g. infinite loop with no exit edge):
            # connect unreachable nodes to keep the computation total.
            for node in self.cfg.nodes:
                if not nx.has_path(reverse, exit_id, node.nid):
                    reverse.add_edge(exit_id, node.nid)
        return nx.immediate_dominators(reverse, exit_id)

    def _postdominators_fast(self) -> dict[int, int]:
        """Cooper–Harvey–Kennedy postdominators over the CFG's own
        adjacency arrays.  Dominator trees are unique, so this returns
        exactly what the networkx pass returns — including the same
        patching of nodes that cannot reach the exit.
        """
        cfg = self.cfg
        n = len(cfg.nodes)
        exit_id = cfg.exit.nid
        # The reversed graph: successors = CFG predecessors.
        succs = [list(ids) for ids in cfg.pred_ids()]
        preds = [list(ids) for ids in cfg.succ_ids()]

        def reachable_from_exit() -> bytearray:
            seen = bytearray(n)
            seen[exit_id] = 1
            stack = [exit_id]
            while stack:
                for nxt in succs[stack.pop()]:
                    if not seen[nxt]:
                        seen[nxt] = 1
                        stack.append(nxt)
            return seen

        seen = reachable_from_exit()
        if not seen[cfg.entry.nid]:
            # Same patch rule as the reference pass: connect every node
            # the exit cannot reach (in the reversed graph) directly to
            # the exit, then recompute reachability.
            for nid in range(n):
                if not seen[nid]:
                    succs[exit_id].append(nid)
                    preds[nid].append(exit_id)
        return immediate_dominators(n, exit_id, preds, succs)

    def control_dependencies(self, node: CFGNode) -> set[CFGNode]:
        """Branch nodes this node is control dependent on."""
        return {self.cfg.nodes[nid]
                for nid in self._control_deps.get(node.nid, set())}

    def is_control_dependent(self, node: CFGNode, branch: CFGNode) -> bool:
        return branch.nid in self._control_deps.get(node.nid, set())


def analyze_dependence(cfg: CFG) -> DependenceAnalysis:
    return DependenceAnalysis(cfg)
