"""Program analyses over the C AST.

:class:`ProgramAnalysis` is the facade the transformations consume: it runs
name binding, type analysis, CFG construction, reaching definitions,
points-to/alias analysis, call-graph construction, and exposes the
dependence and interprocedural write analyses lazily.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from .alias import AliasAnalysis, analyze_aliases
from .callgraph import CallGraph, build_call_graph
from .cfg import CFG, CFGNode, build_all_cfgs, build_cfg
from .dependence import DependenceAnalysis
from .interproc import InterproceduralWriteAnalysis
from .pointsto import PointsToAnalysis
from .reaching import Definition, ReachingDefinitions
from .symtab import Binder, Symbol, SymbolTable, bind
from .typecheck import TypeChecker, typecheck


class ProgramAnalysis:
    """All analyses for one translation unit, built once, queried often."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.symbols: SymbolTable = bind(unit)
        self.type_diagnostics = typecheck(unit)
        self.cfgs: dict[str, CFG] = build_all_cfgs(unit)
        self.pointsto = PointsToAnalysis(unit, self.symbols)
        self.aliases = AliasAnalysis(self.pointsto, self.symbols)
        self.callgraph = build_call_graph(unit)
        self.interproc = InterproceduralWriteAnalysis(self.callgraph)
        self._reaching: dict[str, ReachingDefinitions] = {}
        self._dependence: dict[str, DependenceAnalysis] = {}

    def cfg_of(self, function_name: str) -> CFG | None:
        return self.cfgs.get(function_name)

    def reaching_of(self, function_name: str) -> ReachingDefinitions | None:
        if function_name not in self.cfgs:
            return None
        if function_name not in self._reaching:
            self._reaching[function_name] = ReachingDefinitions(
                self.cfgs[function_name])
        return self._reaching[function_name]

    def dependence_of(self, function_name: str) -> DependenceAnalysis | None:
        if function_name not in self.cfgs:
            return None
        if function_name not in self._dependence:
            self._dependence[function_name] = DependenceAnalysis(
                self.cfgs[function_name],
                self.reaching_of(function_name))
        return self._dependence[function_name]


def analyze(unit: ast.TranslationUnit) -> ProgramAnalysis:
    """Run the full analysis pipeline over a translation unit."""
    return ProgramAnalysis(unit)


__all__ = [
    "ProgramAnalysis", "analyze",
    "AliasAnalysis", "analyze_aliases",
    "CallGraph", "build_call_graph",
    "CFG", "CFGNode", "build_cfg", "build_all_cfgs",
    "DependenceAnalysis",
    "InterproceduralWriteAnalysis",
    "PointsToAnalysis",
    "Definition", "ReachingDefinitions",
    "Binder", "Symbol", "SymbolTable", "bind",
    "TypeChecker", "typecheck",
]
