"""Program analyses over the C AST.

:class:`ProgramAnalysis` is the facade the transformations consume: name
binding, type analysis, CFG construction, reaching definitions,
points-to/alias analysis, call-graph construction, and the dependence and
interprocedural write analyses.  Every pass is built lazily on first
query — an SLR run never pays for the interprocedural write analysis it
does not consult, and STR never pays for reaching definitions — and the
per-function passes can be invalidated selectively so a caller editing
one function does not rebuild the world.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from ..core import profile
from .alias import AliasAnalysis, analyze_aliases
from .callgraph import CallGraph, build_call_graph
from .cfg import CFG, CFGNode, build_all_cfgs, build_cfg
from .dependence import DependenceAnalysis
from .interproc import InterproceduralWriteAnalysis
from .pointsto import PointsToAnalysis
from .reaching import Definition, ReachingDefinitions
from .symtab import Binder, Symbol, SymbolTable, bind
from .typecheck import TypeChecker, typecheck

_UNSET = None


class ProgramAnalysis:
    """All analyses for one translation unit, built on demand.

    Whole-unit passes (binding, typing, points-to, aliases, call graph,
    interprocedural writes, CFGs) are memoized on first access;
    per-function passes (reaching definitions, dependence) are memoized
    per function name.  Binding and typing annotate the AST in place
    (``node.symbol`` / ``node.ctype``) and therefore also run implicitly
    before any pass that reads those annotations.
    """

    def __init__(self, unit: ast.TranslationUnit,
                 symbols: SymbolTable | None = None):
        self.unit = unit
        self._symbols: SymbolTable | None = symbols
        self._type_diagnostics = _UNSET
        self._cfgs: dict[str, CFG] | None = None
        self._pointsto: PointsToAnalysis | None = None
        self._aliases: AliasAnalysis | None = None
        self._callgraph: CallGraph | None = None
        self._interproc: InterproceduralWriteAnalysis | None = None
        self._reaching: dict[str, ReachingDefinitions] = {}
        self._dependence: dict[str, DependenceAnalysis] = {}

    # ---------------------------------------------------- whole-unit passes

    @property
    def symbols(self) -> SymbolTable:
        if self._symbols is None:
            self._symbols = bind(self.unit)
        return self._symbols

    @property
    def type_diagnostics(self):
        if self._type_diagnostics is _UNSET:
            self.symbols
            self._type_diagnostics = typecheck(self.unit)
        return self._type_diagnostics

    @property
    def cfgs(self) -> dict[str, CFG]:
        if self._cfgs is None:
            self.symbols
            with profile.stage("analyze:cfg"):
                self._cfgs = build_all_cfgs(self.unit)
        return self._cfgs

    @property
    def pointsto(self) -> PointsToAnalysis:
        if self._pointsto is None:
            symbols = self.symbols
            with profile.stage("analyze:pointsto"):
                self._pointsto = PointsToAnalysis(self.unit, symbols)
        return self._pointsto

    @property
    def aliases(self) -> AliasAnalysis:
        if self._aliases is None:
            pointsto = self.pointsto
            with profile.stage("analyze:alias"):
                self._aliases = AliasAnalysis(pointsto, self.symbols)
        return self._aliases

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self.symbols
            self._callgraph = build_call_graph(self.unit)
        return self._callgraph

    @property
    def interproc(self) -> InterproceduralWriteAnalysis:
        if self._interproc is None:
            self._interproc = InterproceduralWriteAnalysis(self.callgraph)
        return self._interproc

    def ensure_types(self) -> "ProgramAnalysis":
        """Force binding + typing (the AST-annotation passes); returns self.

        Callers that read ``node.ctype`` straight off the AST — the
        transformations, the VM — must run this before trusting those
        annotations.
        """
        self.type_diagnostics
        return self

    # -------------------------------------------------- per-function passes

    def cfg_of(self, function_name: str) -> CFG | None:
        return self.cfgs.get(function_name)

    def reaching_of(self, function_name: str) -> ReachingDefinitions | None:
        if function_name not in self.cfgs:
            return None
        if function_name not in self._reaching:
            cfg = self.cfgs[function_name]
            with profile.stage("analyze:reaching"):
                self._reaching[function_name] = ReachingDefinitions(cfg)
        return self._reaching[function_name]

    def dependence_of(self, function_name: str) -> DependenceAnalysis | None:
        if function_name not in self.cfgs:
            return None
        if function_name not in self._dependence:
            cfg = self.cfgs[function_name]
            reaching = self.reaching_of(function_name)
            with profile.stage("analyze:dependence"):
                self._dependence[function_name] = DependenceAnalysis(
                    cfg, reaching)
        return self._dependence[function_name]

    # --------------------------------------------------------- invalidation

    def invalidate(self, function_name: str | None = None) -> None:
        """Drop memoized results so the next query recomputes them.

        With a function name, only that function's flow-sensitive passes
        (CFG, reaching definitions, dependence) are dropped — unchanged
        functions keep their results.  With no argument every pass is
        dropped; binding and typing re-annotate the AST on next access.
        """
        if function_name is not None:
            self._reaching.pop(function_name, None)
            self._dependence.pop(function_name, None)
            if self._cfgs is not None and function_name in self._cfgs:
                for fn in self.unit.functions():
                    if fn.name == function_name:
                        self._cfgs[function_name] = build_cfg(fn)
                        break
                else:
                    del self._cfgs[function_name]
            return
        self._symbols = None
        self._type_diagnostics = _UNSET
        self._cfgs = None
        self._pointsto = None
        self._aliases = None
        self._callgraph = None
        self._interproc = None
        self._reaching.clear()
        self._dependence.clear()


def analyze(unit: ast.TranslationUnit) -> ProgramAnalysis:
    """Build the analysis facade over a translation unit.

    Binding and typing run immediately (callers rely on ``node.symbol``
    / ``node.ctype`` being annotated); the flow and pointer analyses
    stay lazy until first query.
    """
    return ProgramAnalysis(unit).ensure_types()


__all__ = [
    "ProgramAnalysis", "analyze",
    "AliasAnalysis", "analyze_aliases",
    "CallGraph", "build_call_graph",
    "CFG", "CFGNode", "build_cfg", "build_all_cfgs",
    "DependenceAnalysis",
    "InterproceduralWriteAnalysis",
    "PointsToAnalysis",
    "Definition", "ReachingDefinitions",
    "Binder", "Symbol", "SymbolTable", "bind",
    "TypeChecker", "typecheck",
]
