"""Intraprocedural control-flow graphs.

One CFG per function definition.  Nodes are elementary statements
(declarations, expression statements, returns, …) plus synthetic
entry/exit/condition/join nodes; edges carry no labels.  Downstream
dataflow (reaching definitions, dependence) runs over these graphs, and
Algorithm 1's "is the struct redefined on the control-flow path from def to
use?" question is answered by graph reachability here.
"""

from __future__ import annotations

from typing import Iterator

from ..cfront import astnodes as ast


class CFGNode:
    __slots__ = ("nid", "kind", "stmt", "succs", "preds", "function")

    def __init__(self, nid: int, kind: str, stmt: ast.Node | None = None):
        self.nid = nid
        self.kind = kind        # entry | exit | stmt | decl | cond | join
        self.stmt = stmt
        self.succs: list[CFGNode] = []
        self.preds: list[CFGNode] = []
        self.function: str | None = None

    def link(self, succ: "CFGNode") -> None:
        if succ not in self.succs:
            self.succs.append(succ)
            succ.preds.append(self)

    def __repr__(self) -> str:
        what = type(self.stmt).__name__ if self.stmt is not None else ""
        return f"CFGNode#{self.nid}({self.kind}{':' + what if what else ''})"

    def __hash__(self) -> int:
        return self.nid

    def __eq__(self, other) -> bool:
        return self is other


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, function: ast.FunctionDef):
        self.function = function
        self.nodes: list[CFGNode] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self._stmt_map: dict[int, CFGNode] = {}
        # Derived arrays, built once on first use (the graph is immutable
        # after CFGBuilder.build returns): integer successor/predecessor
        # adjacency and a reverse postorder, which the bitset dataflow
        # solvers iterate instead of chasing node objects.
        self._succ_ids: list[list[int]] | None = None
        self._pred_ids: list[list[int]] | None = None
        self._rpo: list[int] | None = None

    def _new(self, kind: str, stmt: ast.Node | None = None) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, stmt)
        node.function = self.function.name
        self.nodes.append(node)
        if stmt is not None:
            self._stmt_map[id(stmt)] = node
        return node

    # ------------------------------------------------- derived fast arrays

    def succ_ids(self) -> list[list[int]]:
        """Successor node ids, indexed by ``nid`` (built once, cached)."""
        if self._succ_ids is None:
            self._succ_ids = [[s.nid for s in n.succs] for n in self.nodes]
        return self._succ_ids

    def pred_ids(self) -> list[list[int]]:
        """Predecessor node ids, indexed by ``nid`` (built once, cached)."""
        if self._pred_ids is None:
            self._pred_ids = [[p.nid for p in n.preds] for n in self.nodes]
        return self._pred_ids

    def rpo(self) -> list[int]:
        """Reverse postorder over ``succ_ids`` from the entry node.

        Nodes unreachable from entry (dead code) are appended in id order
        so dataflow passes iterating this order still visit every node.
        """
        if self._rpo is not None:
            return self._rpo
        succs = self.succ_ids()
        seen = bytearray(len(self.nodes))
        seen[self.entry.nid] = 1
        order: list[int] = []
        frames = [(self.entry.nid, iter(succs[self.entry.nid]))]
        while frames:
            nid, it = frames[-1]
            advanced = False
            for nxt in it:
                if not seen[nxt]:
                    seen[nxt] = 1
                    frames.append((nxt, iter(succs[nxt])))
                    advanced = True
                    break
            if not advanced:
                frames.pop()
                order.append(nid)
        order.reverse()
        order.extend(nid for nid in range(len(self.nodes)) if not seen[nid])
        self._rpo = order
        return order

    def node_for(self, stmt: ast.Node) -> CFGNode | None:
        """CFG node of a statement (or of the statement enclosing a node)."""
        found = self._stmt_map.get(id(stmt))
        if found is not None:
            return found
        enclosing = stmt.enclosing_statement()
        while enclosing is not None:
            found = self._stmt_map.get(id(enclosing))
            if found is not None:
                return found
            enclosing = None if enclosing.parent is None else \
                enclosing.parent.enclosing_statement()
        return None

    def reachable_between(self, src: CFGNode, dst: CFGNode,
                          through: CFGNode) -> bool:
        """Is there a path src -> ... -> dst that visits ``through``?"""
        return self._reaches(src, through) and self._reaches(through, dst)

    def _reaches(self, src: CFGNode, dst: CFGNode) -> bool:
        if src is dst:
            return True
        succs = self.succ_ids()
        target = dst.nid
        seen = bytearray(len(self.nodes))
        seen[src.nid] = 1
        stack = [src.nid]
        while stack:
            for nxt in succs[stack.pop()]:
                if nxt == target:
                    return True
                if not seen[nxt]:
                    seen[nxt] = 1
                    stack.append(nxt)
        return False

    def statements(self) -> Iterator[CFGNode]:
        return (n for n in self.nodes if n.stmt is not None)


class _BuildContext:
    __slots__ = ("break_target", "continue_target")

    def __init__(self, break_target=None, continue_target=None):
        self.break_target = break_target
        self.continue_target = continue_target


class CFGBuilder:
    def __init__(self, function: ast.FunctionDef):
        self.cfg = CFG(function)
        self._labels: dict[str, CFGNode] = {}
        self._pending_gotos: list[tuple[CFGNode, str]] = []

    def build(self) -> CFG:
        cfg = self.cfg
        tails = self._statement(cfg.function.body, [cfg.entry],
                                _BuildContext())
        for tail in tails:
            tail.link(cfg.exit)
        for node, label in self._pending_gotos:
            target = self._labels.get(label)
            if target is not None:
                node.link(target)
            else:
                node.link(cfg.exit)
        return cfg

    # ``frontier`` is the set of nodes whose control falls into the next
    # statement; each handler returns the new frontier.

    def _statement(self, stmt: ast.Node, frontier: list[CFGNode],
                   ctx: _BuildContext) -> list[CFGNode]:
        cfg = self.cfg

        if isinstance(stmt, ast.CompoundStmt):
            for item in stmt.items:
                frontier = self._statement(item, frontier, ctx)
            return frontier

        if isinstance(stmt, ast.Declaration):
            node = cfg._new("decl", stmt)
            self._link_all(frontier, node)
            return [node]

        if isinstance(stmt, (ast.ExprStmt, ast.EmptyStmt)):
            node = cfg._new("stmt", stmt)
            self._link_all(frontier, node)
            return [node]

        if isinstance(stmt, ast.ReturnStmt):
            node = cfg._new("stmt", stmt)
            self._link_all(frontier, node)
            node.link(cfg.exit)
            return []

        if isinstance(stmt, ast.IfStmt):
            cond = cfg._new("cond", stmt)
            self._link_all(frontier, cond)
            then_tails = self._statement(stmt.then_stmt, [cond], ctx)
            if stmt.else_stmt is not None:
                else_tails = self._statement(stmt.else_stmt, [cond], ctx)
                return then_tails + else_tails
            return then_tails + [cond]

        if isinstance(stmt, ast.WhileStmt):
            cond = cfg._new("cond", stmt)
            self._link_all(frontier, cond)
            inner = _BuildContext(break_target=[], continue_target=cond)
            body_tails = self._statement(stmt.body, [cond], inner)
            self._link_all(body_tails, cond)
            return [cond] + inner.break_target

        if isinstance(stmt, ast.DoWhileStmt):
            cond = cfg._new("cond", stmt)
            inner = _BuildContext(break_target=[], continue_target=cond)
            entry_marker = cfg._new("join")
            self._link_all(frontier, entry_marker)
            body_tails = self._statement(stmt.body, [entry_marker], inner)
            self._link_all(body_tails, cond)
            # back edge: cond true -> body entry
            cond.link(entry_marker)
            return [cond] + inner.break_target

        if isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                frontier = self._statement(stmt.init, frontier, ctx)
            cond = cfg._new("cond", stmt)
            self._link_all(frontier, cond)
            advance = cfg._new("stmt", stmt.advance) \
                if stmt.advance is not None else cond
            inner = _BuildContext(break_target=[], continue_target=advance)
            body_tails = self._statement(stmt.body, [cond], inner)
            if stmt.advance is not None:
                self._link_all(body_tails, advance)
                advance.link(cond)
            else:
                self._link_all(body_tails, cond)
            return [cond] + inner.break_target

        if isinstance(stmt, ast.BreakStmt):
            node = cfg._new("stmt", stmt)
            self._link_all(frontier, node)
            if ctx.break_target is not None:
                ctx.break_target.append(node)
            return []

        if isinstance(stmt, ast.ContinueStmt):
            node = cfg._new("stmt", stmt)
            self._link_all(frontier, node)
            if ctx.continue_target is not None:
                node.link(ctx.continue_target)
            return []

        if isinstance(stmt, ast.SwitchStmt):
            cond = cfg._new("cond", stmt)
            self._link_all(frontier, cond)
            inner = _BuildContext(break_target=[],
                                  continue_target=ctx.continue_target)
            tails = self._switch_body(stmt.body, cond, inner)
            return tails + inner.break_target

        if isinstance(stmt, (ast.CaseStmt, ast.DefaultStmt)):
            # Case outside a switch body (or nested oddly): treat the body
            # as a plain statement.
            return self._statement(stmt.body, frontier, ctx)

        if isinstance(stmt, ast.LabelStmt):
            marker = cfg._new("join", stmt)
            self._link_all(frontier, marker)
            self._labels[stmt.name] = marker
            return self._statement(stmt.body, [marker], ctx)

        if isinstance(stmt, ast.GotoStmt):
            node = cfg._new("stmt", stmt)
            self._link_all(frontier, node)
            self._pending_gotos.append((node, stmt.label))
            return []

        # Unknown statement kind: conservative single node.
        node = cfg._new("stmt", stmt)
        self._link_all(frontier, node)
        return [node]

    def _switch_body(self, body: ast.Node, cond: CFGNode,
                     ctx: _BuildContext) -> list[CFGNode]:
        """Build a switch body: each case label gets an edge from the
        switch condition; fallthrough chains cases together."""
        if not isinstance(body, ast.CompoundStmt):
            tails = self._statement(body, [cond], ctx)
            return tails
        frontier: list[CFGNode] = []
        has_default = False
        for item in body.items:
            if isinstance(item, (ast.CaseStmt, ast.DefaultStmt)):
                marker = self.cfg._new("join", item)
                cond.link(marker)
                self._link_all(frontier, marker)
                if isinstance(item, ast.DefaultStmt):
                    has_default = True
                frontier = self._statement(item.body, [marker], ctx)
            else:
                frontier = self._statement(item, frontier, ctx)
        tails = list(frontier)
        if not has_default:
            tails.append(cond)
        return tails

    @staticmethod
    def _link_all(sources: list[CFGNode], target: CFGNode) -> None:
        for src in sources:
            src.link(target)


def build_cfg(function: ast.FunctionDef) -> CFG:
    """Build the control-flow graph of a function definition."""
    return CFGBuilder(function).build()


def build_all_cfgs(unit: ast.TranslationUnit) -> dict[str, CFG]:
    return {fn.name: build_cfg(fn) for fn in unit.functions()}
