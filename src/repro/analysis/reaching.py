"""Reaching-definitions analysis (classic worklist, bitset IN/OUT sets).

Algorithm 1 of the paper asks for *the* definition reaching a buffer
expression; this module computes, at each CFG node, which definitions of
which symbols (and which struct members) may reach it.  Definitions through
pointers or through address-taken arguments are recorded as *weak*: they
generate but do not kill, so a strong unique definition remains
distinguishable — and a use reached by several candidate definitions makes
`GetBufferLength` bail out, exactly as the paper's transformation does.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from .cfg import CFG, CFGNode
from .fastpath import fast_enabled, iter_bits
from .symtab import Symbol


class Definition:
    """One definition site of ``symbol`` (optionally of ``member``)."""

    __slots__ = ("index", "symbol", "member", "node", "cfg_node", "kind",
                 "value")

    def __init__(self, index: int, symbol: Symbol, member: str | None,
                 node: ast.Node | None, cfg_node: CFGNode, kind: str,
                 value: ast.Expression | None):
        self.index = index
        self.symbol = symbol
        self.member = member
        self.node = node            # the Assignment / Declarator / etc.
        self.cfg_node = cfg_node
        self.kind = kind            # direct | decl | weak | param
        self.value = value          # RHS expression when known

    @property
    def is_strong(self) -> bool:
        return self.kind in ("direct", "decl", "param")

    def __repr__(self) -> str:
        member = f".{self.member}" if self.member else ""
        return (f"Def#{self.index}({self.symbol.name}{member}, {self.kind})")


class ReachingDefinitions:
    """Reaching definitions over one function's CFG."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.definitions: list[Definition] = []
        self._defs_by_node: dict[int, list[Definition]] = {}
        self._in: dict[int, int] = {}
        self._out: dict[int, int] = {}
        self._collect()
        self._solve()

    # ------------------------------------------------------------- collect

    def _new_def(self, symbol: Symbol, member: str | None,
                 node: ast.Node | None, cfg_node: CFGNode, kind: str,
                 value: ast.Expression | None) -> Definition:
        definition = Definition(len(self.definitions), symbol, member, node,
                                cfg_node, kind, value)
        self.definitions.append(definition)
        self._defs_by_node.setdefault(cfg_node.nid, []).append(definition)
        return definition

    def _collect(self) -> None:
        # Parameters are definitions at function entry.
        for param in self.cfg.function.params:
            if param.symbol is not None:
                self._new_def(param.symbol, None, param, self.cfg.entry,
                              "param", None)
        for node in self.cfg.nodes:
            if node.stmt is None:
                continue
            self._collect_in_stmt(node.stmt, node)

    def _collect_in_stmt(self, stmt: ast.Node, cfg_node: CFGNode) -> None:
        # Only look at the *direct* expression content of this node; nested
        # statements have their own CFG nodes.
        for expr in _direct_expressions(stmt):
            self._collect_in_expr(expr, cfg_node)
        if isinstance(stmt, ast.Declaration):
            for declarator in stmt.declarators:
                if declarator.symbol is not None:
                    self._new_def(declarator.symbol, None, declarator,
                                  cfg_node, "decl", declarator.init)
                if declarator.init is not None:
                    self._collect_in_expr(declarator.init, cfg_node)

    def _collect_in_expr(self, expr: ast.Node, cfg_node: CFGNode) -> None:
        for node in expr.walk():
            if isinstance(node, ast.Assignment):
                self._record_store(node.lhs, node, cfg_node,
                                   node.rhs if node.op == "=" else None)
            elif isinstance(node, ast.Unary) and node.op in ("++", "--"):
                self._record_store(node.operand, node, cfg_node, None)
            elif isinstance(node, ast.Call):
                self._record_call_effects(node, cfg_node)

    def _record_store(self, lhs: ast.Node, site: ast.Node,
                      cfg_node: CFGNode,
                      value: ast.Expression | None) -> None:
        if isinstance(lhs, ast.Identifier) and lhs.symbol is not None:
            self._new_def(lhs.symbol, None, site, cfg_node, "direct", value)
        elif isinstance(lhs, ast.FieldAccess):
            base = lhs.base
            if isinstance(base, ast.Identifier) and base.symbol is not None:
                self._new_def(base.symbol, lhs.member, site, cfg_node,
                              "direct", value)
            else:
                self._record_weak_target(base, site, cfg_node)
        elif isinstance(lhs, ast.ArrayAccess):
            base = lhs.base
            if isinstance(base, ast.Identifier) and \
                    base.symbol is not None and \
                    base.symbol.ctype is not None and \
                    base.symbol.ctype.is_array:
                # Element store into an array: weak def of the aggregate.
                # A store through a *pointer* (p[i] = x) modifies the
                # pointee, never the pointer value itself, so it defines
                # nothing that reaching-definitions tracks.
                self._new_def(base.symbol, None, site, cfg_node, "weak",
                              None)
        elif isinstance(lhs, ast.Unary) and lhs.op == "*":
            # *p = x: likewise, p's own value is unchanged.
            pass

    def _record_weak_target(self, expr: ast.Node, site: ast.Node,
                            cfg_node: CFGNode) -> None:
        for node in expr.walk():
            if isinstance(node, ast.Identifier) and node.symbol is not None:
                self._new_def(node.symbol, None, site, cfg_node, "weak",
                              None)

    def _record_call_effects(self, call: ast.Call,
                             cfg_node: CFGNode) -> None:
        # &x passed to a call may define x; x passed as pointer may define
        # what x points to, not x itself — only address-of is recorded.
        for arg in call.args:
            if isinstance(arg, ast.Unary) and arg.op == "&" and \
                    isinstance(arg.operand, ast.Identifier) and \
                    arg.operand.symbol is not None:
                self._new_def(arg.operand.symbol, None, call, cfg_node,
                              "weak", None)

    # --------------------------------------------------------------- solve

    def _solve(self) -> None:
        gen: dict[int, int] = {}
        kill: dict[int, int] = {}
        # Pre-index defs per (symbol, member) for kill computation.
        by_target: dict[tuple[int, str | None], int] = {}
        whole_of_symbol: dict[int, int] = {}
        for definition in self.definitions:
            key = (definition.symbol.uid, definition.member)
            by_target[key] = by_target.get(key, 0) | (1 << definition.index)
            whole_of_symbol[definition.symbol.uid] = \
                whole_of_symbol.get(definition.symbol.uid, 0) | \
                (1 << definition.index)

        for node in self.cfg.nodes:
            g = 0
            k = 0
            for definition in self._defs_by_node.get(node.nid, ()):
                g |= 1 << definition.index
                if not definition.is_strong:
                    continue
                if definition.member is None:
                    # Whole-object def kills every def of the symbol.
                    k |= whole_of_symbol.get(definition.symbol.uid, 0)
                else:
                    k |= by_target.get(
                        (definition.symbol.uid, definition.member), 0)
            gen[node.nid] = g
            kill[node.nid] = k & ~g

        if fast_enabled():
            self._iterate_rpo(gen, kill)
        else:
            self._iterate_worklist(gen, kill)

    def _iterate_worklist(self, gen: dict[int, int],
                          kill: dict[int, int]) -> None:
        """Reference fixpoint loop: unordered worklist over node objects."""
        in_sets = {node.nid: 0 for node in self.cfg.nodes}
        out_sets = {node.nid: gen[node.nid] for node in self.cfg.nodes}
        worklist = list(self.cfg.nodes)
        while worklist:
            node = worklist.pop()
            new_in = 0
            for pred in node.preds:
                new_in |= out_sets[pred.nid]
            new_out = gen[node.nid] | (new_in & ~kill[node.nid])
            if new_in != in_sets[node.nid] or new_out != out_sets[node.nid]:
                in_sets[node.nid] = new_in
                out_sets[node.nid] = new_out
                worklist.extend(node.succs)
        self._in = in_sets
        self._out = out_sets

    def _iterate_rpo(self, gen: dict[int, int],
                     kill: dict[int, int]) -> None:
        """Fast fixpoint loop: reverse-postorder sweeps over int arrays.

        A forward problem iterated in RPO converges in loop-depth + 2
        sweeps; with IN/OUT as plain ints indexed by ``nid`` each sweep
        is a handful of integer ops per node.  Same equations, same
        initialization, hence the same (unique) least fixpoint as the
        reference loop.
        """
        cfg = self.cfg
        n = len(cfg.nodes)
        preds = cfg.pred_ids()
        order = cfg.rpo()
        gen_a = [gen[i] for i in range(n)]
        kill_a = [kill[i] for i in range(n)]
        in_a = [0] * n
        out_a = gen_a[:]
        changed = True
        while changed:
            changed = False
            for nid in order:
                new_in = 0
                for pred in preds[nid]:
                    new_in |= out_a[pred]
                if new_in == in_a[nid]:
                    continue
                in_a[nid] = new_in
                new_out = gen_a[nid] | (new_in & ~kill_a[nid])
                if new_out != out_a[nid]:
                    out_a[nid] = new_out
                    changed = True
        self._in = {nid: in_a[nid] for nid in range(n)}
        self._out = {nid: out_a[nid] for nid in range(n)}

    # ----------------------------------------------------------------- API

    def reaching_in(self, cfg_node: CFGNode) -> list[Definition]:
        bits = self._in.get(cfg_node.nid, 0)
        return self._from_bits(bits)

    def defs_reaching(self, use_site: ast.Node, symbol: Symbol,
                      member: str | None = None) -> list[Definition]:
        """Definitions of ``symbol`` (``member``) reaching ``use_site``.

        ``use_site`` is any AST node; its enclosing statement's CFG node
        provides the IN set.  A member query also returns whole-object
        definitions of the symbol, since those redefine the member too.
        """
        cfg_node = self.cfg.node_for(use_site)
        if cfg_node is None:
            return [d for d in self.definitions if d.symbol is symbol]
        bits = self._in[cfg_node.nid]
        # Definitions in the *same* statement that appear before the use
        # also reach it (e.g. `p = malloc(n); use in next stmt` is IN, but
        # `len = f(); memcpy(p, q, len)` keeps len's def in a prior node).
        out = []
        for definition in self._from_bits(bits):
            if definition.symbol is not symbol:
                continue
            if member is not None and definition.member not in (None,
                                                                member):
                continue
            if member is None and definition.member is not None:
                continue
            out.append(definition)
        return out

    def unique_strong_def(self, use_site: ast.Node, symbol: Symbol,
                          member: str | None = None) -> Definition | None:
        """The single strong definition reaching a use, if it is unique and
        unchallenged by weak definitions; else None (the caller bails)."""
        defs = self.defs_reaching(use_site, symbol, member)
        strong = [d for d in defs if d.is_strong and d.kind != "param"]
        weak = [d for d in defs if not d.is_strong]
        if len(strong) == 1 and not weak:
            return strong[0]
        # A declaration + exactly one assignment: the assignment wins if
        # the declaration had no initializer.
        if len(strong) == 2 and not weak:
            decls = [d for d in strong if d.kind == "decl"
                     and (d.value is None)]
            others = [d for d in strong if d not in decls]
            if len(decls) == 1 and len(others) == 1:
                return others[0]
        return None

    def _from_bits(self, bits: int) -> list[Definition]:
        definitions = self.definitions
        return [definitions[index] for index in iter_bits(bits)]


def _direct_expressions(stmt: ast.Node):
    """Expressions evaluated *at* this statement's CFG node (not nested
    statements)."""
    if isinstance(stmt, ast.ExprStmt):
        if stmt.expr is not None:
            yield stmt.expr
    elif isinstance(stmt, (ast.IfStmt, ast.WhileStmt, ast.DoWhileStmt,
                           ast.SwitchStmt)):
        yield stmt.cond
    elif isinstance(stmt, ast.ForStmt):
        if stmt.cond is not None:
            yield stmt.cond
    elif isinstance(stmt, ast.ReturnStmt):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ast.CaseStmt):
        yield stmt.value
    elif isinstance(stmt, ast.Expression):
        yield stmt         # e.g. a for-advance expression node
