"""Inclusion-based (Andersen-style) points-to analysis.

Follows the paper's description of its analysis (§III-A): intra-procedural,
flow-insensitive, inclusion-based, performed at source level, after
Hardekopf's algorithm.  The *constraint generator* walks the AST and emits
base constraints; arrays and structures are *aggregate nodes* (no shape
analysis); the solver propagates over the constraint graph with online
cycle collapsing (the "graph rewriting" step), and the alias generator
(:mod:`repro.analysis.alias`) derives alias sets from the solved graph.

Calls are not propagated through (intra-procedural); a call returning a
pointer yields a fresh anonymous object per call site, and pointer arguments
to unknown callees mark their targets as escaped.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from ..cfront.ctypes_model import ArrayType, PointerType, StructType
from .fastpath import fast_enabled, strongly_connected_components
from .symtab import Symbol, SymbolTable

# malloc-family functions: calls to these create heap objects.
HEAP_ALLOCATORS = frozenset({
    "malloc", "calloc", "realloc", "alloca", "strdup",
})


class PTNode:
    """A node in the points-to graph: a variable, heap object, or anon."""

    __slots__ = ("index", "kind", "symbol", "label", "pts", "copy_out",
                 "rep")

    def __init__(self, index: int, kind: str, symbol: Symbol | None,
                 label: str):
        self.index = index
        self.kind = kind        # var | obj | heap | anon
        self.symbol = symbol
        self.label = label
        self.pts: set[int] = set()
        self.copy_out: set[int] = set()     # inclusion edges: self ⊆ target
        self.rep = index        # union-find representative

    def __repr__(self) -> str:
        return f"PTNode#{self.index}({self.kind}:{self.label})"


class _Constraint:
    __slots__ = ("kind", "lhs", "rhs")

    def __init__(self, kind: str, lhs: int, rhs: int):
        self.kind = kind        # addr | copy | load | store
        self.lhs = lhs
        self.rhs = rhs


class PointsToAnalysis:
    """Constraint generation + solving for one translation unit."""

    def __init__(self, unit: ast.TranslationUnit, table: SymbolTable,
                 *, collapse_cycles: bool = True,
                 fast: bool | None = None):
        self.unit = unit
        self.table = table
        # Ablation switch: disable the Hardekopf-style online cycle
        # collapsing (graph rewriting) to measure its effect.
        self.collapse_cycles = collapse_cycles
        self.nodes: list[PTNode] = []
        self._var_node: dict[int, int] = {}     # symbol uid -> node index
        self._obj_node: dict[int, int] = {}     # symbol uid -> object node
        # (id(ast node), kind) -> node index
        self._site_node: dict[tuple[int, str], int] = {}
        self.constraints: list[_Constraint] = []
        self.escaped: set[int] = set()          # object nodes that escape
        self._generate()
        if fast if fast is not None else fast_enabled():
            self._solve_fast()
        else:
            self._solve()

    # --------------------------------------------------------------- nodes

    def _new_node(self, kind: str, symbol: Symbol | None,
                  label: str) -> PTNode:
        node = PTNode(len(self.nodes), kind, symbol, label)
        self.nodes.append(node)
        return node

    def var(self, symbol: Symbol) -> int:
        """Pointer-variable node of a symbol."""
        found = self._var_node.get(symbol.uid)
        if found is None:
            found = self._new_node("var", symbol, symbol.name).index
            self._var_node[symbol.uid] = found
        return found

    def obj(self, symbol: Symbol) -> int:
        """Storage-object node of a symbol.

        Arrays and structs get a distinct aggregate node; for scalar
        variables (including pointers) the storage *is* the variable node,
        so that ``*pp = y`` after ``pp = &p`` flows into ``p``'s points-to
        set (standard Andersen treatment).
        """
        if not isinstance(symbol.ctype, (ArrayType, StructType)):
            return self.var(symbol)
        found = self._obj_node.get(symbol.uid)
        if found is None:
            found = self._new_node("obj", symbol,
                                   f"obj:{symbol.name}").index
            self._obj_node[symbol.uid] = found
        return found

    def _heap(self, site: ast.Node, label: str) -> int:
        key = (id(site), "heap")
        found = self._site_node.get(key)
        if found is None:
            found = self._new_node("heap", None, label).index
            self._site_node[key] = found
        return found

    def _anon(self, site: ast.Node, label: str) -> int:
        key = (id(site), "anon")
        found = self._site_node.get(key)
        if found is None:
            found = self._new_node("anon", None, label).index
            self._site_node[key] = found
        return found

    # ----------------------------------------------------------- generation

    def _generate(self) -> None:
        for item in self.unit.items:
            if isinstance(item, ast.FunctionDef):
                for node in item.body.walk():
                    self._constraints_for(node)
            elif isinstance(item, ast.Declaration):
                for declarator in item.declarators:
                    if declarator.symbol is not None and \
                            declarator.init is not None:
                        self._assign(self._lvalue_node(declarator.symbol),
                                     declarator.init)

    def _constraints_for(self, node: ast.Node) -> None:
        if isinstance(node, ast.Declaration):
            for declarator in node.declarators:
                if declarator.symbol is None or declarator.init is None:
                    continue
                if isinstance(declarator.init, ast.InitList):
                    for item in declarator.init.items:
                        self._escape_expr(item)
                    continue
                self._assign(self._lvalue_node(declarator.symbol),
                             declarator.init)
        elif isinstance(node, ast.Assignment) and node.op == "=":
            target = self._lvalue_target(node.lhs)
            if target is not None:
                kind, idx = target
                if kind == "node":
                    self._assign(idx, node.rhs)
                else:       # store through pointer: *p = rhs
                    rhs_idx = self._rvalue_node(node.rhs)
                    if rhs_idx is not None:
                        self.constraints.append(
                            _Constraint("store", idx, rhs_idx))
        elif isinstance(node, ast.Call):
            self._call_constraints(node)

    def _assign(self, lhs_idx: int, rhs: ast.Expression) -> None:
        rhs_idx = self._rvalue_node(rhs)
        if rhs_idx is not None:
            self.constraints.append(_Constraint("copy", lhs_idx, rhs_idx))

    def _lvalue_node(self, symbol: Symbol) -> int:
        return self.var(symbol)

    def _lvalue_target(self, lhs: ast.Node):
        """Classify an assignment target.

        Returns ("node", idx) for a direct variable/aggregate, or
        ("deref", idx) for a store through the pointer at node idx, or
        None when untracked.
        """
        if isinstance(lhs, ast.Identifier) and lhs.symbol is not None:
            return ("node", self.var(lhs.symbol))
        if isinstance(lhs, ast.FieldAccess):
            base = lhs.base
            if lhs.arrow:
                if isinstance(base, ast.Identifier) and \
                        base.symbol is not None:
                    return ("deref", self.var(base.symbol))
                return None
            # s.f = ... : the aggregate node of s stands for all members.
            if isinstance(base, ast.Identifier) and base.symbol is not None:
                return ("node", self.obj_field_node(base.symbol))
            return None
        if isinstance(lhs, ast.ArrayAccess):
            base = lhs.base
            if isinstance(base, ast.Identifier) and base.symbol is not None:
                ctype = base.symbol.ctype
                if isinstance(ctype, ArrayType):
                    return ("node", self.obj(base.symbol))
                return ("deref", self.var(base.symbol))
            return None
        if isinstance(lhs, ast.Unary) and lhs.op == "*":
            inner = _strip_casts(lhs.operand)
            if isinstance(inner, ast.Identifier) and inner.symbol is not None:
                return ("deref", self.var(inner.symbol))
            return None
        return None

    def obj_field_node(self, symbol: Symbol) -> int:
        """Struct member lvalues collapse onto the aggregate object node
        when the variable is a struct, else onto the variable node."""
        if isinstance(symbol.ctype, StructType):
            return self.obj(symbol)
        return self.var(symbol)

    def _rvalue_node(self, expr: ast.Expression) -> int | None:
        expr = _strip_casts(expr)
        if isinstance(expr, ast.Identifier) and expr.symbol is not None:
            ctype = expr.symbol.ctype
            if isinstance(ctype, ArrayType):
                # Array decays to the address of its aggregate object: the
                # rvalue is a fresh "address-of obj" pseudo node.
                addr = self._anon(expr, f"&{expr.symbol.name}")
                self.nodes[addr].pts.add(self.obj(expr.symbol))
                return addr
            return self.var(expr.symbol)
        if isinstance(expr, ast.Unary) and expr.op == "&":
            inner = _strip_casts(expr.operand)
            if isinstance(inner, ast.Identifier) and \
                    inner.symbol is not None:
                addr = self._anon(expr, f"&{inner.name}")
                self.nodes[addr].pts.add(self.obj(inner.symbol))
                return addr
            if isinstance(inner, (ast.ArrayAccess, ast.FieldAccess)):
                base = _innermost_identifier(inner)
                if base is not None and base.symbol is not None:
                    addr = self._anon(expr, f"&{base.name}[]")
                    self.nodes[addr].pts.add(self.obj(base.symbol))
                    return addr
            return None
        if isinstance(expr, ast.Unary) and expr.op == "*":
            inner = _strip_casts(expr.operand)
            if isinstance(inner, ast.Identifier) and \
                    inner.symbol is not None:
                load = self._anon(expr, f"*{inner.name}")
                self.constraints.append(
                    _Constraint("load", load, self.var(inner.symbol)))
                return load
            return None
        if isinstance(expr, ast.Unary) and expr.op in ("++", "--"):
            return self._rvalue_node(expr.operand)
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            # Pointer arithmetic: the result points into the same object.
            lhs = self._rvalue_node(expr.lhs)
            if lhs is not None:
                return lhs
            return self._rvalue_node(expr.rhs)
        if isinstance(expr, ast.Conditional):
            # Both arms may flow: make a join node.
            join = self._anon(expr, "?:")
            for arm in (expr.then_expr, expr.else_expr):
                arm_idx = self._rvalue_node(arm)
                if arm_idx is not None:
                    self.constraints.append(_Constraint("copy", join,
                                                        arm_idx))
            return join
        if isinstance(expr, ast.Call):
            name = expr.callee_name
            if name in HEAP_ALLOCATORS:
                addr = self._anon(expr, f"&heap@{expr.extent.start}")
                self.nodes[addr].pts.add(
                    self._heap(expr, f"heap@{expr.extent.start}"))
                return addr
            # Unknown call returning a pointer: fresh anonymous object.
            addr = self._anon(expr, f"&ret@{expr.extent.start}")
            ret_obj = self._new_node("anon",
                                     None, f"ret@{expr.extent.start}").index
            self.nodes[addr].pts.add(ret_obj)
            return addr
        if isinstance(expr, ast.FieldAccess):
            base = _innermost_identifier(expr)
            if base is not None and base.symbol is not None and \
                    isinstance(base.symbol.ctype, StructType):
                # Loading a pointer member: modelled via aggregate node.
                load = self._anon(expr, f"{base.name}.{expr.member}")
                self.constraints.append(
                    _Constraint("copy", load, self.obj(base.symbol)))
                return load
            return None
        if isinstance(expr, ast.StringLiteral):
            addr = self._anon(expr, f"&str@{expr.extent.start}")
            self.nodes[addr].pts.add(
                self._heap(expr, f"str@{expr.extent.start}"))
            return addr
        return None

    def _call_constraints(self, call: ast.Call) -> None:
        for arg in call.args:
            self._escape_expr(arg)

    def _escape_expr(self, arg: ast.Expression) -> None:
        arg = _strip_casts(arg)
        if isinstance(arg, ast.Unary) and arg.op == "&":
            inner = _strip_casts(arg.operand)
            base = inner if isinstance(inner, ast.Identifier) \
                else _innermost_identifier(inner)
            if isinstance(base, ast.Identifier) and base.symbol is not None:
                self.escaped.add(self.obj(base.symbol))

    # -------------------------------------------------------------- solving

    def _solve(self) -> None:
        # Seed: addr constraints became direct pts entries during
        # generation.  Build initial copy edges.
        copy_edges: dict[int, set[int]] = {}
        loads: list[_Constraint] = []
        stores: list[_Constraint] = []
        for con in self.constraints:
            if con.kind == "copy":
                copy_edges.setdefault(con.rhs, set()).add(con.lhs)
            elif con.kind == "load":
                loads.append(con)
            elif con.kind == "store":
                stores.append(con)

        for src, targets in copy_edges.items():
            self.nodes[src].copy_out |= targets

        if self.collapse_cycles:
            self._collapse_cycles()

        # Worklist propagation with dereference constraints re-examined as
        # points-to sets grow.  A load/store processed against a target
        # records the induced flow edge in ``deref_out`` so that when the
        # *target's* set later grows, the growth still reaches the
        # dereference's destination — without this the solver stops short
        # of the least fixpoint whenever a pointee's set grows after the
        # pointer node's last visit (order-dependent under-approximation).
        deref_out: dict[int, set[int]] = {}
        worklist = [n.index for n in self.nodes if n.pts]
        in_list = set(worklist)
        iterations = 0
        while worklist:
            iterations += 1
            if self.collapse_cycles and iterations % 4096 == 0:
                self._collapse_cycles()
            idx = self._find(worklist.pop())
            in_list.discard(idx)
            node = self.nodes[idx]
            # Dereference constraints involving this node.
            for con in loads:
                if self._find(con.rhs) == idx:
                    lhs = self._find(con.lhs)
                    for target in list(node.pts):
                        tgt_idx = self._find(target)
                        tgt = self.nodes[tgt_idx]
                        deref_out.setdefault(tgt_idx, set()).add(lhs)
                        if not tgt.pts <= self.nodes[lhs].pts:
                            self.nodes[lhs].pts |= tgt.pts
                            if lhs not in in_list:
                                worklist.append(lhs)
                                in_list.add(lhs)
            for con in stores:
                if self._find(con.lhs) == idx:
                    rhs = self._find(con.rhs)
                    rhs_pts = self.nodes[rhs].pts
                    for target in list(node.pts):
                        tgt = self._find(target)
                        deref_out.setdefault(rhs, set()).add(tgt)
                        if not rhs_pts <= self.nodes[tgt].pts:
                            self.nodes[tgt].pts |= rhs_pts
                            if tgt not in in_list:
                                worklist.append(tgt)
                                in_list.add(tgt)
            # Copy edges, plus the recorded dereference-induced flows.
            for succ_raw in list(node.copy_out) + \
                    sorted(deref_out.get(idx, ())):
                succ = self._find(succ_raw)
                if succ == idx:
                    continue
                if not node.pts <= self.nodes[succ].pts:
                    self.nodes[succ].pts |= node.pts
                    if succ not in in_list:
                        worklist.append(succ)
                        in_list.add(succ)

    def _collapse_cycles(self) -> None:
        """Online cycle elimination: SCCs in the copy graph are collapsed
        onto a representative (the points-to graph rewriting step)."""
        import networkx as nx
        graph = nx.DiGraph()
        graph.add_nodes_from(self._find(n.index) for n in self.nodes)
        for node in self.nodes:
            src = self._find(node.index)
            for dst_raw in node.copy_out:
                dst = self._find(dst_raw)
                if src != dst:
                    graph.add_edge(src, dst)
        for scc in nx.strongly_connected_components(graph):
            if len(scc) <= 1:
                continue
            members = sorted(scc)
            rep = members[0]
            rep_node = self.nodes[rep]
            for other in members[1:]:
                other_node = self.nodes[other]
                rep_node.pts |= other_node.pts
                rep_node.copy_out |= other_node.copy_out
                other_node.rep = rep
                other_node.pts = rep_node.pts       # share the set
                other_node.copy_out = set()

    def _find(self, idx: int) -> int:
        node = self.nodes[idx]
        while node.rep != node.index:
            node = self.nodes[node.rep]
        # Path compression.
        self.nodes[idx].rep = node.index
        return node.index

    # ------------------------------------------------------- fast solver

    def _solve_fast(self) -> None:
        """Difference-propagation worklist solver with SCC collapsing.

        Same observable results as :meth:`_solve`, near-linear instead of
        quadratic:

        * **Cycle collapsing** runs an iterative Tarjan/Nuutila pass over
          the copy-constraint graph (the only graph whose cycles the
          reference solver ever collapses — dereference flows are
          propagated, not materialized as collapsible edges), merging
          each SCC onto its minimum-index member exactly as the reference
          solver does, without building a networkx graph per solve.
        * **Difference propagation**: each node carries a delta of
          points-to entries not yet pushed to its successors; a worklist
          pop propagates only the delta, and load/store constraints are
          indexed by their pointer node so a pop touches just its own
          dereference constraints instead of scanning every one.
          Dereference-induced flows materialize as explicit edges the
          first time a target appears, so later deltas ride the same
          cheap copy-edge path.
        """
        nodes = self.nodes
        loads_of: dict[int, list[int]] = {}     # ptr -> load destinations
        stores_of: dict[int, list[int]] = {}    # ptr -> store sources
        for con in self.constraints:
            if con.kind == "copy":
                nodes[con.rhs].copy_out.add(con.lhs)
            elif con.kind == "load":
                loads_of.setdefault(con.rhs, []).append(con.lhs)
            else:                               # store
                stores_of.setdefault(con.lhs, []).append(con.rhs)

        if self.collapse_cycles:
            self._collapse_cycles_fast()
        find = self._find

        # Re-key dereference constraints by representative.
        def _rekey(table: dict[int, list[int]]) -> dict[int, list[int]]:
            out: dict[int, list[int]] = {}
            for ptr, targets in table.items():
                out.setdefault(find(ptr), []).extend(targets)
            return out

        loads_of = _rekey(loads_of)
        stores_of = _rekey(stores_of)

        # Per-representative state: solved set lives in node.pts; delta
        # holds entries not yet propagated; extra_out holds materialized
        # dereference edges (kept apart from copy_out, whose cycles alone
        # are collapsible).
        delta: dict[int, set[int]] = {}
        extra_out: dict[int, set[int]] = {}
        worklist: list[int] = []
        in_list: set[int] = set()
        for node in nodes:
            rep = find(node.index)
            if node.pts and rep not in in_list:
                worklist.append(rep)
                in_list.add(rep)
                delta[rep] = set(nodes[rep].pts)

        def push(target: int, new: set[int]) -> None:
            """Add ``new`` points-to entries to a representative node."""
            tgt_node = nodes[target]
            fresh = new - tgt_node.pts
            if not fresh:
                return
            tgt_node.pts |= fresh
            pending = delta.get(target)
            if pending is None:
                delta[target] = set(fresh)
            else:
                pending |= fresh
            if target not in in_list:
                worklist.append(target)
                in_list.add(target)

        def edge(src: int, dst: int) -> None:
            """Materialize a dereference-induced flow src -> dst."""
            if src == dst:
                return
            out = extra_out.get(src)
            if out is None:
                extra_out[src] = {dst}
            elif dst in out:
                return
            else:
                out.add(dst)
            src_pts = nodes[src].pts
            if src_pts:
                push(dst, src_pts)

        while worklist:
            idx = worklist.pop()
            in_list.discard(idx)
            d = delta.get(idx)
            if not d:
                continue
            delta[idx] = set()
            node = nodes[idx]
            for dst in loads_of.get(idx, ()):
                dst_rep = find(dst)
                for target in d:
                    edge(find(target), dst_rep)
            for src in stores_of.get(idx, ()):
                src_rep = find(src)
                for target in d:
                    edge(src_rep, find(target))
            for succ_raw in node.copy_out:
                succ = find(succ_raw)
                if succ != idx:
                    push(succ, d)
            for succ in extra_out.get(idx, ()):
                if succ != idx:
                    push(succ, d)

    def _collapse_cycles_fast(self) -> None:
        """Iterative SCC collapse over the copy-constraint graph.

        Merges exactly the cycles :meth:`_collapse_cycles` merges (the
        copy graph never grows during solving, so collapsing it up front
        equals the reference solver's collapse-at-start-and-periodically
        schedule), onto the same minimum-index representative.
        """
        nodes = self.nodes

        def successors(idx: int):
            src = self._find(idx)
            for dst_raw in nodes[src].copy_out:
                dst = self._find(dst_raw)
                if dst != src:
                    yield dst

        for scc in strongly_connected_components(len(nodes), successors):
            rep = scc[0]
            rep_node = nodes[rep]
            for other in scc[1:]:
                other_node = nodes[other]
                rep_node.pts |= other_node.pts
                rep_node.copy_out |= other_node.copy_out
                other_node.rep = rep
                other_node.pts = rep_node.pts       # share the set
                other_node.copy_out = set()

    # ------------------------------------------------------------------ API

    def points_to(self, symbol: Symbol) -> list[PTNode]:
        """Target nodes of a pointer symbol, ordered by node index.

        Returned sorted (not as a raw set) so every downstream iteration
        — alias grouping, reports, cache keys — is stable under
        ``PYTHONHASHSEED`` randomization.
        """
        idx = self._var_node.get(symbol.uid)
        if idx is None:
            return []
        rep = self.nodes[self._find(idx)]
        targets = {self._find(t) for t in rep.pts}
        return [self.nodes[t] for t in sorted(targets)]

    def object_node(self, symbol: Symbol) -> PTNode | None:
        if not isinstance(symbol.ctype, (ArrayType, StructType)):
            idx = self._var_node.get(symbol.uid)
        else:
            idx = self._obj_node.get(symbol.uid)
        return None if idx is None else self.nodes[self._find(idx)]

    def pointer_symbols(self) -> list[Symbol]:
        return [n.symbol for n in self.nodes
                if n.kind == "var" and n.symbol is not None]


def _strip_casts(expr: ast.Node) -> ast.Node:
    while isinstance(expr, ast.Cast):
        expr = expr.operand
    return expr


def _innermost_identifier(expr: ast.Node) -> ast.Identifier | None:
    while True:
        if isinstance(expr, ast.Identifier):
            return expr
        if isinstance(expr, (ast.ArrayAccess, ast.FieldAccess)):
            expr = expr.base
        elif isinstance(expr, ast.Unary):
            expr = expr.operand
        elif isinstance(expr, ast.Cast):
            expr = expr.operand
        else:
            return None
