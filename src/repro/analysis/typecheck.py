"""Type analysis: annotate every expression with its C type.

Runs after name binding.  Algorithm 1 of the paper branches on
``TYPE(B) is ArrayType`` / ``TYPE(B) is PointerType``; those questions are
answered from the ``ctype`` attribute this pass fills in.

The checker is deliberately permissive (legacy C is full of sloppy
conversions): when it cannot type an expression it assigns ``int`` rather
than failing, but it records a diagnostic so tests can assert on clean
programs.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from ..cfront.ctypes_model import (
    ArrayType, BOOL, CHAR, CHAR_PTR, CType, DOUBLE, EnumType, FloatType,
    FunctionType, INT, IntType, LONG, PointerType, SIZE_T, StructType,
    ULONG, VOID, VaListType, VOID_PTR, usual_arithmetic_conversions,
)


class TypeDiagnostic:
    def __init__(self, message: str, node: ast.Node):
        self.message = message
        self.node = node

    def __repr__(self) -> str:
        return f"TypeDiagnostic({self.message!r})"


class TypeChecker:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.diagnostics: list[TypeDiagnostic] = []

    def run(self) -> list[TypeDiagnostic]:
        for node in self.unit.walk():
            if isinstance(node, ast.FunctionDef):
                self._check_function(node)
                continue
        # Global initializers.
        for item in self.unit.items:
            if isinstance(item, ast.Declaration):
                for declarator in item.declarators:
                    if declarator.init is not None:
                        self._type_of(declarator.init)
        return self.diagnostics

    def _check_function(self, fn: ast.FunctionDef) -> None:
        for node in fn.body.walk():
            if isinstance(node, ast.Expression) and node.ctype is None:
                self._type_of(node)

    def _diag(self, message: str, node: ast.Node) -> None:
        self.diagnostics.append(TypeDiagnostic(message, node))

    # ------------------------------------------------------------- typing

    def _type_of(self, expr: ast.Expression) -> CType:
        if expr.ctype is not None:
            return expr.ctype
        ctype = self._compute(expr)
        expr.ctype = ctype
        return ctype

    def _compute(self, expr: ast.Expression) -> CType:
        if isinstance(expr, ast.IntLiteral):
            text = expr.text.lower()
            unsigned = "u" in text.split("x")[-1] if "x" in text \
                else "u" in text
            longish = expr.value > 0x7FFFFFFF or "l" in text.lstrip("0x")
            if longish:
                return ULONG if unsigned else LONG
            return IntType("int", signed=not unsigned)
        if isinstance(expr, ast.FloatLiteral):
            return DOUBLE
        if isinstance(expr, ast.CharLiteral):
            return INT         # char constants have type int in C
        if isinstance(expr, ast.StringLiteral):
            return ArrayType(CHAR, len(expr.value) + 1)
        if isinstance(expr, ast.Identifier):
            if expr.symbol is not None:
                return expr.symbol.ctype
            self._diag(f"use of unbound identifier {expr.name!r}", expr)
            return INT
        if isinstance(expr, ast.ArrayAccess):
            base = self._type_of(expr.base)
            self._type_of(expr.index)
            base = base.decay() if base.is_array else base
            if isinstance(base, PointerType):
                return base.pointee
            # index[array] form
            idx_t = expr.index.ctype
            if idx_t is not None and idx_t.is_array:
                return idx_t.element
            if idx_t is not None and idx_t.is_pointer:
                return idx_t.pointee
            self._diag("subscript of non-pointer", expr)
            return INT
        if isinstance(expr, ast.FieldAccess):
            base = self._type_of(expr.base)
            target = base
            if expr.arrow:
                if isinstance(base, PointerType):
                    target = base.pointee
                elif isinstance(base, ArrayType):
                    target = base.element
                else:
                    self._diag("-> on non-pointer", expr)
                    return INT
            if isinstance(target, StructType) and target.is_complete:
                try:
                    return target.member_type(expr.member)
                except KeyError:
                    self._diag(f"no member {expr.member!r} in {target}",
                               expr)
                    return INT
            self._diag(f"member access on non-struct {target}", expr)
            return INT
        if isinstance(expr, ast.Call):
            fn_type = self._callee_type(expr)
            for arg in expr.args:
                self._type_of(arg)
            if isinstance(fn_type, FunctionType):
                return fn_type.return_type
            return INT
        if isinstance(expr, ast.Unary):
            return self._unary_type(expr)
        if isinstance(expr, ast.Binary):
            return self._binary_type(expr)
        if isinstance(expr, ast.Assignment):
            lhs = self._type_of(expr.lhs)
            self._type_of(expr.rhs)
            return lhs.decay() if lhs.is_array else lhs
        if isinstance(expr, ast.Conditional):
            self._type_of(expr.cond)
            then_t = self._type_of(expr.then_expr)
            else_t = self._type_of(expr.else_expr)
            if then_t.is_arithmetic and else_t.is_arithmetic:
                return usual_arithmetic_conversions(then_t, else_t)
            then_d = then_t.decay()
            if then_d.is_pointer:
                return then_d
            return else_t.decay()
        if isinstance(expr, ast.Cast):
            self._type_of(expr.operand)
            return expr.target_type
        if isinstance(expr, (ast.SizeofExpr, ast.SizeofType)):
            if isinstance(expr, ast.SizeofExpr):
                self._type_of(expr.operand)
            return SIZE_T
        if isinstance(expr, ast.Comma):
            self._type_of(expr.lhs)
            return self._type_of(expr.rhs)
        if isinstance(expr, ast.InitList):
            for item in expr.items:
                self._type_of(item)
            return INT
        if isinstance(expr, ast.VaArg):
            self._type_of(expr.ap)
            return expr.target_type
        self._diag(f"cannot type {type(expr).__name__}", expr)
        return INT

    def _callee_type(self, call: ast.Call) -> CType:
        func = call.func
        fn_type = self._type_of(func)
        if isinstance(fn_type, PointerType) and \
                isinstance(fn_type.pointee, FunctionType):
            return fn_type.pointee
        return fn_type

    def _unary_type(self, expr: ast.Unary) -> CType:
        operand = self._type_of(expr.operand)
        op = expr.op
        if op == "&":
            if operand.is_array:
                # &arr has type T(*)[N]; modelled as pointer-to-element
                # aggregate, adequate for the analyses we run.
                return PointerType(operand)
            return PointerType(operand)
        if op == "*":
            decayed = operand.decay()
            if isinstance(decayed, PointerType):
                return decayed.pointee
            self._diag("dereference of non-pointer", expr)
            return INT
        if op == "!":
            return INT
        if op == "~":
            return operand if operand.is_integer else INT
        if op in ("++", "--"):
            return operand.decay() if operand.is_array else operand
        # unary + / -
        return operand if operand.is_arithmetic else INT

    def _binary_type(self, expr: ast.Binary) -> CType:
        lhs = self._type_of(expr.lhs).decay()
        rhs = self._type_of(expr.rhs).decay()
        op = expr.op
        if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return INT
        if op in ("+", "-"):
            if lhs.is_pointer and rhs.is_pointer and op == "-":
                return LONG        # ptrdiff_t
            if lhs.is_pointer:
                return lhs
            if rhs.is_pointer and op == "+":
                return rhs
        if op in ("<<", ">>"):
            from ..cfront.ctypes_model import integer_promote
            return integer_promote(lhs) if lhs.is_integer else INT
        if lhs.is_arithmetic and rhs.is_arithmetic:
            return usual_arithmetic_conversions(lhs, rhs)
        return INT


def typecheck(unit: ast.TranslationUnit) -> list[TypeDiagnostic]:
    """Annotate all expressions in a bound translation unit with types."""
    return TypeChecker(unit).run()
