"""Static call graph over one translation unit.

Direct calls only (calls through function pointers are recorded as calls to
the special ``<indirect>`` node), which is what the interprocedural
"does-the-callee-write-my-buffer" check needs.
"""

from __future__ import annotations

from ..cfront import astnodes as ast

INDIRECT = "<indirect>"


class CallSite:
    __slots__ = ("caller", "callee", "call")

    def __init__(self, caller: str, callee: str, call: ast.Call):
        self.caller = caller
        self.callee = callee
        self.call = call

    def __repr__(self) -> str:
        return f"CallSite({self.caller} -> {self.callee})"


class CallGraph:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.defined: dict[str, ast.FunctionDef] = {
            fn.name: fn for fn in unit.functions()}
        self.calls_from: dict[str, list[CallSite]] = {}
        self.calls_to: dict[str, list[CallSite]] = {}
        self.sites: list[CallSite] = []
        self._build()

    def _build(self) -> None:
        for fn in self.unit.functions():
            for node in fn.body.walk():
                if not isinstance(node, ast.Call):
                    continue
                callee = node.callee_name or INDIRECT
                if callee != INDIRECT and \
                        isinstance(node.func, ast.Identifier) and \
                        node.func.symbol is not None and \
                        not node.func.symbol.is_function:
                    callee = INDIRECT       # call through a variable
                site = CallSite(fn.name, callee, node)
                self.sites.append(site)
                self.calls_from.setdefault(fn.name, []).append(site)
                self.calls_to.setdefault(callee, []).append(site)

    def callees(self, name: str) -> set[str]:
        return {site.callee for site in self.calls_from.get(name, ())}

    def callers(self, name: str) -> set[str]:
        return {site.caller for site in self.calls_to.get(name, ())}

    def is_defined(self, name: str) -> bool:
        return name in self.defined

    def transitive_callees(self, name: str) -> set[str]:
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for callee in self.callees(current):
                if callee not in seen:
                    seen.add(callee)
                    if callee in self.defined:
                        frontier.append(callee)
        return seen

    def is_recursive(self, name: str) -> bool:
        return name in self.transitive_callees(name)


def build_call_graph(unit: ast.TranslationUnit) -> CallGraph:
    return CallGraph(unit)
