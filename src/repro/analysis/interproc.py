"""Interprocedural may-write analysis for pointer arguments.

STR's precondition (paper §III-C): when a char pointer is passed to a
user-defined function, determine *at the call site* whether the callee may
modify the buffer through that parameter.  The analysis is conservative —
it may answer "writes" when the callee actually does not — because a wrong
"does not write" would let STR change program behaviour.

Rules, applied to the callee's body for the parameter in question:

* stores through the parameter (``*p = …``, ``p[i] = …``, ``p->f = …``,
  ``(*p)++`` …) → writes;
* the parameter passed to a libc function position that writes → writes;
* the parameter passed onward to another user function → recurse (cycles
  and undefined callees assume writes);
* the parameter's value stored into a global/struct/array or returned →
  escapes → assume writes;
* otherwise → does not write.
"""

from __future__ import annotations

from ..cfront import astnodes as ast
from .callgraph import CallGraph
from .libcinfo import is_known_libc, libc_writes_through
from .symtab import Symbol


class InterproceduralWriteAnalysis:
    def __init__(self, callgraph: CallGraph):
        self.callgraph = callgraph
        # (function name, parameter index) -> may write?
        self._cache: dict[tuple[str, int], bool] = {}

    # ------------------------------------------------------------------ API

    def call_may_write_arg(self, call: ast.Call, arg_index: int) -> bool:
        """May this call site write through its ``arg_index``-th argument?"""
        name = call.callee_name
        if name is None:            # indirect call: conservative
            return True
        if is_known_libc(name):
            return libc_writes_through(name, arg_index)
        return self.function_may_write_param(name, arg_index)

    def function_may_write_param(self, name: str, index: int) -> bool:
        key = (name, index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        fn = self.callgraph.defined.get(name)
        if fn is None:
            self._cache[key] = True     # undefined: assume the worst
            return True
        # Seed True (cycle-safe conservative default), then refine.
        self._cache[key] = True
        result = self._body_writes_param(fn, index)
        self._cache[key] = result
        return result

    # ------------------------------------------------------------ internals

    def _body_writes_param(self, fn: ast.FunctionDef, index: int) -> bool:
        if index >= len(fn.params):
            return True                 # variadic or mismatched call
        param = fn.params[index]
        if param.symbol is None:
            return True
        symbol = param.symbol
        # Track local aliases of the parameter: `char *q = p;` means writes
        # through q are writes through p.
        tracked = self._local_aliases(fn, symbol)
        for node in fn.body.walk():
            if self._node_writes_through(node, tracked):
                return True
        return False

    @staticmethod
    def _local_aliases(fn: ast.FunctionDef, root: Symbol) -> set[Symbol]:
        """Fixed point of 'assigned from a tracked pointer'."""
        tracked: set[Symbol] = {root}
        changed = True
        while changed:
            changed = False
            for node in fn.body.walk():
                source: ast.Node | None = None
                target: Symbol | None = None
                if isinstance(node, ast.Assignment) and node.op == "=":
                    if isinstance(node.lhs, ast.Identifier) and \
                            node.lhs.symbol is not None:
                        target = node.lhs.symbol
                        source = node.rhs
                elif isinstance(node, ast.Declarator) and \
                        node.init is not None and node.symbol is not None:
                    target = node.symbol
                    source = node.init
                if target is None or source is None or target in tracked:
                    continue
                base = _pointer_source_symbol(source)
                if base is not None and base in tracked:
                    tracked.add(target)
                    changed = True
        return tracked

    def _node_writes_through(self, node: ast.Node,
                             tracked: set[Symbol]) -> bool:
        if isinstance(node, ast.Assignment):
            if self._lvalue_derefs_tracked(node.lhs, tracked):
                return True
            # Storing a tracked pointer anywhere non-local lets it escape.
            base = _pointer_source_symbol(node.rhs)
            if base is not None and base in tracked and \
                    not isinstance(node.lhs, ast.Identifier):
                return True
            if base is not None and base in tracked and \
                    isinstance(node.lhs, ast.Identifier) and \
                    node.lhs.symbol is not None and \
                    node.lhs.symbol.is_global:
                return True
        elif isinstance(node, ast.Unary) and node.op in ("++", "--"):
            if self._lvalue_derefs_tracked(node.operand, tracked):
                return True
        elif isinstance(node, ast.Call):
            for i, arg in enumerate(node.args):
                base = _pointer_source_symbol(arg)
                if base is None or base not in tracked:
                    continue
                name = node.callee_name
                if name is None:
                    return True
                if is_known_libc(name):
                    if libc_writes_through(name, i):
                        return True
                elif self.function_may_write_param(name, i):
                    return True
            # Passing &p (address of the tracked pointer itself) anywhere
            # is a write risk.
            for arg in node.args:
                if isinstance(arg, ast.Unary) and arg.op == "&":
                    inner = arg.operand
                    if isinstance(inner, ast.Identifier) and \
                            inner.symbol in tracked:
                        return True
        return False

    @staticmethod
    def _lvalue_derefs_tracked(lhs: ast.Node, tracked: set[Symbol]) -> bool:
        """Is this lvalue a store *through* a tracked pointer?"""
        if isinstance(lhs, ast.Unary) and lhs.op == "*":
            base = _pointer_source_symbol(lhs.operand)
            return base is not None and base in tracked
        if isinstance(lhs, ast.ArrayAccess):
            base = _pointer_source_symbol(lhs.base)
            return base is not None and base in tracked
        if isinstance(lhs, ast.FieldAccess) and lhs.arrow:
            base = _pointer_source_symbol(lhs.base)
            return base is not None and base in tracked
        return False


def _pointer_source_symbol(expr: ast.Node) -> Symbol | None:
    """The variable a pointer-valued expression is rooted at, if any."""
    while True:
        if isinstance(expr, ast.Identifier):
            return expr.symbol
        if isinstance(expr, ast.Cast):
            expr = expr.operand
        elif isinstance(expr, ast.Unary) and expr.op in ("++", "--", "+",
                                                         "-"):
            expr = expr.operand
        elif isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            lhs = _pointer_source_symbol(expr.lhs)
            if lhs is not None:
                return lhs
            expr = expr.rhs
        else:
            return None
