"""Shared machinery for the analysis-core fast path.

The flow and pointer analyses each keep two interchangeable solvers: the
original reference implementation (kept for differential testing and
ablation) and a fast path with the same observable results.  The fast
path is on by default; ``REPRO_ANALYSIS_FAST=0`` selects the reference
solvers.  This module owns the switch plus the two graph kernels both
fast solvers share:

* an **iterative Tarjan/Nuutila SCC pass** over integer adjacency (no
  recursion, no networkx) used by the points-to solver's cycle
  collapsing, and
* an **iterative dominator computation** (Cooper–Harvey–Kennedy) used by
  the dependence analysis for postdominators on the reversed CFG.

Both kernels are deterministic: SCC representatives are the
minimum-index member (matching the reference solver's choice) and
dominators are unique by construction.
"""

from __future__ import annotations

import os


def fast_enabled() -> bool:
    """Is the analysis fast path active?  On unless REPRO_ANALYSIS_FAST=0."""
    return os.environ.get("REPRO_ANALYSIS_FAST", "1") not in ("0", "")


# ------------------------------------------------------------------ SCC

def strongly_connected_components(num_nodes: int,
                                  successors) -> list[list[int]]:
    """Tarjan's SCC algorithm, iterative, over ``successors(v) -> iterable``.

    Only components with two or more members are returned (singletons are
    never collapsed); each is sorted ascending so callers can pick the
    minimum index as the representative, exactly as the reference
    points-to solver does.
    """
    index_of = [-1] * num_nodes       # discovery index, -1 = unvisited
    low = [0] * num_nodes
    on_stack = bytearray(num_nodes)
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0

    for root in range(num_nodes):
        if index_of[root] != -1:
            continue
        # Explicit DFS frames: (node, iterator over its successors).
        frames = [(root, iter(successors(root)))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        while frames:
            node, succ_iter = frames[-1]
            advanced = False
            for succ in succ_iter:
                if index_of[succ] == -1:
                    index_of[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = 1
                    frames.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if on_stack[succ] and low[node] > index_of[succ]:
                    low[node] = index_of[succ]
            if advanced:
                continue
            frames.pop()
            if frames:
                parent = frames[-1][0]
                if low[parent] > low[node]:
                    low[parent] = low[node]
            if low[node] == index_of[node]:
                member = stack.pop()
                on_stack[member] = 0
                if member == node:
                    continue        # singleton — not collapsible
                scc = [member]
                while member != node:
                    member = stack.pop()
                    on_stack[member] = 0
                    scc.append(member)
                scc.sort()
                sccs.append(scc)
    return sccs


# ----------------------------------------------------------- dominators

def immediate_dominators(num_nodes: int, root: int,
                         preds: list[list[int]],
                         succs: list[list[int]]) -> dict[int, int]:
    """Cooper–Harvey–Kennedy immediate dominators from ``root``.

    Returns ``{node: idom}`` for every node reachable from ``root`` (with
    ``idom[root] == root``), matching the contract (and, dominator trees
    being unique, the results) of ``networkx.immediate_dominators``.
    """
    # Reverse postorder from root over succs.
    order: list[int] = []
    seen = bytearray(num_nodes)
    seen[root] = 1
    frames = [(root, iter(succs[root]))]
    while frames:
        node, it = frames[-1]
        advanced = False
        for nxt in it:
            if not seen[nxt]:
                seen[nxt] = 1
                frames.append((nxt, iter(succs[nxt])))
                advanced = True
                break
        if not advanced:
            frames.pop()
            order.append(node)
    order.reverse()                       # RPO, root first

    rpo_num = {node: i for i, node in enumerate(order)}
    idom = [-1] * num_nodes
    idom[root] = root

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_num[a] > rpo_num[b]:
                a = idom[a]
            while rpo_num[b] > rpo_num[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == root:
                continue
            new_idom = -1
            for pred in preds[node]:
                if not seen[pred] or idom[pred] == -1:
                    continue          # unreachable or not yet processed
                new_idom = pred if new_idom == -1 \
                    else intersect(pred, new_idom)
            if new_idom != -1 and idom[node] != new_idom:
                idom[node] = new_idom
                changed = True
    return {node: idom[node] for node in order if idom[node] != -1}


def iter_bits(bits: int):
    """Yield the set bit positions of ``bits``, lowest first.

    The isolate-lowest-bit loop runs in O(popcount) instead of
    O(bit-length), which matters when definition numbering is sparse.
    """
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low
