"""Knowledge base about C library functions.

Used by three consumers:

* the interprocedural write-check (which pointer arguments does a libc
  function write through?),
* STR's precondition ("the variable is not used in an unsupported C library
  function") and its argument-rewriting patterns, and
* the VM's native function dispatch.
"""

from __future__ import annotations

# function name -> indices of pointer parameters the function WRITES through.
LIBC_WRITES_PARAM: dict[str, tuple[int, ...]] = {
    "strcpy": (0,), "strncpy": (0,), "strcat": (0,), "strncat": (0,),
    "memcpy": (0,), "memmove": (0,), "memset": (0,),
    "sprintf": (0,), "snprintf": (0,), "vsprintf": (0,), "vsnprintf": (0,),
    "gets": (0,), "fgets": (0,),
    "strdup": (), "strlen": (), "strcmp": (), "strncmp": (),
    "strchr": (), "strrchr": (), "strstr": (), "memcmp": (), "memchr": (),
    "printf": (), "fprintf": (), "puts": (), "fputs": (), "putchar": (),
    "fputc": (), "perror": (),
    "atoi": (), "atol": (), "atof": (), "strtol": (1,), "strtoul": (1,),
    "free": (), "malloc": (), "calloc": (), "realloc": (),
    "malloc_usable_size": (), "alloca": (),
    "fopen": (), "fclose": (), "fflush": (), "feof": (), "ferror": (),
    "fread": (0,), "fwrite": (), "fseek": (), "ftell": (), "remove": (),
    "getchar": (), "fgetc": (), "exit": (), "abort": (), "getenv": (),
    "sscanf": (),        # conservative: %s targets vary; treated specially
    "read": (1,), "write": (),
    "isalpha": (), "isdigit": (), "isalnum": (), "isspace": (),
    "isupper": (), "islower": (), "isprint": (), "toupper": (),
    "tolower": (), "abs": (), "labs": (), "rand": (), "srand": (),
    "time": (0,), "clock": (),
    "g_strlcpy": (0,), "g_strlcat": (0,), "g_snprintf": (0,),
    "g_vsnprintf": (0,),
    "strcpy_s": (0,), "strcat_s": (0,), "sprintf_s": (0,),
    "vsprintf_s": (0,), "memcpy_s": (0,), "gets_s": (0,),
    "__assert_fail": (),
    "__builtin_va_start": (0,), "__builtin_va_end": (0,),
    "__builtin_va_copy": (0,),
    # stralloc library (the safe replacements write their first argument's
    # storage but never out of bounds).
    "stralloc_init": (0,), "stralloc_ready": (0,), "stralloc_free": (0,),
    "stralloc_copys": (0,), "stralloc_copybuf": (0,),
    "stralloc_cats": (0,), "stralloc_catbuf": (0,),
    "stralloc_append": (0,), "stralloc_memset": (0,),
    "stralloc_increment_by": (0,), "stralloc_decrement_by": (0,),
    "stralloc_get_dereferenced_char_at": (),
    "stralloc_dereference_replace_by": (0,),
    "stralloc_compare": (), "stralloc_equals": (),
    "stralloc_find_char": (), "stralloc_substring_at": (),
    "stralloc_length": (),
}

KNOWN_LIBC = frozenset(LIBC_WRITES_PARAM)


def is_known_libc(name: str) -> bool:
    return name in LIBC_WRITES_PARAM


def libc_writes_through(name: str, arg_index: int) -> bool:
    """Does libc function ``name`` write through pointer argument ``i``?

    Unknown functions conservatively write through everything.
    """
    written = LIBC_WRITES_PARAM.get(name)
    if written is None:
        return True
    return arg_index in written
