"""Tool-version fingerprint shared by every cache layer.

A cached artifact (preprocess output, pickled parse, transform result,
validation verdict) is only valid for the code that produced it: a
rewriter bugfix must invalidate every entry an older checkout computed.
The fingerprint is a digest over the *contents* of every Python source
file in the :mod:`repro` package, so any code change — in any layer —
changes the fingerprint and with it every cache key and the on-disk
store's version directory.  Stale entries are never consulted again and
``repro cache gc`` reclaims them.

``REPRO_FINGERPRINT`` overrides the computed value (tests use it to
simulate an older checkout publishing into the same cache directory).
"""

from __future__ import annotations

import hashlib
import os

_COMPUTED: str | None = None


def _compute() -> str:
    root = os.path.dirname(os.path.abspath(__file__))
    digest = hashlib.blake2b(digest_size=8)
    paths = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if filename.endswith(".py"):
                paths.append(os.path.join(dirpath, filename))
    for path in sorted(paths):
        digest.update(os.path.relpath(path, root).encode("utf-8"))
        digest.update(b"\x00")
        try:
            with open(path, "rb") as handle:
                digest.update(handle.read())
        except OSError:
            digest.update(b"<unreadable>")
        digest.update(b"\x00")
    return digest.hexdigest()


def tool_fingerprint() -> str:
    """The version salt for this checkout (stable within a process)."""
    override = os.environ.get("REPRO_FINGERPRINT")
    if override:
        return override
    global _COMPUTED
    if _COMPUTED is None:
        _COMPUTED = _compute()
    return _COMPUTED
