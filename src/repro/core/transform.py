"""Transformation framework.

A :class:`Transformation` runs against one preprocessed translation unit:
it finds candidate sites, checks per-site preconditions, queues text edits,
and reports a :class:`TransformResult` with per-site outcomes.  Mirrors how
the paper drives SLR/STR both interactively (one selected site) and as a
batch over all targets (§IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import ProgramAnalysis
from ..cfront import astnodes as ast
from ..cfront.rewriter import Rewriter
from ..cfront.source import SourceFile
from .session import AnalysisSession, get_session

TRANSFORMED = "transformed"
PRECONDITION_FAILED = "precondition-failed"
SITE_ERROR = "site-error"


@dataclass
class SiteOutcome:
    """What happened at one candidate site."""

    transformation: str         # 'SLR' | 'STR'
    target: str                 # callee name (SLR) / variable name (STR)
    function: str               # enclosing function
    line: int
    status: str                 # TRANSFORMED | PRECONDITION_FAILED
                                # | SITE_ERROR (handler raised, contained)
    reason: str = ""            # failure taxonomy key, empty on success
    detail: str = ""
    #: The ``(start, end, replacement)`` rewriter edits this site queued
    #: against the *original* text — the unit of per-site composition.
    #: Empty for untransformed sites and for sites whose rewrite is
    #: carried by another site in the same cluster (STR groups).
    edits: tuple = ()

    @property
    def transformed(self) -> bool:
        return self.status == TRANSFORMED


@dataclass
class TransformResult:
    """Result of running a transformation over a translation unit."""

    transformation: str
    original_text: str
    new_text: str
    outcomes: list[SiteOutcome] = field(default_factory=list)
    #: Registry id of the fix backend that produced this result (set by
    #: :meth:`repro.core.backends.FixBackend.run`; empty for results
    #: built outside the registry, e.g. direct ``apply_slr`` calls).
    backend: str = ""
    #: Whole-file edits queued by :meth:`Transformation.finalize`
    #: (support declarations, constraint handlers) — replayed alongside
    #: any of this result's per-site edits when composing.
    finalize_edits: tuple = ()

    @property
    def changed(self) -> bool:
        return self.new_text != self.original_text

    @property
    def candidates(self) -> int:
        return len(self.outcomes)

    @property
    def transformed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.transformed)

    @property
    def failed_count(self) -> int:
        return self.candidates - self.transformed_count

    @property
    def percent_transformed(self) -> float:
        if not self.outcomes:
            return 0.0
        return 100.0 * self.transformed_count / self.candidates

    def failures_by_reason(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            if not outcome.transformed:
                counts[outcome.reason] = counts.get(outcome.reason, 0) + 1
        return counts

    def by_target(self) -> dict[str, tuple[int, int]]:
        """target -> (transformed, total)."""
        stats: dict[str, tuple[int, int]] = {}
        for outcome in self.outcomes:
            done, total = stats.get(outcome.target, (0, 0))
            stats[outcome.target] = (done + int(outcome.transformed),
                                     total + 1)
        return stats


class Transformation:
    """Base class: subclasses implement ``find_targets`` and ``apply_to``."""

    name = "transformation"

    def __init__(self, text: str, filename: str = "<unit>",
                 unit: ast.TranslationUnit | None = None,
                 analysis: ProgramAnalysis | None = None,
                 session: AnalysisSession | None = None):
        self.text = text
        self.filename = filename
        self.session = session if session is not None else get_session()
        if unit is None:
            parsed = self.session.parse(text, filename)
            unit = parsed.unit
            if analysis is None:
                analysis = parsed.analysis
        self.unit = unit
        self.analysis = analysis if analysis is not None \
            else ProgramAnalysis(unit).ensure_types()
        self.rewriter = Rewriter(text)
        self.source = SourceFile(filename, text)
        self.outcomes: list[SiteOutcome] = []

    # -------------------------------------------------- subclass interface

    def find_targets(self) -> list:
        raise NotImplementedError

    def apply_to(self, target) -> SiteOutcome:
        raise NotImplementedError

    def finalize(self) -> None:
        """Hook for whole-file edits (e.g. adding declarations)."""

    # -------------------------------------------------------------- driver

    def run(self, targets: list | None = None) -> TransformResult:
        """Apply to all targets (or the given subset); returns the result.

        A site whose handler raises is contained: its queued edits are
        rolled back and it is recorded as a ``site-error`` outcome, so
        one pathological call site cannot take down the rest of the
        file's transformations (nor ship a half-applied rewrite).
        Injected whole-file faults (:mod:`repro.core.faults`) derive
        from :class:`BaseException` and still propagate.
        """
        for target in (targets if targets is not None
                       else self.find_targets()):
            mark = self.rewriter.checkpoint()
            try:
                outcome = self.apply_to(target)
            except Exception as exc:
                self.rewriter.rollback(mark)
                outcome = self._site_error_outcome(target, exc)
            if outcome.transformed and not outcome.edits:
                outcome.edits = self.rewriter.edits_since(mark)
            self.outcomes.append(outcome)
        final_mark = self.rewriter.checkpoint()
        self.finalize()
        finalize_edits = self.rewriter.edits_since(final_mark)
        new_text = self.rewriter.apply() if self.rewriter.has_edits \
            else self.text
        return TransformResult(self.name, self.text, new_text,
                               sort_outcomes(self.outcomes),
                               finalize_edits=finalize_edits)

    def _site_error_outcome(self, target, exc: Exception) -> SiteOutcome:
        """A contained per-site failure as a reportable outcome."""
        name = getattr(target, "callee_name", None) \
            or getattr(target, "name", None) or "<target>"
        try:
            function = self.function_of(target)
            line = self.line_of(target)
        except Exception:
            function, line = "<unknown>", 0
        return SiteOutcome(self.name, name, function, line,
                           status=SITE_ERROR, reason="internal-error",
                           detail=f"{type(exc).__name__}: {exc}")

    # -------------------------------------------------------------- helpers

    def line_of(self, node: ast.Node) -> int:
        return self.source.line_col(node.extent.start)[0]

    def function_of(self, node: ast.Node) -> str:
        fn = node.enclosing_function()
        return fn.name if fn is not None else "<global>"

    def src(self, node: ast.Node) -> str:
        return node.source_text(self.text)


def sort_outcomes(outcomes: list[SiteOutcome]) -> list[SiteOutcome]:
    """Source order (line, then target/transformation) — the application
    order is an implementation detail (SLR edits bottom-up), but reports
    must be byte-identical however the sites were visited."""
    return sorted(outcomes,
                  key=lambda o: (o.line, o.target, o.transformation))


def verify_output_parses(result: TransformResult,
                         filename: str = "<transformed>",
                         session: AnalysisSession | None = None) -> bool:
    """The paper's 'no compilation errors' check: re-parse the output.

    Runs through the session's content-keyed cache, so verifying a text
    that any stage already parsed costs one hash lookup.
    """
    session = session if session is not None else get_session()
    if not session.check_parses(result.new_text, filename):
        from ..cfront.parser import parse_translation_unit
        parse_translation_unit(result.new_text, filename)  # raise the error
    return True
