"""Function-granular incremental re-analysis.

One :class:`IncrementalEngine` per watched file turns a sequence of
edits into a sequence of :class:`UpdateReport`\\ s whose transformed
text, per-site outcomes, and oracle verdicts are byte-identical to a
cold :func:`repro.core.batch.transform_file` run over the same text —
only the latency differs.  The machinery:

* The raw text is tiled into preamble / function / gap segments by
  :mod:`repro.cfront.funcdiff`; token-level hashing identifies which
  function bodies an edit actually touched, so whitespace and comment
  edits invalidate nothing.
* Preprocessing composes per-fragment: the preamble render plus one
  cached render per function (``#include`` expansion and macros live in
  the preamble, which incremental updates require to be unchanged).  A
  warm-up self-check compares the composition against the real
  preprocessor and permanently falls back on mismatch.
* SLR and STR each replay per-function :class:`FunctionRecord`\\ s from
  the content-addressed ``func`` store family.  Records are keyed per
  *coupling component* — the union-find closure of functions connected
  through calls or shared globals (:func:`repro.cfront.funcdiff.components`)
  — over ``(stage, config, fresh-name pressure, preamble, member
  fragments)``, so unchanged components hit the disk cache across edits
  and across processes.  A miss runs the real transformation on a
  reduced unit of ``preamble + component members`` whose output is
  provably identical to the component's slice of a whole-file run
  (``reserved_names`` equalizes fresh-name allocation; finalize blocks
  are recomputed from the merged per-function declaration needs).
* Stale per-function dataflow on the retained warm analysis is dropped
  through :meth:`repro.analysis.ProgramAnalysis.invalidate`.
* The differential oracle reuses probe executions whose previous runs
  never entered a dirty function (:class:`repro.core.validate.IncrementalValidator`).

Any situation the incremental path does not model — preamble edits,
reorders, mid-file declarations, edits outside function spans,
position-dependent macros — falls back to the full pipeline, which is
also how the engine warms up.  ``REPRO_INCREMENTAL=off`` disables the
incremental path entirely.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field, replace

from functools import lru_cache

from ..cfront.cache import ContentCache, content_key
from ..cfront.funcdiff import (SegmentedFile, UnsupportedLayout, components,
                               diff_files, dirty_closure, patch_segment,
                               segment_file)
from ..cfront.preprocessor import Preprocessor, _squeeze_blank_lines
from ..cfront.rewriter import Rewriter
from ..cfront.tokens import tokens_to_text
from .session import AnalysisSession, get_session
from .slr import SafeLibraryReplacement
from .slr import finalize_blocks as slr_finalize_blocks
from .strtransform import SafeTypeReplacement
from .strtransform import finalize_blocks as str_finalize_blocks
from .transform import sort_outcomes
from .validate import IncrementalValidator, default_inputs

__all__ = ["FunctionRecord", "IncrementalEngine", "UpdateReport",
           "incremental_enabled"]


#: Function-granular artifacts: per-fragment preprocessor renders and
#: per-component transformation records, shared with the disk store's
#: ``func`` family so warm processes replay edits they have never seen.
_FUNC_CACHE = ContentCache("func", maxsize=4096, family="func")

#: Composing preprocessor output per-fragment moves code to different
#: absolute lines than a whole-file run, so any position-dependent macro
#: makes the file permanently unsupported.
_POSITION_MACROS = re.compile(r"__(?:LINE|FILE|DATE|TIME|COUNTER)__")

_IDENTIFIER = re.compile(r"[A-Za-z_]\w*")


@lru_cache(maxsize=8192)
def _ids_in(text: str) -> frozenset:
    return frozenset(_IDENTIFIER.findall(text))


def _seg_identifiers(seg: SegmentedFile) -> frozenset:
    """Every identifier-shaped spelling in the segmented text.

    Equals ``_IDENTIFIER.findall(seg.text)`` as a set: tiles join at a
    newline (function tiles start at column 1) or after ``}``, so no
    identifier straddles a boundary — which makes the scan memoizable
    per tile and O(edit) across updates instead of O(file).
    """
    out: set = set()
    for tile in seg.segments:
        out |= _ids_in(tile.text)
    return frozenset(out)


def incremental_enabled() -> bool:
    """``REPRO_INCREMENTAL`` gate (default on)."""
    return os.environ.get("REPRO_INCREMENTAL", "on").strip().lower() \
        not in ("0", "off", "no", "false")


class _Fallback(Exception):
    """Route this update through the full pipeline.

    ``permanent`` marks structural properties of the file that will not
    go away with further edits (the engine stops re-attempting the
    incremental path); transient reasons are retried next update.
    """

    def __init__(self, reason: str, permanent: bool = False):
        super().__init__(reason)
        self.reason = reason
        self.permanent = permanent


# ------------------------------------------------------------ records

@dataclass
class FunctionRecord:
    """One function's slice of a transformation run.

    ``output_text`` is the fragment with its own edits applied;
    ``outcomes`` carry lines relative to the fragment's first line and
    edit offsets relative to the fragment's first byte, so a record is
    position-independent and can be replayed wherever the fragment
    lands in a composed file.
    """

    output_text: str
    outcomes: tuple = ()
    decls: frozenset = frozenset()      # SLR _needed_decls contributed
    transformed: bool = False


def _function_spans(seg: SegmentedFile) -> dict[str, tuple[int, int, int]]:
    """``name -> (start offset, end offset, 1-based start line)``."""
    spans: dict[str, tuple[int, int, int]] = {}
    pos = 0
    line = 1
    for tile in seg.segments:
        if tile.is_function:
            spans[tile.name] = (pos, pos + len(tile.text), line)
        pos += len(tile.text)
        line += tile.text.count("\n")
    return spans


def _split_records(text: str, spans: dict[str, tuple[int, int, int]],
                   transformation, result) -> dict[str, FunctionRecord]:
    """Slice one whole-unit transformation run into per-function records.

    Every queued edit and every outcome must be attributable to exactly
    one function span (finalize edits excepted — they must all be
    insertions at offset 0, recomputed at composition time); anything
    else makes the file unsupported for replay.
    """
    all_edits = list(transformation.rewriter.edits_since(0))
    n_finalize = len(result.finalize_edits)
    site_edits = all_edits[:len(all_edits) - n_finalize] if n_finalize \
        else all_edits
    for start, end, _replacement in all_edits[len(site_edits):]:
        if (start, end) != (0, 0):
            raise _Fallback("finalize-edit-not-at-offset-0", permanent=True)

    ordered = sorted(spans.items(), key=lambda kv: kv[1][0])
    edits_by_fn: dict[str, list] = {name: [] for name in spans}
    for edit in site_edits:
        start, end, _replacement = edit
        for name, (s, e, _line) in ordered:
            if s <= start and end <= e:
                edits_by_fn[name].append(edit)
                break
        else:
            raise _Fallback("edit-outside-function-span", permanent=True)

    outcomes_by_fn: dict[str, list] = {name: [] for name in spans}
    for outcome in result.outcomes:
        span = spans.get(outcome.function)
        if span is None:
            raise _Fallback("outcome-without-function", permanent=True)
        s, e, line0 = span
        rel_line = outcome.line - line0
        if rel_line < 0:
            raise _Fallback("outcome-line-outside-function", permanent=True)
        rel_edits = []
        for es, ee, rep in outcome.edits:
            if not (s <= es and ee <= e):
                raise _Fallback("outcome-edit-outside-function",
                                permanent=True)
            rel_edits.append((es - s, ee - s, rep))
        outcomes_by_fn[outcome.function].append(
            replace(outcome, line=rel_line, edits=tuple(rel_edits)))

    decls_by_fn = getattr(transformation, "decls_by_function", {})
    records: dict[str, FunctionRecord] = {}
    for name, (s, e, _line) in spans.items():
        fragment = text[s:e]
        fn_edits = edits_by_fn[name]
        if fn_edits:
            rewriter = Rewriter(fragment)
            for es, ee, rep in fn_edits:     # queue order is preserved
                rewriter.replace_range(es - s, ee - s, rep)
            output = rewriter.apply()
        else:
            output = fragment
        outcomes = tuple(outcomes_by_fn[name])
        records[name] = FunctionRecord(
            output_text=output, outcomes=outcomes,
            decls=frozenset(decls_by_fn.get(name, ())),
            transformed=any(o.transformed for o in outcomes))
    return records


# ------------------------------------------------------------- stages

class _SlrSpec:
    stage_id = "slr"
    fresh_bases = ("check",)

    def __init__(self, profile: str):
        self.config = profile

    def make(self, text: str, filename: str, session, reserved: frozenset):
        return SafeLibraryReplacement(text, filename, profile=self.config,
                                      session=session,
                                      reserved_names=reserved)

    def finalize(self, text: str, records: dict[str, FunctionRecord]):
        needed: set = set()
        for record in records.values():
            needed |= record.decls
        return slr_finalize_blocks(text, needed)


class _StrSpec:
    stage_id = "str"
    fresh_bases = ()
    config = ""

    def make(self, text: str, filename: str, session, reserved: frozenset):
        return SafeTypeReplacement(text, filename, session=session)

    def finalize(self, text: str, records: dict[str, FunctionRecord]):
        return str_finalize_blocks(
            text, any(r.transformed for r in records.values()))


@dataclass
class _StageState:
    """One stage's composed view of the current file."""

    seg: SegmentedFile              # segmentation of the stage INPUT
    records: dict                   # name -> FunctionRecord
    output_text: str
    outcomes: list                  # absolute coordinates, sorted
    blocks: tuple = ()              # finalize blocks prepended to output


class _StageRunner:
    """Replays or recomputes one transformation stage per component."""

    def __init__(self, spec, filename: str):
        self.spec = spec
        self.filename = filename

    # -------------------------------------------------- key derivation

    def _pressure(self, seg: SegmentedFile) -> str:
        """Fresh-name pressure: every spelling in the whole unit that
        could collide with a name this stage might allocate.  Part of
        the component key so allocation is stable across edits to
        unrelated functions."""
        if not self.spec.fresh_bases:
            return ""
        ids = _seg_identifiers(seg)
        hits = []
        for base in self.spec.fresh_bases:
            prefix = base + "_"
            hits.extend(n for n in ids if n == base or n.startswith(prefix))
        return ",".join(sorted(set(hits)))

    def _component_keys(self, seg: SegmentedFile):
        """``(store key, member names in file order)`` per component."""
        comp = components(seg)
        order = seg.function_order()
        fns = seg.functions()
        pressure = self._pressure(seg)
        preamble = seg.preamble.text
        seen: set = set()
        out = []
        for name in order:
            group = comp[name]
            if group in seen:
                continue
            seen.add(group)
            members = [n for n in order if n in group]
            key = content_key("func", self.spec.stage_id, self.spec.config,
                              pressure, preamble,
                              *[fns[n].text for n in members])
            out.append((key, members))
        return out

    # ------------------------------------------------------- warm path

    def from_full(self, seg: SegmentedFile, transformation,
                  result) -> _StageState:
        """Build and publish records from a real whole-unit run."""
        spans = _function_spans(seg)
        records = _split_records(seg.text, spans, transformation, result)
        for key, members in self._component_keys(seg):
            submap = {name: records[name] for name in members}
            _FUNC_CACHE.get_or_build(key, lambda sm=submap: sm)
        blocks = tuple(self.spec.finalize(seg.text, records))
        return _StageState(seg, records, result.new_text,
                           list(result.outcomes), blocks)

    # ------------------------------------------------ incremental path

    def update(self, seg: SegmentedFile, session: AnalysisSession,
               reserved: frozenset) -> _StageState:
        if seg.has_midfile_declarations():
            raise _Fallback("midfile-declarations")
        records: dict[str, FunctionRecord] = {}
        for key, members in self._component_keys(seg):
            submap = _FUNC_CACHE.get_or_build(
                key, lambda m=members: self._fresh(seg, m, session, reserved))
            records.update(submap)
        return self._compose(seg, records)

    def _fresh(self, seg: SegmentedFile, members: list[str],
               session: AnalysisSession,
               reserved: frozenset) -> dict[str, FunctionRecord]:
        """Run the real transformation on ``preamble + members`` and
        slice the result.  ``reserved`` (every identifier spelling in
        the whole stage input) makes fresh-name allocation — the only
        whole-unit-dependent part of a transformation — identical to a
        whole-file run."""
        preamble = seg.preamble.text
        if preamble and not preamble.endswith("\n"):
            raise _Fallback("preamble-not-line-terminated", permanent=True)
        fns = seg.functions()
        parts = [preamble]
        pos = len(preamble)
        line = 1 + preamble.count("\n")
        spans: dict[str, tuple[int, int, int]] = {}
        for i, name in enumerate(members):
            fragment = fns[name].text
            spans[name] = (pos, pos + len(fragment), line)
            parts.append(fragment)
            pos += len(fragment)
            line += fragment.count("\n")
            separator = "\n\n" if i + 1 < len(members) else "\n"
            parts.append(separator)
            pos += len(separator)
            line += separator.count("\n")
        reduced = "".join(parts)
        transformation = self.spec.make(reduced, self.filename, session,
                                        reserved)
        result = transformation.run()
        if result.changed and not session.check_parses(result.new_text,
                                                       self.filename):
            raise _Fallback("reduced-output-does-not-parse")
        return _split_records(reduced, spans, transformation, result)

    def _compose(self, seg: SegmentedFile,
                 records: dict[str, FunctionRecord]) -> _StageState:
        """Stitch per-function outputs (and recomputed finalize blocks)
        back into whole-file output text and absolute outcomes."""
        blocks = tuple(self.spec.finalize(seg.text, records))
        parts = list(blocks)
        outcomes = []
        spans = _function_spans(seg)
        for tile in seg.segments:
            if not tile.is_function:
                parts.append(tile.text)
                continue
            record = records[tile.name]
            parts.append(record.output_text)
            s, _e, line0 = spans[tile.name]
            for outcome in record.outcomes:
                outcomes.append(replace(
                    outcome, line=line0 + outcome.line,
                    edits=tuple((es + s, ee + s, rep)
                                for es, ee, rep in outcome.edits)))
        return _StageState(seg, records, "".join(parts),
                           sort_outcomes(outcomes), blocks)


# ------------------------------------------------------------- report

@dataclass
class UpdateReport:
    """One edit-to-verdict round trip."""

    filename: str
    mode: str   # 'full' | 'incremental' | 'no-op' | 'error' | 'removed'
    reason: str                     # why this mode (fallback cause, ...)
    final_text: str
    parses: bool
    slr_outcomes: list = field(default_factory=list)
    str_outcomes: list = field(default_factory=list)
    validation: object = None       # ValidationReport | None
    changed: frozenset = frozenset()
    inserted: frozenset = frozenset()
    deleted: frozenset = frozenset()
    invalidated: frozenset = frozenset()    # functions re-analyzed
    wall_s: float = 0.0
    func_hits: int = 0              # func-family hits during this update
    func_misses: int = 0            # func-family computes during this update
    probes_reused: int = 0
    probes_executed: int = 0

    def verdict_counts(self) -> dict:
        return self.validation.counts() if self.validation is not None else {}

    def as_dict(self) -> dict:
        return {
            "filename": self.filename,
            "mode": self.mode,
            "reason": self.reason,
            "parses": self.parses,
            "changed": sorted(self.changed),
            "inserted": sorted(self.inserted),
            "deleted": sorted(self.deleted),
            "invalidated": sorted(self.invalidated),
            "sites": {
                "slr": [f"{o.function}:{o.line} {o.target} {o.status}"
                        for o in self.slr_outcomes],
                "str": [f"{o.function}:{o.line} {o.target} {o.status}"
                        for o in self.str_outcomes],
            },
            "verdicts": self.verdict_counts(),
            "wall_s": round(self.wall_s, 6),
            "func_cache": {"hits": self.func_hits,
                           "misses": self.func_misses},
            "probes": {"reused": self.probes_reused,
                       "executed": self.probes_executed},
        }


# ------------------------------------------------------------- engine

class IncrementalEngine:
    """Re-analyzes successive versions of one file, reusing everything
    an edit did not touch.  See the module docstring for the contract:
    every report is byte-identical to a cold run of the same text."""

    def __init__(self, filename: str = "<watch>", *, profile: str = "glib",
                 validate: bool = True, fuzz_seed=None,
                 session: AnalysisSession | None = None):
        self.filename = filename
        self.profile = profile
        self.validate = validate
        self.fuzz_seed = fuzz_seed
        self.session = session if session is not None else get_session()
        self.validator = IncrementalValidator(filename)
        self._slr = _StageRunner(_SlrSpec(profile), filename)
        self._str = _StageRunner(_StrSpec(), filename)
        self._unsupported = ""          # permanent-fallback reason
        self._last_report: UpdateReport | None = None
        self._reset_state()

    def _reset_state(self) -> None:
        self._raw_text: str | None = None
        self._raw_seg: SegmentedFile | None = None
        self._pp_text: str | None = None
        self._pp_seg: SegmentedFile | None = None
        self._slr_state: _StageState | None = None
        self._str_state: _StageState | None = None
        self._analysis = None

    # ----------------------------------------------------------- API

    def update(self, text: str) -> UpdateReport:
        """Analyze ``text`` (the new raw file content) and report."""
        t0 = time.perf_counter()
        hits0, misses0 = self._func_counters()
        reused0 = self.validator.reused_probes
        executed0 = self.validator.executed_probes
        try:
            if not incremental_enabled():
                raise _Fallback("disabled (REPRO_INCREMENTAL)")
            if self._unsupported:
                raise _Fallback(self._unsupported)
            if self._raw_text is None:
                raise _Fallback("cold-start")
            report = self._incremental(text)
        except _Fallback as fb:
            if fb.permanent:
                self._unsupported = fb.reason
            report = self._full(text, fb.reason)
        except UnsupportedLayout as exc:
            report = self._full(text, f"unsupported-layout: {exc}")
        except Exception as exc:    # never worse than the full pipeline
            report = self._full(text, f"incremental-error: {exc!r}")
        report.wall_s = time.perf_counter() - t0
        hits1, misses1 = self._func_counters()
        report.func_hits = hits1 - hits0
        report.func_misses = misses1 - misses0
        report.probes_reused = self.validator.reused_probes - reused0
        report.probes_executed = self.validator.executed_probes - executed0
        self._last_report = report
        return report

    @staticmethod
    def _func_counters() -> tuple[int, int]:
        stats = _FUNC_CACHE.stats
        return (stats.hits + stats.disk_hits,          # served from cache
                stats.misses - stats.disk_hits)        # truly computed

    def _inputs(self):
        return default_inputs(self.filename, seed=self.fuzz_seed)

    # ------------------------------------------------------ full path

    def _full(self, text: str, reason: str) -> UpdateReport:
        """The cold pipeline (same stages as ``transform_file``), plus a
        state rebuild so the next update can go incremental."""
        session = self.session
        pp = session.preprocess(text, self.filename).text
        slr_t = SafeLibraryReplacement(pp, self.filename,
                                       profile=self.profile, session=session)
        slr_result = slr_t.run()
        str_t = SafeTypeReplacement(slr_result.new_text, self.filename,
                                    session=session)
        str_result = str_t.run()
        final = str_result.new_text
        if final == pp:
            parses = True
        else:
            _unit, parse_error = session.try_parse(final, self.filename)
            parses = parse_error is None
        validation = None
        if self.validate and parses:
            validation = self.validator.validate(pp, final, None,
                                                 inputs=self._inputs())
        self._reset_state()
        if incremental_enabled() and not self._unsupported:
            try:
                self._rebuild(text, pp, slr_t, slr_result, str_t, str_result,
                              parses)
            except _Fallback as fb:
                if fb.permanent:
                    self._unsupported = fb.reason
                self._reset_state()
            except (UnsupportedLayout, Exception):
                self._reset_state()
        return UpdateReport(self.filename, "full", reason, final, parses,
                            list(slr_result.outcomes),
                            list(str_result.outcomes), validation)

    def _rebuild(self, raw: str, pp: str, slr_t, slr_result, str_t,
                 str_result, parses: bool) -> None:
        """Derive the warm per-function state from a full run."""
        if not parses:
            raise _Fallback("output-does-not-parse")
        if _POSITION_MACROS.search(raw):
            raise _Fallback("position-dependent-macro", permanent=True)
        raw_seg = segment_file(raw, self.filename)
        composed = self._compose_pp(raw_seg)
        if composed != pp:
            raise _Fallback("pp-composition-mismatch", permanent=True)
        pp_seg = segment_file(pp, self.filename)
        if pp_seg.has_midfile_declarations():
            raise _Fallback("midfile-declarations")
        slr_state = self._slr.from_full(pp_seg, slr_t, slr_result)
        str_seg = segment_file(slr_result.new_text, self.filename)
        if str_seg.has_midfile_declarations():
            raise _Fallback("midfile-declarations")
        str_state = self._str.from_full(str_seg, str_t, str_result)
        self._raw_text, self._raw_seg = raw, raw_seg
        self._pp_text, self._pp_seg = pp, pp_seg
        self._slr_state, self._str_state = slr_state, str_state
        self._analysis = self.session.parse(pp, self.filename).analysis

    # ----------------------------------------------- incremental path

    def _incremental(self, text: str) -> UpdateReport:
        if text == self._raw_text:
            return self._no_op("identical-input")
        if _POSITION_MACROS.search(text):
            raise _Fallback("position-dependent-macro", permanent=True)
        new_raw = patch_segment(self._raw_seg, text) \
            or segment_file(text, self.filename)
        diff = diff_files(self._raw_seg, new_raw)
        if diff.preamble_changed:
            raise _Fallback("preamble-changed")
        if diff.reordered:
            raise _Fallback("functions-reordered")
        if diff.no_op and self._gaps_equal(self._raw_seg, new_raw):
            self._raw_text, self._raw_seg = text, new_raw
            return self._no_op("token-level-no-op")
        pp_new = self._compose_pp(new_raw)
        if pp_new == self._pp_text:
            self._raw_text, self._raw_seg = text, new_raw
            return self._no_op("preprocessed-text-unchanged")

        dirty_raw = dirty_closure(new_raw, diff.dirty)
        invalidated = frozenset(dirty_raw) | frozenset(diff.deleted)
        if self._analysis is not None:
            for name in sorted(invalidated):
                self._analysis.invalidate(name)

        pp_seg = patch_segment(self._pp_seg, pp_new) \
            or segment_file(pp_new, self.filename)
        reserved = _seg_identifiers(pp_seg)
        slr_state = self._slr.update(pp_seg, self.session, reserved)
        str_seg = patch_segment(self._str_state.seg,
                                slr_state.output_text) \
            or segment_file(slr_state.output_text, self.filename)
        str_reserved = _seg_identifiers(str_seg)
        str_state = self._str.update(str_seg, self.session, str_reserved)
        final = str_state.output_text

        validation = None
        if self.validate:
            dirty = self._validation_dirty(pp_seg, slr_state, str_state,
                                           invalidated)
            validation = self.validator.validate(pp_new, final, dirty,
                                                 inputs=self._inputs())

        self._raw_text, self._raw_seg = text, new_raw
        self._pp_text, self._pp_seg = pp_new, pp_seg
        self._slr_state, self._str_state = slr_state, str_state
        return UpdateReport(self.filename, "incremental", "", final, True,
                            list(slr_state.outcomes),
                            list(str_state.outcomes), validation,
                            changed=diff.changed, inserted=diff.inserted,
                            deleted=diff.deleted, invalidated=invalidated)

    def _no_op(self, reason: str) -> UpdateReport:
        previous = self._last_report
        return UpdateReport(self.filename, "no-op", reason,
                            previous.final_text, previous.parses,
                            list(previous.slr_outcomes),
                            list(previous.str_outcomes),
                            previous.validation)

    def _validation_dirty(self, pp_seg: SegmentedFile,
                          slr_state: _StageState, str_state: _StageState,
                          invalidated: frozenset) -> frozenset | None:
        """Functions whose executable text differs from the previously
        validated pair, or ``None`` (validate everything) when anything
        outside the per-function fragments moved."""
        old_gaps = [t.text for t in self._pp_seg.segments
                    if not t.is_function]
        new_gaps = [t.text for t in pp_seg.segments if not t.is_function]
        if old_gaps != new_gaps:
            return None
        if (self._slr_state.blocks != slr_state.blocks or
                self._str_state.blocks != str_state.blocks):
            return None
        old_final = {n: r.output_text
                     for n, r in self._str_state.records.items()}
        new_final = {n: r.output_text for n, r in str_state.records.items()}
        dirty = set(invalidated)
        for name in set(old_final) | set(new_final):
            if old_final.get(name) != new_final.get(name):
                dirty.add(name)
        return frozenset(dirty)

    # --------------------------------------------------- pp composing

    @staticmethod
    def _gaps_equal(a: SegmentedFile, b: SegmentedFile) -> bool:
        """Same blank-line structure between functions (all the
        preprocessor keeps of a gap is its newline count)."""
        gaps_a = [t.newline_count for t in a.segments if not t.is_function]
        gaps_b = [t.newline_count for t in b.segments if not t.is_function]
        return gaps_a == gaps_b

    def _compose_pp(self, seg: SegmentedFile) -> str:
        """Preprocess per-fragment and stitch the renders together.

        ``render(preamble + fragment)`` starts with ``render(preamble)``
        because processing is line-by-line and rendering concatenative;
        the fragment's render is the remainder.  A gap of *k* newlines
        contributes ``k - 1`` (the fragment's own render already ends
        the ``}`` line).  The warm-up self-check in :meth:`_rebuild`
        guarantees this equals the real preprocessor's output before
        any incremental update relies on it.
        """
        preamble = seg.preamble.text
        if preamble and not preamble.endswith("\n"):
            raise _Fallback("preamble-not-line-terminated", permanent=True)
        filename = self.filename

        def render_preamble():
            return tokens_to_text(
                Preprocessor()._process_text(preamble, filename))

        base_key = content_key("func", "pp", "preamble", preamble)
        base = _FUNC_CACHE.get_or_build(base_key, render_preamble)
        parts = [base]
        for tile in seg.segments[1:]:
            if not tile.is_function:
                parts.append("\n" * max(0, tile.newline_count - 1))
                continue

            def render_fragment(fragment=tile.text):
                full = tokens_to_text(Preprocessor()._process_text(
                    preamble + fragment, filename))
                if not full.startswith(base):
                    raise _Fallback("pp-prefix-mismatch", permanent=True)
                return full[len(base):]

            key = content_key("func", "pp", "fragment", preamble, tile.text)
            parts.append(_FUNC_CACHE.get_or_build(key, render_fragment))
        return _squeeze_blank_lines("".join(parts))
