"""Crash-safe run layer: write-ahead journal, quarantine, audit trail.

A 10k-file batch is only production-credible if it survives the parent
process dying: without a durable record, a mid-run crash throws away
every completed verdict and the whole batch re-runs from scratch.  This
module gives every journaled batch a *run directory* —
``REPRO_RUN_DIR`` (default ``<REPRO_CACHE_DIR>/runs``) ``/<run-id>/`` —
in the ARVO replay-log style: everything needed to audit or resume the
run lives in one directory.

* ``manifest.json`` — written once at run start: program name, the
  input manifest (per-file content hashes), the settings that determine
  the work (backends, arbitration, validate, seed, profile), and the
  tool fingerprint.
* ``journal.jsonl`` — the write-ahead log: one JSON record per per-file
  lifecycle event (``dispatched`` → ``completed`` / ``failed`` /
  ``quarantined``), appended and flushed before the run moves on.  A
  crash can only ever lose the event being written; replay tolerates a
  torn final line.
* ``results/<key>.pkl`` — content-addressed result pointers: the full
  :class:`~repro.core.batch.FileTransformReport`, published with the
  same write-to-temp + :func:`os.replace` discipline as the artifact
  store, keyed by the task's work key (which is salted with the tool
  fingerprint — a code change strands old results harmlessly).  The
  WAL ordering invariant: the result file is published *before* the
  ``completed`` event is journaled, so a journaled completion always
  has a readable result.
* ``audit/<file>.json`` — the ARVO-style per-file audit record: status,
  diagnostics, per-site verdicts, the winning backend, and the unified
  diff the run shipped.  ``repro runs show`` replays the
  crash-report → fix → verdict chain from these.

``repro batch --resume <run-id>`` (or ``--resume latest``) reopens the
run directory, replays every journaled completion whose work key still
matches the input, and re-dispatches only unfinished work — the resumed
batch is byte-identical to an uninterrupted one at any jobs count,
re-executing at most the stream window of work that was dispatched but
never completed.

**Quarantine** rides on the artifact store (family ``quarantine``,
version-dir salted by the tool fingerprint): a file that exhausts
``REPRO_TASK_RETRIES`` in a journaled run is recorded under its content
hash and skipped — shipped verbatim with status ``quarantined`` —
by every later journaled run, without re-burning the timeout/retry
budget, until its content or the tool fingerprint changes.
``REPRO_QUARANTINE=0`` disables both recording and skipping.

All journal I/O is best-effort: a full disk or unwritable run directory
degrades to a warn-once unjournaled run, never a failed batch
(:mod:`repro.core.faults` ``disk-full`` rules exercise exactly this).
"""

from __future__ import annotations

import dataclasses
import difflib
import errno
import io
import json
import os
import pickle
import shutil
import time
import uuid
import warnings

from ..cfront.cache import content_key
from ..fingerprint import tool_fingerprint
from . import faults

__all__ = [
    "RunJournal", "RunNotFound", "gc_runs", "latest_run_id", "list_runs",
    "new_run_id", "quarantine_enabled", "quarantine_key",
    "quarantine_lookup", "quarantine_record", "run_log_enabled",
    "runs_root",
]

#: Bumped when the journal/manifest schema changes incompatibly.
RUN_SCHEMA = 1

#: Journal event types (the per-file lifecycle).
EVENT_DISPATCHED = "dispatched"
EVENT_COMPLETED = "completed"
EVENT_FAILED = "failed"
EVENT_QUARANTINED = "quarantined"

#: Artifact-store family quarantine entries are filed under (content
#: hash → poison record); lives in the fingerprint-salted version dir,
#: so a tool change releases every quarantined file automatically.
QUARANTINE_FAMILY = "quarantine"


def runs_root() -> str:
    """Where run directories live (``REPRO_RUN_DIR``, default
    ``<cache dir>/runs``)."""
    env = os.environ.get("REPRO_RUN_DIR")
    if env:
        return env
    from .store import default_cache_dir
    return os.path.join(default_cache_dir(), "runs")


def run_log_enabled() -> bool:
    """Is run journaling on?  (``REPRO_RUN_LOG=0`` disables; the CLI's
    ``--no-run-log`` sets it.)"""
    return os.environ.get("REPRO_RUN_LOG", "1") != "0"


def quarantine_enabled() -> bool:
    """Is poison-file quarantine on?  (``REPRO_QUARANTINE=0`` disables
    both recording new entries and skipping known ones.)"""
    return os.environ.get("REPRO_QUARANTINE", "1") != "0"


def new_run_id() -> str:
    """A fresh, sortable run id: UTC timestamp + random suffix."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


def _hash_text(text: str) -> str:
    """Input-manifest content hash (fingerprint-salted via
    :func:`content_key`, like every other key in the pipeline)."""
    return content_key("run-input", text)


class RunNotFound(FileNotFoundError):
    """``--resume`` named a run id with no journal on disk."""


class RunJournal:
    """One run's write-ahead journal, result pointers, and audit trail.

    All methods are best-effort and exception-free (apart from injected
    whole-process faults): journaling must never be the reason a batch
    fails.  The first I/O error per operation warns; later ones are
    silent.
    """

    def __init__(self, run_id: str | None = None, *,
                 root: str | None = None):
        self.root = os.path.abspath(root if root is not None
                                    else runs_root())
        self.run_id = run_id if run_id else new_run_id()
        self.run_dir = os.path.join(self.root, self.run_id)
        self.manifest_path = os.path.join(self.run_dir, "manifest.json")
        self.journal_path = os.path.join(self.run_dir, "journal.jsonl")
        self.results_dir = os.path.join(self.run_dir, "results")
        self.audit_dir = os.path.join(self.run_dir, "audit")
        self.manifest: dict = {}
        #: filename -> (event, work key) for the latest journaled
        #: terminal event per file (loaded by :meth:`load`).
        self.completed: dict[str, tuple[str, str]] = {}
        self._handle: io.TextIOWrapper | None = None
        self._warned: set[str] = set()
        self.resumed = False

    # ----------------------------------------------------------- plumbing

    def _warn_once(self, operation: str, exc: OSError) -> None:
        if operation in self._warned:
            return
        self._warned.add(operation)
        warnings.warn(
            f"run journal {operation} failed under {self.run_dir} "
            f"({type(exc).__name__}: {exc}); continuing without "
            f"journaling for affected records", RuntimeWarning,
            stacklevel=3)

    def _check_disk_full(self, subject: str) -> None:
        """Injected ``journal:disk-full`` rules fire here, inside the
        same try blocks that absorb a real ENOSPC."""
        if faults.faults_enabled() \
                and faults.should_fail_disk("journal", subject):
            raise OSError(errno.ENOSPC,
                          f"injected disk-full for {subject}")

    def _publish(self, path: str, data: bytes, subject: str) -> bool:
        """Write-to-temp + :func:`os.replace`, store discipline."""
        directory = os.path.dirname(path)
        tmp = os.path.join(directory,
                           f".{os.path.basename(path)}."
                           f"{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        try:
            self._check_disk_full(subject)
            os.makedirs(directory, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except OSError as exc:
            self._warn_once("write", exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def _append_event(self, event: dict, subject: str) -> None:
        """Append one journal line and flush it to the kernel — after
        the flush an abrupt parent death cannot lose the record."""
        try:
            self._check_disk_full(subject)
            if self._handle is None:
                os.makedirs(self.run_dir, exist_ok=True)
                self._handle = open(self.journal_path, "a",
                                    encoding="utf-8")
            self._handle.write(json.dumps(event, sort_keys=True) + "\n")
            self._handle.flush()
        except OSError as exc:
            self._warn_once("append", exc)

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    # ----------------------------------------------------------- manifest

    def begin(self, program, settings: dict) -> None:
        """Write the run manifest (new runs only — a resumed run keeps
        its original manifest, so the audit trail names the inputs the
        run was started with)."""
        if self.resumed and self.manifest:
            return
        self.manifest = {
            "schema": RUN_SCHEMA,
            "run_id": self.run_id,
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                     time.gmtime()),
            "fingerprint": tool_fingerprint(),
            "program": getattr(program, "name", str(program)),
            "files": {name: _hash_text(text)
                      for name, text
                      in sorted(getattr(program, "files", {}).items())},
            "settings": dict(settings),
        }
        data = json.dumps(self.manifest, indent=2,
                          sort_keys=True).encode("utf-8") + b"\n"
        self._publish(self.manifest_path, data, "manifest")

    def load(self) -> None:
        """Reopen an existing run: parse the manifest and replay the
        journal into :attr:`completed`.  A torn final line (the crash
        cut a write short) is skipped; every fully written record
        counts.  Raises :class:`RunNotFound` when the run directory has
        no journal and no manifest."""
        found = False
        try:
            with open(self.manifest_path, encoding="utf-8") as handle:
                self.manifest = json.load(handle)
            found = True
        except (OSError, ValueError):
            self.manifest = {}
        try:
            with open(self.journal_path, encoding="utf-8") as handle:
                lines = handle.read().splitlines()
            found = True
        except OSError:
            lines = []
        for line in lines:
            try:
                event = json.loads(line)
            except ValueError:
                continue                    # torn tail write
            if not isinstance(event, dict):
                continue
            name = event.get("file")
            kind = event.get("event")
            if not name or kind == EVENT_DISPATCHED:
                continue
            if kind in (EVENT_COMPLETED, EVENT_FAILED,
                        EVENT_QUARANTINED):
                self.completed[name] = (kind, event.get("key", ""))
        if not found:
            raise RunNotFound(
                f"no run {self.run_id!r} under {self.root} "
                f"(no manifest.json or journal.jsonl)")
        self.resumed = True
        fp = self.manifest.get("fingerprint")
        if fp and fp != tool_fingerprint():
            warnings.warn(
                f"run {self.run_id} was recorded by a different tool "
                f"version; its completed results no longer match any "
                f"work key and will be recomputed", RuntimeWarning,
                stacklevel=3)

    # ------------------------------------------------------------- events

    def record_dispatched(self, filename: str, key: str) -> None:
        faults.check("dispatch", filename)
        self._append_event({"event": EVENT_DISPATCHED, "file": filename,
                            "key": key, "t": round(time.time(), 3)},
                           filename)

    def record_result(self, filename: str, key: str, report) -> None:
        """Journal a terminal report: publish the content-addressed
        result pointer first, then the WAL event — a journaled
        completion therefore always has a readable result behind it.
        The injected ``journal:parent-kill`` fault fires between the
        two writes, the worst-ordered crash point the WAL must absorb.
        """
        status = getattr(report, "status", "")
        event = EVENT_FAILED if status == "failed" else EVENT_COMPLETED
        try:
            data = pickle.dumps(report,
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return
        if not self._publish(self._result_path(key), data, filename):
            return
        faults.check("journal", filename)
        self._append_event({"event": event, "file": filename,
                            "key": key, "status": status,
                            "t": round(time.time(), 3)}, filename)
        self.completed[filename] = (event, key)
        self.write_audit(report)

    def record_quarantined(self, filename: str, key: str,
                           entry: dict) -> None:
        self._append_event({"event": EVENT_QUARANTINED,
                            "file": filename, "key": key,
                            "reason": entry.get("message", ""),
                            "first_run": entry.get("run_id", ""),
                            "t": round(time.time(), 3)}, filename)
        self.completed[filename] = (EVENT_QUARANTINED, key)

    # ------------------------------------------------------------- replay

    def _result_path(self, key: str) -> str:
        return os.path.join(self.results_dir, key + ".pkl")

    def replay(self, filename: str, key: str):
        """The journaled report for ``filename`` — or ``None`` when the
        file was never completed, its work key changed (content or tool
        edit), or its result pointer is unreadable (recompute, never
        trust a corrupt replay)."""
        recorded = self.completed.get(filename)
        if recorded is None or recorded[0] == EVENT_QUARANTINED \
                or recorded[1] != key:
            return None
        try:
            with open(self._result_path(key), "rb") as handle:
                report = pickle.loads(handle.read())
        except Exception:
            return None
        if getattr(report, "filename", filename) != filename:
            report = dataclasses.replace(report, filename=filename)
        return report

    # -------------------------------------------------------- audit trail

    def write_audit(self, report) -> None:
        """One ARVO-style audit record per file: the crash report
        (diagnostics), the fix (winning backend + unified diff), and
        the verdicts the oracle returned for it."""
        validation = getattr(report, "validation", None)
        arbitration = getattr(report, "arbitration", None)
        original = None
        diff = None
        final = getattr(report, "final_text", None)
        if arbitration is not None:
            original = None          # arbitration reports carry no input
        for result in (getattr(report, "slr", None),
                       getattr(report, "str_", None)):
            if result is not None and original is None:
                original = result.original_text
        if arbitration is not None and arbitration.candidates:
            for cand in arbitration.candidates:
                if cand.result is not None:
                    original = cand.result.original_text
                    break
        if original is not None and final is not None \
                and final != original:
            diff = "".join(difflib.unified_diff(
                original.splitlines(keepends=True),
                final.splitlines(keepends=True),
                fromfile=report.filename,
                tofile=report.filename + ".fixed"))
        record = {
            "filename": report.filename,
            "status": getattr(report, "status", ""),
            "parses": getattr(report, "parses", None),
            "wall_s": round(getattr(report, "wall_time", 0.0), 4),
            "diagnostics": [d.as_dict() for d
                            in getattr(report, "diagnostics", [])],
            "verdicts": dict(sorted(validation.counts().items()))
            if validation is not None else None,
            "divergences": [
                {"input": v.input.name, "kind": v.input.kind,
                 "verdict": v.verdict, "detail": v.detail}
                for v in validation.divergences()]
            if validation is not None else [],
            "winner": arbitration.winner
            if arbitration is not None else None,
            "candidates": [c.as_dict()
                           for c in arbitration.candidates]
            if arbitration is not None else None,
            "diff": diff,
        }
        name = report.filename.replace(os.sep, "_") + ".json"
        data = json.dumps(record, indent=2,
                          sort_keys=True).encode("utf-8") + b"\n"
        self._publish(os.path.join(self.audit_dir, name), data,
                      report.filename)

    def read_audit(self, filename: str) -> dict | None:
        name = filename.replace(os.sep, "_") + ".json"
        try:
            with open(os.path.join(self.audit_dir, name),
                      encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def events(self) -> list[dict]:
        """Every parseable journal record, in append order."""
        try:
            with open(self.journal_path, encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return []
        out = []
        for line in lines:
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                out.append(event)
        return out


# --------------------------------------------------------------- registry

def list_runs(root: str | None = None) -> list[dict]:
    """Every run directory under ``root``, oldest first, with a summary
    (id, created, program, file counts, journaled event tallies)."""
    root = os.path.abspath(root if root is not None else runs_root())
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    runs = []
    for name in names:
        run_dir = os.path.join(root, name)
        if not os.path.isdir(run_dir):
            continue
        journal = RunJournal(name, root=root)
        try:
            journal.load()
        except RunNotFound:
            continue
        tallies: dict[str, int] = {}
        for kind, _key in journal.completed.values():
            tallies[kind] = tallies.get(kind, 0) + 1
        runs.append({
            "run_id": name,
            "created": journal.manifest.get("created", ""),
            "program": journal.manifest.get("program", ""),
            "files": len(journal.manifest.get("files", {})),
            "completed": tallies.get(EVENT_COMPLETED, 0),
            "failed": tallies.get(EVENT_FAILED, 0),
            "quarantined": tallies.get(EVENT_QUARANTINED, 0),
            "fingerprint": journal.manifest.get("fingerprint", ""),
        })
    return runs


def latest_run_id(root: str | None = None) -> str | None:
    """The most recently created run id (ids sort chronologically)."""
    runs = list_runs(root)
    return runs[-1]["run_id"] if runs else None


def resolve_run_id(run_id: str, root: str | None = None) -> str:
    """``latest`` → the newest run id; anything else passes through."""
    if run_id.strip().lower() == "latest":
        resolved = latest_run_id(root)
        if resolved is None:
            raise RunNotFound(
                f"no runs under {root if root is not None else runs_root()}")
        return resolved
    return run_id


def gc_runs(*, max_age_days: float | None = None,
            keep: int | None = None,
            root: str | None = None) -> dict[str, int]:
    """Prune old run directories; returns ``{removed_runs, freed_bytes}``.

    ``max_age_days`` removes runs whose directory mtime is older;
    ``keep`` retains only the newest N runs.  Both ``None`` removes
    nothing (callers must opt in — run directories are the audit
    trail)."""
    root = os.path.abspath(root if root is not None else runs_root())
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return {"removed_runs": 0, "freed_bytes": 0}
    dirs = [name for name in names
            if os.path.isdir(os.path.join(root, name))]
    doomed: set[str] = set()
    if keep is not None and keep >= 0 and len(dirs) > keep:
        doomed.update(dirs[: len(dirs) - keep])
    if max_age_days is not None:
        cutoff = time.time() - max_age_days * 86400.0
        for name in dirs:
            try:
                if os.path.getmtime(os.path.join(root, name)) < cutoff:
                    doomed.add(name)
            except OSError:
                continue
    removed = 0
    freed = 0
    for name in sorted(doomed):
        full = os.path.join(root, name)
        for dirpath, _dirnames, filenames in os.walk(full):
            for filename in filenames:
                try:
                    freed += os.path.getsize(
                        os.path.join(dirpath, filename))
                except OSError:
                    continue
        shutil.rmtree(full, ignore_errors=True)
        removed += 1
    return {"removed_runs": removed, "freed_bytes": freed}


# ------------------------------------------------------------- quarantine

def quarantine_key(text: str) -> str:
    """Quarantine entries are keyed by content hash alone (plus the
    store's fingerprint salt): an edit to the file — or to the tool —
    releases it back into the pipeline."""
    return content_key(QUARANTINE_FAMILY, text)


def quarantine_lookup(text: str) -> dict | None:
    """The poison record for this content, or ``None``."""
    if not quarantine_enabled():
        return None
    from .store import disk_enabled, get_store
    if not disk_enabled():
        return None
    hit, value, _nbytes = get_store().load(QUARANTINE_FAMILY,
                                           quarantine_key(text))
    return value if hit and isinstance(value, dict) else None


def quarantine_record(text: str, filename: str, diagnostic,
                      run_id: str) -> dict | None:
    """Record a poison file: called when a journaled run watched the
    file exhaust its whole ``REPRO_TASK_RETRIES`` budget.  Cumulative
    attempts across runs are kept for the audit trail."""
    if not quarantine_enabled():
        return None
    from .store import disk_enabled, get_store
    if not disk_enabled():
        return None
    store = get_store()
    key = quarantine_key(text)
    hit, previous, _nbytes = store.load(QUARANTINE_FAMILY, key)
    attempts = previous.get("attempts", 0) \
        if hit and isinstance(previous, dict) else 0
    entry = {
        "filename": filename,
        "stage": getattr(diagnostic, "stage", ""),
        "kind": getattr(diagnostic, "kind", ""),
        "message": getattr(diagnostic, "message", str(diagnostic)),
        "retries": getattr(diagnostic, "retries", 0),
        "attempts": attempts + 1 + getattr(diagnostic, "retries", 0),
        "run_id": run_id,
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    store.store(QUARANTINE_FAMILY, key, entry)
    return entry
